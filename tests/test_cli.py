"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.algorithms.algorithm1 import Algorithm1
from repro.cli import main, parse_adversary


class TestParseAdversary:
    @pytest.fixture
    def algorithm(self):
        return Algorithm1(7, 3)

    def test_none(self, algorithm):
        assert parse_adversary(None, algorithm) is None
        assert parse_adversary("none", algorithm) is None

    def test_silent(self, algorithm):
        adversary = parse_adversary("silent:1,2", algorithm)
        assert adversary.faulty == frozenset({1, 2})

    def test_crash_with_phases(self, algorithm):
        adversary = parse_adversary("crash:1@3,2", algorithm)
        assert adversary.crash_phases == {1: 3, 2: 1}

    def test_equivocate_targets_everyone(self, algorithm):
        adversary = parse_adversary("equivocate", algorithm)
        assert adversary.faulty == frozenset({0})
        assert set(adversary.value_for) == set(range(1, 7))

    def test_garbage(self, algorithm):
        adversary = parse_adversary("garbage:3", algorithm)
        assert adversary.faulty == frozenset({3})

    def test_random(self, algorithm):
        adversary = parse_adversary("random:42:1,2", algorithm)
        assert adversary.faulty == frozenset({1, 2})

    def test_unknown_spec_exits(self, algorithm):
        with pytest.raises(SystemExit):
            parse_adversary("quantum:1", algorithm)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "algorithm-5" in out and "strawman-undersigning" in out

    def test_run_fault_free(self, capsys):
        code = main(
            ["run", "--algorithm", "algorithm-1", "--n", "5", "--t", "2",
             "--value", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Byzantine Agreement holds" in out
        assert "messages (correct)   : 12" in out

    def test_run_with_adversary(self, capsys):
        code = main(
            ["run", "--algorithm", "dolev-strong", "--n", "7", "--t", "2",
             "--adversary", "silent:1,2", "--value", "1"]
        )
        assert code == 0
        assert "faulty               : [1, 2]" in capsys.readouterr().out

    def test_run_with_s_parameter(self, capsys):
        code = main(
            ["run", "--algorithm", "algorithm-3", "--n", "20", "--t", "2",
             "--s", "3"]
        )
        assert code == 0

    def test_compare(self, capsys):
        assert main(["compare", "--n", "16", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "active-set" in out and "algorithm-5" in out

    def test_theorem1_on_correct_algorithm(self, capsys):
        code = main(
            ["theorem1", "--algorithm", "algorithm-1", "--n", "5", "--t", "2"]
        )
        assert code == 0
        assert "not splittable" in capsys.readouterr().out

    def test_theorem1_on_strawman(self, capsys):
        code = main(
            ["theorem1", "--algorithm", "strawman-undersigning",
             "--n", "6", "--t", "2"]
        )
        assert code == 0
        assert "agreement violated     : True" in capsys.readouterr().out

    def test_theorem2_on_correct_algorithm(self, capsys):
        code = main(
            ["theorem2", "--algorithm", "algorithm-1", "--n", "9", "--t", "4"]
        )
        assert code == 0
        assert "cannot be starved" in capsys.readouterr().out

    def test_trace(self, capsys):
        code = main(
            ["trace", "--algorithm", "algorithm-1", "--n", "5", "--t", "2",
             "--value", "1", "--max-messages", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase 1" in out and "decisions:" in out and "more" in out

    def test_conformance(self, capsys):
        code = main(
            ["conformance", "--algorithm", "dolev-strong", "--n", "6",
             "--t", "2", "--adversary", "silent:2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "behaviourally faulty: [2]" in out

    def test_experiments(self, capsys):
        code = main(["experiments"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all experiments reproduce" in out

    def test_theorem2_on_strawman(self, capsys):
        code = main(
            ["theorem2", "--algorithm", "strawman-undersigning",
             "--n", "8", "--t", "2"]
        )
        assert code == 0
        assert "agreement violated     : True" in capsys.readouterr().out


LINT_FIXTURES = str(Path(__file__).parent / "lint" / "fixtures")


class TestLintCommand:
    def test_lint_defaults_to_clean_package(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_lint_explicit_path_text(self, capsys):
        import repro

        package_root = str(Path(repro.__file__).parent)
        assert main(["lint", package_root]) == 0
        out = capsys.readouterr().out
        assert "files checked, no findings" in out

    def test_lint_seeded_violations_nonzero_exit(self, capsys):
        assert main(["lint", LINT_FIXTURES]) == 1
        out = capsys.readouterr().out
        for rule_id in (
            "BA001", "BA002", "BA003", "BA004", "BA005",
            "BA006", "BA007", "BA008", "BA009", "BA010",
        ):
            assert rule_id in out
        assert "ba001_bad.py:3:1" in out

    def test_lint_missing_path_is_an_error(self, capsys):
        assert main(["lint", "/no/such/path"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_lint_json_format(self, capsys):
        assert main(["lint", LINT_FIXTURES, "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["rules_run"] == [
            "BA001", "BA002", "BA003", "BA004", "BA005",
            "BA006", "BA007", "BA008", "BA009", "BA010",
        ]
        rules_hit = {f["rule"] for f in payload["findings"]}
        assert rules_hit == {
            "BA001", "BA002", "BA003", "BA004", "BA005",
            "BA006", "BA007", "BA008", "BA009", "BA010",
        }

    def test_lint_sarif_format(self, capsys):
        assert main(["lint", LINT_FIXTURES, "--format=sarif"]) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"]

    def test_lint_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "BA006"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("BA006:")
        assert "message_bound" in out

    def test_lint_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "BA999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_baseline_gate_passes_on_committed_baseline(self, capsys):
        committed = str(Path(__file__).parents[1] / "lint_baseline.json")
        assert main(["lint", "--baseline", committed]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_write_baseline_then_gate(self, tmp_path, capsys):
        target = str(tmp_path / "baseline.json")
        assert main(
            ["lint", LINT_FIXTURES, "--baseline", target, "--write-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline entries" in out
        # with all fixture debt grandfathered, the gate goes green ...
        assert main(["lint", LINT_FIXTURES, "--baseline", target]) == 0
        out = capsys.readouterr().out
        assert "baselined findings not shown" in out
        # ... and the SARIF output keeps the debt visible but suppressed.
        assert main(
            ["lint", LINT_FIXTURES, "--baseline", target, "--format=sarif"]
        ) == 0
        sarif = json.loads(capsys.readouterr().out)
        results = sarif["runs"][0]["results"]
        assert results
        assert all(
            r.get("suppressions") == [{"kind": "external"}] for r in results
        )

    def test_lint_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", LINT_FIXTURES, "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_lint_malformed_baseline_is_an_error(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        target.write_text("{}")
        assert main(["lint", LINT_FIXTURES, "--baseline", str(target)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_lint_stale_baseline_entries_warn_but_pass(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({
            "schema": "repro-lint-baseline/1",
            "findings": [{
                "rule": "BA001",
                "path": "repro/zz_gone.py",
                "message": "never matches",
            }],
        }))
        assert main(["lint", "--baseline", str(target)]) == 0
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.err


class TestRunObservability:
    def test_trace_and_metrics_out(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        code = main(
            ["run", "--algorithm", "algorithm-1", "--n", "7", "--t", "3",
             "--trace-out", str(trace), "--metrics-out", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "metrics written" in out
        first = json.loads(trace.read_text(encoding="utf-8").splitlines()[0])
        assert first["schema"] == "repro-trace/1"
        assert metrics.read_text(encoding="utf-8").startswith("# HELP repro_")

    def test_metrics_out_json_is_bench_schema(self, capsys, tmp_path):
        metrics = tmp_path / "m.json"
        code = main(
            ["run", "--algorithm", "dolev-strong", "--n", "5", "--t", "1",
             "--metrics-out", str(metrics)]
        )
        assert code == 0
        document = json.loads(metrics.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-bench/1"
        assert "runner:dolev-strong" in document["cases"]

    def test_inspect_matches_run_ledger(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["run", "--algorithm", "algorithm-1", "--n", "7", "--t", "3",
             "--trace-out", str(trace)]
        ) == 0
        run_out = capsys.readouterr().out
        assert main(["inspect", str(trace)]) == 0
        inspect_out = capsys.readouterr().out
        assert "consistency: ok" in inspect_out
        # Same totals in both reports.
        assert "messages (correct)   : 24" in run_out
        assert "messages 24 correct" in inspect_out

    def test_inspect_json_output(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["run", "--algorithm", "dolev-strong", "--n", "4", "--t", "1",
              "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["inspect", str(trace), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-trace/1"
        assert document["consistency_errors"] == []

    def test_inspect_missing_file_is_an_error(self, capsys):
        assert main(["inspect", "/no/such/trace.jsonl"]) == 2
        assert "repro inspect" in capsys.readouterr().err

    def test_inspect_rejects_non_trace_json(self, capsys, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"event":"send","phase":1}\n', encoding="utf-8")
        assert main(["inspect", str(path)]) == 2
        assert "run_start" in capsys.readouterr().err

    def test_algorithm_name_aliases(self, capsys):
        # The canonical name is algorithm-1; common alternate spellings work.
        for alias in ("algorithm1", "ALGORITHM-1", "algorithm_1"):
            assert main(
                ["run", "--algorithm", alias, "--n", "5", "--t", "2"]
            ) == 0
            assert "algorithm-1" in capsys.readouterr().out


class TestBenchCommand:
    def test_quick_bench_writes_schema_json(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--repeat", "1", "--output", str(output)]
        )
        assert code == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-bench/1"
        assert document["quick"] is True
        assert document["repeat"] == 1
        assert document["workers"] >= 1
        cases = document["cases"]
        assert "sweep:algorithm-3:grid" in cases
        assert any(key.startswith("runner:") for key in cases)
        for case in cases.values():
            assert case["seconds"] > 0
        runner_case = cases["runner:dolev-strong"]
        assert runner_case["messages_per_sec"] > 0
        assert cases["sweep:algorithm-3:grid"]["scenarios_per_sec"] > 0
        out = capsys.readouterr().out
        assert "bench" in out.lower() or str(output) in out

    def test_bench_includes_batch_cases(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        assert main(
            ["bench", "--quick", "--repeat", "1", "--output", str(output)]
        ) == 0
        cases = json.loads(output.read_text(encoding="utf-8"))["cases"]
        batch_cases = {k: v for k, v in cases.items() if k.startswith("batch:")}
        assert set(batch_cases) == {
            "batch:algorithm-3",
            "batch:algorithm-5",
            "batch:phase-king",
            "batch:oral-messages",
        }
        for key, case in batch_cases.items():
            assert case["kind"] == "batch"
            assert case["runs"] > case["unique_runs"]
            assert case["baseline_case"] in cases
            assert case["messages_per_sec"] > 0
        # The kernel algorithms actually took the kernel path.
        assert batch_cases["batch:phase-king"]["kernel_runs"] == 2
        assert batch_cases["batch:oral-messages"]["kernel_runs"] == 2
        # Authenticated batches share digests through the interned table.
        assert batch_cases["batch:algorithm-3"]["digest_hit_rate"] > 0.5

    def test_bench_profile_prints_hotspots_without_json(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--quick", "--repeat", "1",
                "--profile", "--output", str(output),
            ]
        )
        assert code == 0
        assert not output.exists()
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "top-20" in out


class TestFaultInjectionCli:
    def test_run_with_faults_reports_excused(self, capsys):
        code = main(
            ["run", "--algorithm", "dolev-strong", "--n", "6", "--t", "2",
             "--faults", "crash:2@1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "excused: [2]" in out
        assert "Byzantine Agreement holds (excused: [2])" in out

    def test_run_fault_events_land_in_the_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["run", "--algorithm", "dolev-strong", "--n", "6", "--t", "2",
             "--faults", "crash:2@1", "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        faults = [e for e in events if e["event"] == "fault"]
        assert faults
        assert all(e["fault_schema"] == "repro-fault/1" for e in faults)
        # repro inspect attributes the divergence to the injection.
        assert main(["inspect", str(trace)]) == 0
        inspect_out = capsys.readouterr().out
        assert "injected" in inspect_out and "excusing [2]" in inspect_out

    def test_run_bad_fault_spec_exits_2(self, capsys):
        code = main(
            ["run", "--algorithm", "dolev-strong", "--n", "6", "--t", "2",
             "--faults", "gremlin:1"]
        )
        assert code == 2
        assert "unknown fault clause" in capsys.readouterr().err

    def test_fuzz_chaos_mode_smoke(self, capsys):
        code = main(
            ["fuzz", "--algorithm", "dolev-strong", "--fault-rate", "0.5",
             "--budget", "5", "--seed", "0", "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos fault-rate=0.5" in out
        assert "benign" in out
        assert "0 failing" in out

    def test_fuzz_fault_rate_validated(self, capsys):
        code = main(
            ["fuzz", "--algorithm", "dolev-strong", "--fault-rate", "1.5",
             "--budget", "1", "--workers", "1"]
        )
        assert code == 2
        assert "--fault-rate" in capsys.readouterr().err

    def test_fuzz_checkpoint_completes_and_cleans_up(self, capsys, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        code = main(
            ["fuzz", "--algorithm", "dolev-strong", "--budget", "4",
             "--seed", "0", "--workers", "1", "--checkpoint", str(ckpt)]
        )
        assert code == 0
        assert not ckpt.exists()


class TestReplayErrorHandling:
    def test_replay_missing_file_is_a_clear_error(self, capsys):
        code = main(["fuzz", "--replay", "/no/such/corpus.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read corpus file" in err

    def test_replay_corrupt_json_is_a_clear_error(self, capsys, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "corrupt corpus file" in capsys.readouterr().err

    def test_replay_wrong_schema_is_a_clear_error(self, capsys, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"schema": "not-a-corpus/9"}', encoding="utf-8")
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "corrupt corpus file" in capsys.readouterr().err

    def test_replay_missing_fields_is_a_clear_error(self, capsys, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"schema": "repro-fuzz/1"}', encoding="utf-8")
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "corrupt corpus file" in capsys.readouterr().err


class TestListFamilies:
    def test_list_shows_the_workload_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        header = next(line for line in out.splitlines() if "name" in line)
        assert "family" in header
        rows = {
            line.split()[0]: line.split()[1]
            for line in out.splitlines()
            if line and line[0].isalpha() and "name" not in line
        }
        assert rows["algorithm-1"] == "exact"
        assert rows["midpoint-approx"] == "approx"
        assert rows["filtered-mean-approx"] == "approx"
        assert rows["ben-or"] == "randomized"


class TestBenchTrials:
    def test_trials_recorded_and_service_cases_present(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--quick", "--repeat", "1", "--trials", "2",
                "--output", str(output),
            ]
        )
        assert code == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["trials"] == 2
        service_cases = {
            k: v for k, v in document["cases"].items() if k.startswith("service:")
        }
        assert set(service_cases) == {"service:mixed", "service:faulty"}
        for case in service_cases.values():
            assert case["kind"] == "service"
            assert case["failed"] == 0
            assert case["agreements_per_sec"] > 0
            assert case["p50_s"] > 0
            assert case["p99_s"] >= case["p50_s"]
        assert service_cases["service:faulty"]["fault_rate"] == 0.2
        assert "trials=2" in capsys.readouterr().out


class TestServiceCli:
    def test_loadgen_summary_and_exit_zero(self, capsys):
        code = main(
            [
                "loadgen", "--requests", "40", "--rate", "5000",
                "--seed", "7", "--workers", "1", "--fault-rate", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "agreements/sec" in out
        assert "latency e2e" in out
        assert "verdicts: ok=40" in out

    def test_loadgen_verdicts_deterministic_across_runs(self, capsys):
        arguments = [
            "loadgen", "--requests", "30", "--rate", "5000",
            "--seed", "11", "--workers", "1", "--fault-rate", "0.3",
        ]
        assert main(arguments) == 0
        first = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("verdicts:")
        ]
        assert main(arguments) == 0
        second = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("verdicts:")
        ]
        assert first == second

    def test_loadgen_emit_then_serve_round_trip(self, capsys, tmp_path):
        emitted = tmp_path / "requests.jsonl"
        assert main(
            [
                "loadgen", "--requests", "20", "--rate", "5000",
                "--seed", "3", "--emit", str(emitted),
            ]
        ) == 0
        lines = emitted.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 20
        first = json.loads(lines[0])
        assert first["schema"] == "repro-service/1"
        assert "arrival_s" in first

        responses = tmp_path / "responses.jsonl"
        metrics = tmp_path / "metrics.json"
        capsys.readouterr()
        code = main(
            [
                "serve", str(emitted), "--workers", "1",
                "--out", str(responses), "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro serve: 20 requests" in out
        response_lines = [
            json.loads(line)
            for line in responses.read_text(encoding="utf-8").splitlines()
        ]
        assert [r["request_id"] for r in response_lines] == list(range(20))
        assert all(r["ok"] for r in response_lines)
        document = json.loads(metrics.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-bench/1"
        assert document["cases"]["service:loadgen"]["requests"] == 20

    def test_loadgen_metrics_out_prometheus(self, capsys, tmp_path):
        metrics = tmp_path / "service.prom"
        assert main(
            [
                "loadgen", "--requests", "10", "--rate", "5000",
                "--seed", "1", "--workers", "1",
                "--metrics-out", str(metrics),
            ]
        ) == 0
        text = metrics.read_text(encoding="utf-8")
        assert "# TYPE repro_service_requests_total counter" in text
        assert 'repro_service_requests_total{outcome="ok"} 10' in text

    def test_loadgen_bad_mix_exits_2(self, capsys):
        code = main(
            ["loadgen", "--requests", "5", "--mix", "no-such-algo:n=4,t=1"]
        )
        assert code == 2
        assert "loadgen:" in capsys.readouterr().err

    def test_serve_missing_file_exits_2(self, capsys):
        assert main(["serve", "/no/such/requests.jsonl"]) == 2
        assert "serve:" in capsys.readouterr().err

    def test_serve_malformed_line_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-service/1"}\n', encoding="utf-8")
        assert main(["serve", str(path)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_serve_empty_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        assert main(["serve", str(path)]) == 2
        assert "no requests" in capsys.readouterr().err
