"""Engine-level behaviour: collection, suppression, parse errors, rendering."""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.lint import (
    LintEngine,
    all_rules,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.engine import PARSE_RULE_ID

FIXTURES = Path(__file__).parent / "fixtures"
RULE_IDS = (
    "BA001",
    "BA002",
    "BA003",
    "BA004",
    "BA005",
    "BA006",
    "BA007",
    "BA008",
    "BA009",
    "BA010",
)
#: Rules whose violation fixture does not follow the
#: ``algorithms/<id>_bad.py`` convention.
FIXTURE_OVERRIDES = {
    "BA009": Path("analysis") / "parallel.py",
    "BA010": Path("approx") / "ba010_bad.py",
}


def test_registry_exposes_all_rules():
    assert set(all_rules()) == set(RULE_IDS)


def test_engine_runs_every_rule_by_default():
    report = lint_paths([FIXTURES])
    assert report.rules_run == sorted(RULE_IDS)
    assert report.files_checked == len(list(FIXTURES.rglob("*.py")))


def test_findings_are_sorted_by_location():
    report = lint_paths([FIXTURES])
    assert report.findings == sorted(report.findings)
    assert not report.ok
    assert report.exit_code == 1


def test_every_rule_fires_on_its_fixture():
    report = lint_paths([FIXTURES])
    for rule_id in RULE_IDS:
        relative = FIXTURE_OVERRIDES.get(
            rule_id, Path("algorithms") / f"{rule_id.lower()}_bad.py"
        )
        fixture = FIXTURES / relative
        hits = [
            f
            for f in report.findings
            if f.rule == rule_id and Path(f.path) == fixture
        ]
        assert hits, f"{rule_id} produced no findings on {fixture.name}"
        for finding in hits:
            assert finding.line >= 1
            assert finding.column >= 1


def test_clean_fixture_has_no_findings():
    report = lint_paths([FIXTURES / "algorithms" / "clean.py"])
    assert report.ok, render_text(report)


def test_noqa_suppresses_by_rule_id(tmp_path):
    code = (
        "def f(d):\n"
        "    for k in d.items():  # noqa: BA005\n"
        "        pass\n"
        "    for k in d.items():  # noqa: BA001\n"
        "        pass\n"
        "    for k in d.items():  # noqa\n"
        "        pass\n"
    )
    target = tmp_path / "algorithms" / "mod.py"
    target.parent.mkdir()
    target.write_text(code)
    report = lint_paths([target])
    # Line 2 suppressed by id, line 6 by blanket noqa, line 4 still fires.
    assert [f.line for f in report.findings if f.rule == "BA005"] == [4]


def test_noqa_codes_are_case_insensitive(tmp_path):
    """A lower-case suppression code works the same as its canonical form."""
    code = (
        "def f(d):\n"
        "    for k in d.items():  # noqa: ba005\n"
        "        pass\n"
    )
    target = tmp_path / "algorithms" / "mod.py"
    target.parent.mkdir()
    target.write_text(code)
    report = lint_paths([target])
    assert not [f for f in report.findings if f.rule == "BA005"]
    # The suppression was used, so no BA100 notice either.
    assert not [f for f in report.findings if f.rule == "BA100"]


class TestUnusedSuppressions:
    def _lint(self, tmp_path, code):
        target = tmp_path / "algorithms" / "mod.py"
        target.parent.mkdir(exist_ok=True)
        target.write_text(code)
        return lint_paths([target])

    def test_stale_code_yields_ba100_notice(self, tmp_path):
        report = self._lint(tmp_path, "x = 1  # noqa: BA005\n")
        notices = [f for f in report.findings if f.rule == "BA100"]
        assert len(notices) == 1
        assert notices[0].line == 1
        assert "BA005" in notices[0].message
        assert notices[0].severity == "note"

    def test_used_code_yields_no_notice(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(d):\n"
            "    for k in d.items():  # noqa: BA005\n"
            "        pass\n",
        )
        assert not [f for f in report.findings if f.rule == "BA100"]

    def test_blanket_noqa_is_exempt(self, tmp_path):
        report = self._lint(tmp_path, "x = 1  # noqa\n")
        assert not [f for f in report.findings if f.rule == "BA100"]

    def test_foreign_codes_are_exempt(self, tmp_path):
        report = self._lint(tmp_path, "import os  # noqa: F401\n")
        assert not [f for f in report.findings if f.rule == "BA100"]

    def test_mixed_comment_flags_only_the_stale_own_code(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(d):\n"
            "    for k in d.items():  # noqa: BA005, BA001, F401\n"
            "        pass\n",
        )
        notices = [f for f in report.findings if f.rule == "BA100"]
        assert len(notices) == 1
        assert "BA001" in notices[0].message
        assert "F401" not in notices[0].message

    def test_rule_subset_runs_do_not_flag_unrun_codes(self, tmp_path):
        code = "x = 1  # noqa: BA005\n"
        target = tmp_path / "algorithms" / "mod.py"
        target.parent.mkdir()
        target.write_text(code)
        engine = LintEngine([all_rules()["BA001"]])
        report = engine.run([target])
        assert not [f for f in report.findings if f.rule == "BA100"]


def test_parse_error_becomes_ba000_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    report = lint_paths([bad])
    assert [f.rule for f in report.findings] == [PARSE_RULE_ID]
    assert report.files_checked == 0
    assert report.exit_code == 1


def test_render_text_has_locations_and_summary():
    report = lint_paths([FIXTURES])
    text = render_text(report)
    lines = text.splitlines()
    assert lines[-1].endswith(f"{len(report.findings)} findings")
    first = report.findings[0]
    assert lines[0].startswith(f"{first.path}:{first.line}:{first.column} {first.rule}")


def test_render_json_round_trips():
    report = lint_paths([FIXTURES])
    payload = json.loads(render_json(report))
    assert payload["ok"] is False
    assert payload["files_checked"] == report.files_checked
    assert len(payload["findings"]) == len(report.findings)
    assert set(payload["findings"][0]) == {
        "rule",
        "path",
        "line",
        "column",
        "message",
        "severity",
    }


def test_engine_accepts_rule_subset():
    engine = LintEngine([all_rules()["BA005"]])
    report = engine.run([FIXTURES])
    assert report.rules_run == ["BA005"]
    assert {f.rule for f in report.findings} == {"BA005"}


def test_golden_repro_tree_is_clean():
    """The shipped package satisfies its own discipline, end to end."""
    package_root = Path(repro.__file__).parent
    report = lint_paths([package_root])
    assert report.ok, render_text(report)
    assert report.files_checked > 50
