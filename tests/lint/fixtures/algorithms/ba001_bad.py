"""Seeded BA001 violations: nondeterminism in protocol code."""

import random  # line 3: banned module import
from os import urandom  # line 4: entropy import


def choose_recipients(peers):
    token = urandom(8)  # line 8: entropy call
    salted = hash(token)  # line 9: salted builtin hash
    order = []
    for peer in {p for p in peers}:  # line 11: bare set iteration
        order.append((salted, peer))
    jitter = random.random()
    return order, jitter


def fan_out(self, values):
    pending = set(values)
    for value in pending:  # line 19: set-valued local iterated bare
        self.emit(value)
