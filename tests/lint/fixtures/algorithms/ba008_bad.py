"""Seeded BA008 violations: deciding on unverified relayed payloads."""

from repro.core.protocol import AgreementAlgorithm, Processor


class GullibleProcessor(Processor):
    """Stores inbox payloads into decision state without verifying."""

    def __init__(self, pid):
        self.pid = pid
        self.accepted = set()
        self.latest = None

    def on_phase(self, phase, inbox):
        for envelope in inbox:
            chain = envelope.payload
            self.accepted.add(chain.value)
            self._note(chain)
        return []

    def _note(self, chain):
        self.latest = chain

    def on_final(self, inbox):
        for envelope in inbox:
            self.latest = envelope.payload

    def decision(self):
        if self.latest is not None:
            return self.latest
        return min(self.accepted, default=0)


class GullibleAgreement(AgreementAlgorithm):
    """Authenticated (by default), yet never checks a signature chain."""

    name = "gullible"
    phase_bound = "t + 1"
    message_bound = "derived"
    signature_bound = "derived"

    def make_processor(self, pid):
        return GullibleProcessor(pid)
