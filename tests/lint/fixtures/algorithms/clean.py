"""A module every rule must accept: the canonical deterministic patterns."""

from repro.core.protocol import AgreementAlgorithm
from repro.crypto.signatures import SignatureService


class WellDeclared(AgreementAlgorithm):
    """Correct Theorem 3 declarations under the algorithm-1 registry name."""

    name = "algorithm-1"
    phase_bound = "theorem3_phases(t)"
    message_bound = "theorem3_message_upper_bound(t)"
    signature_bound = "2*t + 2*t*t*(t + 2)"


class UnauthenticatedDeclared(AgreementAlgorithm):
    """No signature_bound needed when not authenticated."""

    name = "clean-unauthenticated"
    authenticated = False
    phase_bound = "t + 1"
    message_bound = "derived"


def orderly_fan_out(self, inbox, peers):
    # Sorted wrapping makes dict and set iteration canonical.
    for sender, payload in sorted(inbox.items()):
        self.emit(sender, payload)
    for peer in sorted({p for p in peers}):
        self.ping(peer)
    # Order-insensitive reductions may consume views bare.
    total = sum(len(v) for v in inbox.values())
    seen = {sender for sender in inbox.keys()}
    loudest = max(inbox.values(), default=None, key=repr)
    return total, seen, loudest


def audited_services(n):
    # The factory is the sanctioned construction path (BA003).
    return SignatureService.fresh_registries(n)


def suppressed_on_purpose(inbox):
    collected = []
    for payload in inbox.values():  # noqa: BA005 — replay order is the point here
        collected.append(payload)
    return collected


def local_state(self, value):
    # Assignments to self attributes are processor state, not mutation.
    self.phase = 3
    self.payload = value
