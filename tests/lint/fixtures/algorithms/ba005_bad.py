"""Seeded BA005 violations: bare dict-ordered fan-out."""


def relay(self, inbox):
    for sender, payload in inbox.items():  # line 5: bare .items() loop
        self.emit(sender, payload)
    for payload in inbox.values():  # line 7: bare .values() loop
        self.forward(payload)
    return [self.wrap(k) for k in inbox.keys()]  # line 9: ordered comprehension
