"""Seeded BA007 violation: one phase out-signs the whole-run budget."""

from repro.core.protocol import AgreementAlgorithm, Processor
from repro.crypto.chains import SignatureChain


class OverSigningProcessor(Processor):
    """Mints a fresh signature chain for every peer, every phase."""

    def on_phase(self, phase, inbox):
        outgoing = []
        for q in self.ctx.others():
            chain = SignatureChain.initial(
                self.value, self.ctx.key, self.ctx.service
            )
            outgoing.append((q, chain))
        return outgoing

    def decision(self):
        return self.value


class OverSigning(AgreementAlgorithm):
    """signature_bound says t + 1, but one phase already signs n - 1."""

    name = "over-signing"
    phase_bound = "t + 1"
    message_bound = "derived"
    signature_bound = "t + 1"

    def make_processor(self, pid):
        return OverSigningProcessor(pid)
