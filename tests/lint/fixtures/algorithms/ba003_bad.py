"""Seeded BA003 violations: signing outside Context.sign."""

from repro.crypto.signatures import SignatureService, SigningKey


class RogueSigner:
    def __init__(self) -> None:
        self.service = SignatureService()  # line 8: direct construction
        self.key = SigningKey(0, object())  # line 9: forged key

    def sign_directly(self, crypto, payload):
        return crypto.SignatureService().sign(self.key, payload)  # line 12
