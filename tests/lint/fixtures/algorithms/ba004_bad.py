"""Seeded BA004 violations: mutating received envelopes."""


def rewrite_history(envelope, value):
    envelope.payload = value  # line 5: plain assignment
    envelope.phase += 1  # line 6: augmented assignment
    object.__setattr__(envelope, "src", 0)  # line 7: frozen bypass
    setattr(envelope, "dst", 1)  # line 8: setattr loophole
    return envelope
