"""Seeded BA006 violation: one phase out-sends the whole-run budget."""

from repro.core.protocol import AgreementAlgorithm, Processor


class ChattyProcessor(Processor):
    """Broadcasts to every peer twice per phase."""

    def on_phase(self, phase, inbox):
        outgoing = [(q, self.value) for q in self.ctx.others()]
        for q in self.ctx.others():
            outgoing.append((q, self.value))
        return outgoing

    def decision(self):
        return self.value


class ChattyBroadcast(AgreementAlgorithm):
    """Declares n - 1 messages for the run, but every phase sends 2(n - 1)."""

    name = "chatty-broadcast"
    phase_bound = "t + 1"
    message_bound = "n - 1"
    signature_bound = "unstated"

    def make_processor(self, pid):
        return ChattyProcessor(pid)
