"""Seeded BA002 violations: missing, malformed, and wrong bound declarations."""

from repro.core.protocol import AgreementAlgorithm


class MissingBounds(AgreementAlgorithm):
    """Declares nothing at all."""

    name = "missing-bounds"


class WrongClosedForm(AgreementAlgorithm):
    """Registry name algorithm-1, but message_bound is not Theorem 3's."""

    name = "algorithm-1"
    phase_bound = "theorem3_phases(t)"
    message_bound = "2*t*t + 3*t"  # paper says 2t^2 + 2t
    signature_bound = "unstated"


class MalformedExpression(AgreementAlgorithm):
    """Expression language violations."""

    name = "malformed"
    phase_bound = "__import__('os').system('true')"
    message_bound = 42  # not a string literal
    signature_bound = "no_such_formula(t)"
