"""Seeded BA009 violations: worker-reachable shared-state mutation."""

_RESULTS_CACHE = {}


class Settings:
    retries = 1


class SweepTask:
    def __init__(self, point):
        self.point = point

    def run(self):
        return accumulate(self.point)


def _run_chunk(tasks):
    return [task.run() for task in tasks]


def accumulate(point):
    global _RESULTS_CACHE
    _RESULTS_CACHE[point] = True
    Settings.retries = 5
    return point
