"""Seeded BA010 violations: missing, malformed, and non-contracting rates."""

from repro.approx.base import ApproximateAgreement


class MissingRate(ApproximateAgreement):
    """An approximate algorithm with no declared contraction at all."""

    name = "missing-rate"
    phase_bound = "m"
    message_bound = "m * n * (n - 1)"


class NonLiteralRate(ApproximateAgreement):
    """The rate must be a string literal of the bound language."""

    name = "non-literal-rate"
    phase_bound = "m"
    message_bound = "m * n * (n - 1)"
    convergence_rate = 0.5  # must be a string expression


class DivergentRate(ApproximateAgreement):
    """A 'rate' of 3/2 grows the diameter every round."""

    name = "divergent-rate"
    phase_bound = "m"
    message_bound = "m * n * (n - 1)"
    convergence_rate = "3 / 2"


class SentinelRate(ApproximateAgreement):
    """Sentinels defeat the discipline: m is computed from the rate."""

    name = "sentinel-rate"
    phase_bound = "m"
    message_bound = "m * n * (n - 1)"
    convergence_rate = "derived"
