"""Unit tests for the shared AST helpers the lint rules build on."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.asthelpers import (
    comprehension_is_order_insensitive,
    constant_bool,
    constant_str,
    iteration_sites,
    set_valued_locals,
)
from repro.lint.engine import SourceFile
import repro.lint.engine as engine_module


def source_file(source: str) -> SourceFile:
    tree = ast.parse(source)
    return SourceFile(
        path=Path("mod.py"),
        display="mod.py",
        source=source,
        tree=tree,
        suppressions=engine_module._scan_suppressions(source),
        parents=engine_module._build_parents(tree),
    )


class TestConstantHelpers:
    def test_constant_str(self):
        assert constant_str(ast.parse("'x'", mode="eval").body) == "x"
        assert constant_str(ast.parse("3", mode="eval").body) is None
        assert constant_str(None) is None

    def test_constant_bool(self):
        assert constant_bool(ast.parse("True", mode="eval").body) is True
        assert constant_bool(ast.parse("False", mode="eval").body) is False
        # ints are not bools, even though bool subclasses int.
        assert constant_bool(ast.parse("1", mode="eval").body) is None
        assert constant_bool(None) is None


class TestIterationSites:
    def test_for_statements_have_no_owner(self):
        file = source_file("for x in xs:\n    pass\n")
        ((iterated, owner),) = list(iteration_sites(file))
        assert isinstance(iterated, ast.Name) and iterated.id == "xs"
        assert owner is None

    def test_async_for_is_covered(self):
        file = source_file(
            "async def f(xs):\n    async for x in xs:\n        pass\n"
        )
        ((iterated, owner),) = list(iteration_sites(file))
        assert isinstance(iterated, ast.Name) and iterated.id == "xs"
        assert owner is None

    def test_comprehension_owner_is_the_comprehension(self):
        file = source_file("ys = [x for x in xs]\n")
        ((iterated, owner),) = list(iteration_sites(file))
        assert isinstance(owner, ast.ListComp)
        assert iterated is owner.generators[0].iter

    def test_dict_comprehension_is_covered(self):
        file = source_file("ys = {k: v for k, v in items}\n")
        ((_, owner),) = list(iteration_sites(file))
        assert isinstance(owner, ast.DictComp)

    def test_nested_comprehensions_yield_every_generator(self):
        file = source_file("ys = [x for row in grid for x in sorted(row)]\n")
        sites = list(iteration_sites(file))
        assert len(sites) == 2
        owners = {type(owner) for _, owner in sites}
        assert owners == {ast.ListComp}

    def test_comprehension_inside_for_yields_both(self):
        file = source_file(
            "for row in grid:\n    ys = {x for x in row}\n"
        )
        sites = list(iteration_sites(file))
        assert len(sites) == 2
        owners = [owner for _, owner in sites]
        assert owners[0] is None or owners[1] is None
        assert any(isinstance(owner, ast.SetComp) for owner in owners)


class TestSetValuedLocals:
    def test_plain_and_annotated_assignments(self):
        tree = ast.parse(
            "def f():\n"
            "    a = set()\n"
            "    b: set[int] = load()\n"
            "    c = {1, 2}\n"
            "    d = [1, 2]\n"
        )
        assert set_valued_locals(tree.body[0]) == {"a", "b", "c"}

    def test_walrus_targets_are_covered(self):
        tree = ast.parse(
            "def f(xs):\n"
            "    if (pending := set(xs)):\n"
            "        return pending\n"
        )
        assert set_valued_locals(tree.body[0]) == {"pending"}

    def test_augmented_assignment_with_set_rhs(self):
        tree = ast.parse(
            "def f(xs):\n"
            "    seen = None\n"
            "    seen |= {1}\n"
            "    count = 0\n"
            "    count += 1\n"
        )
        assert set_valued_locals(tree.body[0]) == {"seen"}

    def test_set_comprehension_counts(self):
        tree = ast.parse("def f(xs):\n    s = {x for x in xs}\n")
        assert set_valued_locals(tree.body[0]) == {"s"}

    def test_frozenset_call_counts(self):
        tree = ast.parse("def f(xs):\n    s = frozenset(xs)\n")
        assert set_valued_locals(tree.body[0]) == {"s"}


class TestComprehensionIsOrderInsensitive:
    def _owner(self, file: SourceFile) -> ast.expr:
        for node in ast.walk(file.tree):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                return node
        raise AssertionError("no comprehension in source")

    def test_set_comprehension_is_always_insensitive(self):
        file = source_file("s = {x for x in xs}\n")
        assert comprehension_is_order_insensitive(file, self._owner(file))

    def test_feeding_sorted_is_insensitive(self):
        file = source_file("s = sorted(x for x in xs)\n")
        assert comprehension_is_order_insensitive(file, self._owner(file))

    def test_feeding_sum_is_insensitive(self):
        file = source_file("s = sum([x for x in xs])\n")
        assert comprehension_is_order_insensitive(file, self._owner(file))

    def test_bare_list_comprehension_is_sensitive(self):
        file = source_file("s = [x for x in xs]\n")
        assert not comprehension_is_order_insensitive(file, self._owner(file))

    def test_keyword_argument_position_is_sensitive(self):
        # only positional arguments of order-insensitive calls count.
        file = source_file("s = sorted(xs, key=[x for x in ks].count)\n")
        owner = self._owner(file)
        assert not comprehension_is_order_insensitive(file, owner)

    def test_unknown_call_is_sensitive(self):
        file = source_file("s = shuffle([x for x in xs])\n")
        assert not comprehension_is_order_insensitive(file, self._owner(file))
