"""Whole-program analysis layer: call graph, symbolic fan-out, and the
golden BA006-BA009 fixtures."""

from __future__ import annotations

import ast
from pathlib import Path

import repro.lint.engine as engine_module
from repro.bounds.expressions import SAMPLE_GRID
from repro.lint import lint_paths
from repro.lint.analysis.ba006_messages import message_sites
from repro.lint.analysis.ba007_signatures import signature_sites
from repro.lint.analysis.callgraph import build_graph, protocol_graph
from repro.lint.analysis.symbolic import (
    accumulate_fanout,
    exceeds_everywhere,
    iterable_size,
    local_sizes,
    scalar_expr,
    site_multiplicity,
)

FIXTURES = Path(__file__).parent / "fixtures"


def build_project(sources: dict[str, str]) -> engine_module.ProjectIndex:
    """A ProjectIndex over in-memory sources, as the engine would build it."""
    files = []
    for display, source in sources.items():
        tree = ast.parse(source, filename=display)
        files.append(
            engine_module.SourceFile(
                path=Path(display),
                display=display,
                source=source,
                tree=tree,
                suppressions=engine_module._scan_suppressions(source),
                parents=engine_module._build_parents(tree),
            )
        )
    project = engine_module._build_index(files)
    project.files = files
    return project


def findings_for(relative: str, rule_id: str):
    report = lint_paths([FIXTURES / relative])
    return [f for f in report.findings if f.rule == rule_id]


def parse_expr(source: str) -> ast.expr:
    return ast.parse(source, mode="eval").body


# ---------------------------------------------------------------------------
# call graph


class TestCallGraph:
    SOURCE = {
        "proto/mod.py": (
            "class Processor:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        return []\n"
            "\n"
            "\n"
            "class Base(Processor):\n"
            "    def helper(self):\n"
            "        return checker(self)\n"
            "\n"
            "\n"
            "class Child(Base):\n"
            "    def on_phase(self, phase, inbox):\n"
            "        self.helper()\n"
            "        Base.helper(self)\n"
            "        return []\n"
            "\n"
            "\n"
            "def checker(processor):\n"
            "    return processor.chain.verify()\n"
            "\n"
            "\n"
            "def builder():\n"
            "    return Child()\n"
        ),
    }

    def test_methods_resolve_through_base_chain(self):
        graph = build_graph(build_project(self.SOURCE))
        assert graph.resolve_method("Child", "helper") == "proto/mod.py::Base.helper"
        assert graph.resolve_method("Child", "on_phase") == (
            "proto/mod.py::Child.on_phase"
        )
        assert graph.resolve_method("Child", "missing") is None

    def test_resolved_methods_prefer_nearest_definition(self):
        graph = build_graph(build_project(self.SOURCE))
        methods = graph.resolved_methods("Child")
        assert methods["on_phase"] == "proto/mod.py::Child.on_phase"
        assert methods["helper"] == "proto/mod.py::Base.helper"

    def test_self_and_delegated_calls_become_edges(self):
        graph = build_graph(build_project(self.SOURCE))
        summary = graph.calls["proto/mod.py::Child.on_phase"]
        assert "proto/mod.py::Base.helper" in summary.resolved

    def test_bare_calls_resolve_to_module_functions(self):
        graph = build_graph(build_project(self.SOURCE))
        summary = graph.calls["proto/mod.py::Base.helper"]
        assert "proto/mod.py::checker" in summary.resolved

    def test_reachable_from_follows_the_closure(self):
        graph = build_graph(build_project(self.SOURCE))
        reached = graph.reachable_from({"proto/mod.py::Child.on_phase"})
        assert "proto/mod.py::Base.helper" in reached
        assert "proto/mod.py::checker" in reached

    def test_processor_fixpoint_excludes_the_root(self):
        graph = build_graph(build_project(self.SOURCE))
        assert graph.processor_classes == {"Base", "Child"}

    def test_instantiations_are_recorded(self):
        graph = build_graph(build_project(self.SOURCE))
        assert "Child" in graph.calls["proto/mod.py::builder"].instantiated

    def test_verify_markers_propagate_to_callers(self):
        graph = build_graph(build_project(self.SOURCE))
        marked = graph.functions_calling(frozenset({"verify"}))
        assert "proto/mod.py::checker" in marked
        assert "proto/mod.py::Base.helper" in marked
        assert "proto/mod.py::Child.on_phase" in marked

    def test_protocol_graph_is_memoized_per_project(self):
        project = build_project(self.SOURCE)
        assert protocol_graph(project) is protocol_graph(project)


# ---------------------------------------------------------------------------
# symbolic fan-out


class TestScalarExpr:
    def test_constants_and_parameters(self):
        assert scalar_expr(parse_expr("3")) == "3"
        assert scalar_expr(parse_expr("t")) == "t"
        assert scalar_expr(parse_expr("self.t")) == "t"
        assert scalar_expr(parse_expr("ctx.t")) == "t"
        assert scalar_expr(parse_expr("self.ctx.t")) == "t"

    def test_arithmetic_composes(self):
        expr = scalar_expr(parse_expr("self.t + 1"))
        assert expr == "(t) + (1)"

    def test_unknown_names_are_rejected(self):
        assert scalar_expr(parse_expr("self.relays")) is None
        assert scalar_expr(parse_expr("x + 1")) is None


class TestIterableSize:
    def test_others_is_n_minus_one(self):
        assert iterable_size(parse_expr("self.ctx.others()"), {}) == "n - 1"

    def test_range_forms(self):
        assert iterable_size(parse_expr("range(self.t + 1)"), {}) == "(t) + (1)"
        assert iterable_size(parse_expr("range(1, self.t)"), {}) == "(t) - (1)"
        assert iterable_size(parse_expr("range(self.relays)"), {}) is None

    def test_passthrough_calls_forward_their_argument(self):
        assert iterable_size(parse_expr("sorted(inbox)"), {"inbox": "n - 1"}) == (
            "n - 1"
        )

    def test_environment_lookup(self):
        assert iterable_size(parse_expr("peers"), {"peers": "n - 1"}) == "n - 1"
        assert iterable_size(parse_expr("peers"), {}) is None


class TestSiteMultiplicity:
    def _record(self, body: str):
        project = build_project({"proto/mod.py": body})
        graph = build_graph(project)
        return graph.functions["proto/mod.py::C.on_phase"]

    def _tuple_sites(self, record):
        return list(message_sites(record))

    def test_nested_sized_loops_multiply(self):
        record = self._record(
            "class C:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        out = []\n"
            "        for q in self.ctx.others():\n"
            "            for _ in range(self.t + 1):\n"
            "                out.append((q, 1))\n"
            "        return out\n"
        )
        env = local_sizes(record.node)
        (site,) = self._tuple_sites(record)
        assert site_multiplicity(record, site, env) == "((t) + (1)) * (n - 1)"

    def test_unsized_loop_is_unresolvable(self):
        record = self._record(
            "class C:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        out = []\n"
            "        for q in self.relays:\n"
            "            out.append((q, 1))\n"
            "        return out\n"
        )
        env = local_sizes(record.node)
        (site,) = self._tuple_sites(record)
        assert site_multiplicity(record, site, env) is None

    def test_while_loop_is_unresolvable(self):
        record = self._record(
            "class C:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        out = []\n"
            "        while True:\n"
            "            out.append((1, 1))\n"
            "        return out\n"
        )
        env = local_sizes(record.node)
        (site,) = self._tuple_sites(record)
        assert site_multiplicity(record, site, env) is None

    def test_inbox_parameter_is_seeded(self):
        record = self._record(
            "class C:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        return [(e.sender, 1) for e in inbox]\n"
        )
        env = local_sizes(record.node)
        (site,) = self._tuple_sites(record)
        assert site_multiplicity(record, site, env) == "((n - 1))"

    def test_filtered_comprehension_is_unresolvable(self):
        record = self._record(
            "class C:\n"
            "    def on_phase(self, phase, inbox):\n"
            "        return [(e.sender, 1) for e in inbox if e.sender]\n"
        )
        env = local_sizes(record.node)
        (site,) = self._tuple_sites(record)
        assert site_multiplicity(record, site, env) is None


class TestAccumulateFanout:
    def test_sites_sum_and_skips_are_counted(self):
        project = build_project(
            {
                "proto/mod.py": (
                    "class C:\n"
                    "    def on_phase(self, phase, inbox):\n"
                    "        out = [(q, 1) for q in self.ctx.others()]\n"
                    "        for q in self.relays:\n"
                    "            out.append((q, 2))\n"
                    "        return out\n"
                )
            }
        )
        graph = build_graph(project)
        estimate = accumulate_fanout(
            [graph.functions["proto/mod.py::C.on_phase"]], message_sites
        )
        assert estimate.sites == 1
        assert estimate.skipped == 1
        assert estimate.expr == "(((n - 1)))"

    def test_no_sites_yields_no_expression(self):
        project = build_project(
            {
                "proto/mod.py": (
                    "class C:\n"
                    "    def on_phase(self, phase, inbox):\n"
                    "        return []\n"
                )
            }
        )
        graph = build_graph(project)
        estimate = accumulate_fanout(
            [graph.functions["proto/mod.py::C.on_phase"]], signature_sites
        )
        assert estimate.expr is None
        assert estimate.sites == 0


class TestExceedsEverywhere:
    def test_strict_exceedance_returns_worst_point(self):
        result = exceeds_everywhere("2 * (n - 1)", "n - 1", SAMPLE_GRID)
        assert result is not None
        point, static_value, declared_value = result
        assert static_value > declared_value
        # the gap grows with n, so the worst point is the largest grid point.
        assert point["t"] == 4

    def test_equality_at_any_point_reconciles(self):
        # equal everywhere: never strictly exceeds.
        assert exceeds_everywhere("n - 1", "n - 1", SAMPLE_GRID) is None

    def test_partial_exceedance_reconciles(self):
        # t*t crosses 4*t between t=4 and below: not exceeding everywhere.
        assert exceeds_everywhere("t * t", "4 * t", SAMPLE_GRID) is None

    def test_evaluation_failure_reconciles(self):
        assert exceeds_everywhere("bogus(n)", "n - 1", SAMPLE_GRID) is None


# ---------------------------------------------------------------------------
# golden fixtures


class TestBA006Golden:
    def test_fires_on_the_bound_declaration(self):
        findings = findings_for("algorithms/ba006_bad.py", "BA006")
        assert [f.line for f in findings] == [24]
        (finding,) = findings
        assert "ChattyProcessor" in finding.message
        assert "message_bound = 'n - 1'" in finding.message
        assert "single on_phase call" in finding.message

    def test_clean_fixture_is_quiet(self):
        assert not findings_for("algorithms/clean.py", "BA006")


class TestBA007Golden:
    def test_fires_on_the_signature_declaration(self):
        findings = findings_for("algorithms/ba007_bad.py", "BA007")
        assert [f.line for f in findings] == [29]
        (finding,) = findings
        assert "OverSigningProcessor" in finding.message
        assert "signature_bound = 't + 1'" in finding.message

    def test_clean_fixture_is_quiet(self):
        assert not findings_for("algorithms/clean.py", "BA007")


class TestBA008Golden:
    def test_fires_on_each_unverified_sink(self):
        findings = findings_for("algorithms/ba008_bad.py", "BA008")
        assert [f.line for f in findings] == [17, 18, 26]
        messages = " ".join(f.message for f in findings)
        assert "self.accepted" in messages
        assert "self._note()" in messages
        assert "self.latest" in messages
        assert "verify" in messages

    def test_clean_fixture_is_quiet(self):
        assert not findings_for("algorithms/clean.py", "BA008")

    def test_unauthenticated_algorithms_are_exempt(self, tmp_path):
        source = (
            '"""Unauthenticated: no chains to verify, taint rule is moot."""\n'
            "from repro.core.protocol import AgreementAlgorithm, Processor\n"
            "\n"
            "\n"
            "class TrustingProcessor(Processor):\n"
            "    def __init__(self, pid):\n"
            "        self.latest = None\n"
            "\n"
            "    def on_phase(self, phase, inbox):\n"
            "        for envelope in inbox:\n"
            "            self.latest = envelope.payload\n"
            "        return []\n"
            "\n"
            "    def decision(self):\n"
            "        return self.latest\n"
            "\n"
            "\n"
            "class TrustingAlgorithm(AgreementAlgorithm):\n"
            '    name = "trusting"\n'
            "    authenticated = False\n"
            '    phase_bound = "t + 1"\n'
            '    message_bound = "unstated"\n'
            "\n"
            "    def make_processor(self, pid):\n"
            "        return TrustingProcessor(pid)\n"
        )
        target = tmp_path / "algorithms" / "mod.py"
        target.parent.mkdir()
        target.write_text(source)
        report = lint_paths([target])
        assert not [f for f in report.findings if f.rule == "BA008"]


class TestBA009Golden:
    def test_fires_on_worker_reachable_mutations(self):
        findings = findings_for("analysis/parallel.py", "BA009")
        assert [f.line for f in findings] == [23, 25]
        first, second = findings
        assert "global _RESULTS_CACHE" in first.message
        assert "Settings.retries" in second.message

    def test_real_parallel_module_is_quiet(self):
        import repro

        parallel = Path(repro.__file__).parent / "analysis" / "parallel.py"
        report = lint_paths([parallel])
        assert not [f for f in report.findings if f.rule == "BA009"]
