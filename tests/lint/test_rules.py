"""Per-rule checks: each fixture violation is flagged at the right place."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bounds.expressions import (
    BoundExpressionError,
    evaluate_bound,
    validate_bound_expression,
)
from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(name: str, rule_id: str):
    report = lint_paths([FIXTURES / "algorithms" / name])
    return [f for f in report.findings if f.rule == rule_id]


def lines_of(findings):
    return sorted({f.line for f in findings})


class TestBA001:
    def test_flags_each_nondeterminism_site(self):
        findings = findings_for("ba001_bad.py", "BA001")
        assert lines_of(findings) == [3, 4, 8, 9, 11, 19]

    def test_messages_name_the_offence(self):
        messages = " ".join(f.message for f in findings_for("ba001_bad.py", "BA001"))
        assert "random" in messages
        assert "hash()" in messages
        assert "unordered set" in messages


class TestBA002:
    def test_missing_declarations_flagged_per_attribute(self):
        findings = findings_for("ba002_bad.py", "BA002")
        missing = [f for f in findings if "does not declare" in f.message]
        # MissingBounds declares none of the three (authenticated defaults on).
        assert len(missing) == 3
        assert all("MissingBounds" in f.message for f in missing)

    def test_cross_check_catches_disagreement_with_paper(self):
        findings = findings_for("ba002_bad.py", "BA002")
        disagreements = [f for f in findings if "disagrees" in f.message]
        assert len(disagreements) == 1
        finding = disagreements[0]
        assert finding.line == 17
        assert "theorem3_message_upper_bound(t)" in finding.message
        assert "2*t*t + 3*t" in finding.message

    def test_malformed_declarations_flagged(self):
        findings = findings_for("ba002_bad.py", "BA002")
        messages = [f.message for f in findings]
        assert any("string literal" in m for m in messages)
        assert any("disallowed syntax" in m or "may only call" in m for m in messages)
        assert any("no_such_formula" in m for m in messages)

    def test_correct_declarations_pass(self):
        assert findings_for("clean.py", "BA002") == []


class TestBA003:
    def test_flags_each_construction(self):
        findings = findings_for("ba003_bad.py", "BA003")
        assert lines_of(findings) == [8, 9, 12]

    def test_factory_is_allowed(self):
        assert findings_for("clean.py", "BA003") == []


class TestBA004:
    def test_flags_each_mutation_loophole(self):
        findings = findings_for("ba004_bad.py", "BA004")
        assert lines_of(findings) == [5, 6, 7, 8]

    def test_self_attributes_are_not_envelopes(self):
        assert findings_for("clean.py", "BA004") == []


class TestBA005:
    def test_flags_each_bare_view_iteration(self):
        findings = findings_for("ba005_bad.py", "BA005")
        assert lines_of(findings) == [5, 7, 9]

    def test_sorted_and_reductions_are_exempt(self):
        assert findings_for("clean.py", "BA005") == []


class TestBoundExpressionLanguage:
    """The BA002 substrate: parse-time validation and evaluation."""

    def test_paper_formulas_evaluate(self):
        assert evaluate_bound("theorem3_message_upper_bound(t)", {"t": 3}) == 24
        assert evaluate_bound("theorem4_phases(t)", {"t": 2}) == 9

    def test_sentinels_evaluate_to_none(self):
        assert evaluate_bound("derived", {"t": 1}) is None
        assert evaluate_bound("unstated", {"t": 1}) is None
        assert evaluate_bound(None, {"t": 1}) is None

    @pytest.mark.parametrize(
        "expression",
        [
            "__import__('os')",
            "t.denominator",
            "unknown_name + 1",
            "lambda: 1",
            "[1, 2]",
            "f'{t}'",
            "theorem3_phases(t=1)",
        ],
    )
    def test_escape_hatches_rejected(self, expression):
        with pytest.raises(BoundExpressionError):
            validate_bound_expression(expression)

    def test_missing_parameter_raises(self):
        with pytest.raises(BoundExpressionError):
            evaluate_bound("n + t", {"t": 1})
