"""Baseline diffing, SARIF rendering, and rule explanations."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    explain_rule,
    lint_paths,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.lint.baseline import BASELINE_SCHEMA, canonical_path, fingerprint
from repro.lint.engine import Finding, LintReport


def finding(rule="BA005", path="src/repro/algorithms/mod.py", line=3, message="m"):
    return Finding(path=path, line=line, column=1, rule=rule, message=message)


def report_of(*findings):
    return LintReport(
        findings=sorted(findings), files_checked=1, rules_run=["BA005"]
    )


class TestCanonicalPath:
    def test_strips_everything_before_the_package(self):
        assert canonical_path("src/repro/algorithms/mod.py") == (
            "repro/algorithms/mod.py"
        )
        assert canonical_path(
            "/site-packages/repro/algorithms/mod.py"
        ) == "repro/algorithms/mod.py"

    def test_last_repro_component_wins(self):
        assert canonical_path("repro/vendor/repro/mod.py") == "repro/mod.py"

    def test_paths_outside_the_package_pass_through(self):
        assert canonical_path("tests/lint/fixtures/mod.py") == (
            "tests/lint/fixtures/mod.py"
        )

    def test_backslashes_are_normalised(self):
        assert canonical_path("src\\repro\\mod.py") == "repro/mod.py"


class TestFingerprint:
    def test_ignores_line_numbers(self):
        a = finding(line=3)
        b = finding(line=300)
        assert fingerprint(a) == fingerprint(b)

    def test_distinguishes_rule_and_message(self):
        assert fingerprint(finding(rule="BA001")) != fingerprint(
            finding(rule="BA005")
        )
        assert fingerprint(finding(message="x")) != fingerprint(
            finding(message="y")
        )


class TestApplyBaseline:
    def entry(self, **kwargs):
        defaults = dict(
            rule="BA005", path="repro/algorithms/mod.py", message="m"
        )
        defaults.update(kwargs)
        return BaselineEntry(**defaults)

    def test_known_finding_is_matched_not_new(self):
        result = apply_baseline(report_of(finding()), [self.entry()])
        assert result.ok
        assert result.exit_code == 0
        assert len(result.matched) == 1
        assert not result.new and not result.stale

    def test_unknown_finding_is_new(self):
        result = apply_baseline(report_of(finding(message="other")), [self.entry()])
        assert not result.ok
        assert result.exit_code == 1
        assert len(result.new) == 1
        assert len(result.stale) == 1

    def test_matching_is_counted_not_set_based(self):
        # two identical findings, one baseline entry: one still fails.
        duplicated = report_of(finding(line=3), finding(line=9))
        result = apply_baseline(duplicated, [self.entry()])
        assert len(result.matched) == 1
        assert len(result.new) == 1

    def test_surplus_entries_are_stale(self):
        result = apply_baseline(
            report_of(finding()), [self.entry(), self.entry()]
        )
        assert result.ok
        assert len(result.stale) == 1

    def test_clean_report_against_empty_baseline(self):
        result = apply_baseline(report_of(), [])
        assert result.ok and not result.stale


class TestBaselineFiles:
    def test_write_then_load_round_trips(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline(report_of(finding()), target)
        assert count == 1
        entries = load_baseline(target)
        assert [e.fingerprint for e in entries] == [fingerprint(finding())]
        payload = json.loads(target.read_text())
        assert payload["schema"] == BASELINE_SCHEMA

    def test_reasons_survive_regeneration(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(report_of(finding()), target)
        annotated = [
            BaselineEntry(
                rule=e.rule, path=e.path, message=e.message,
                reason="known debt",
            )
            for e in load_baseline(target)
        ]
        write_baseline(report_of(finding(line=77)), target, previous=annotated)
        (entry,) = load_baseline(target)
        assert entry.reason == "known debt"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "absent.json")

    def test_wrong_schema_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": "other/9", "findings": []}))
        with pytest.raises(BaselineError):
            load_baseline(target)

    def test_malformed_entries_raise(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"schema": BASELINE_SCHEMA, "findings": [{"rule": "X"}]})
        )
        with pytest.raises(BaselineError):
            load_baseline(target)

    def test_committed_baseline_matches_the_tree(self):
        """The repo's own gate: the committed baseline has no entries,
        because the shipped tree is clean under every rule."""
        from pathlib import Path

        committed = Path(__file__).parents[2] / "lint_baseline.json"
        entries = load_baseline(committed)
        assert entries == []


class TestSarif:
    def test_real_findings_render_as_error_results(self):
        sarif = json.loads(render_sarif(report_of(finding())))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "BA005"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/algorithms/mod.py"
        )
        assert location["region"]["startLine"] == 3

    def test_note_severity_maps_to_note_level(self):
        noted = Finding(
            path="mod.py", line=1, column=1, rule="BA100",
            message="stale", severity="note",
        )
        sarif = json.loads(render_sarif(report_of(noted)))
        assert sarif["runs"][0]["results"][0]["level"] == "note"

    def test_baselined_findings_carry_external_suppressions(self):
        known = finding()
        sarif = json.loads(render_sarif(report_of(known), baselined=[known]))
        (result,) = sarif["runs"][0]["results"]
        assert result["suppressions"] == [{"kind": "external"}]

    def test_driver_documents_every_rule(self):
        sarif = json.loads(render_sarif(report_of()))
        rules = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert {"BA000", "BA001", "BA006", "BA007", "BA008", "BA009", "BA100"} <= rules

    def test_fixture_run_is_valid_json_with_results(self):
        from pathlib import Path

        report = lint_paths([Path(__file__).parent / "fixtures"])
        sarif = json.loads(render_sarif(report))
        assert sarif["runs"][0]["results"]


class TestExplainRule:
    @pytest.mark.parametrize(
        "rule_id",
        ["BA000", "BA001", "BA002", "BA003", "BA004", "BA005",
         "BA006", "BA007", "BA008", "BA009", "BA100"],
    )
    def test_every_rule_explains_itself(self, rule_id):
        text = explain_rule(rule_id)
        assert text is not None
        assert text.startswith(f"{rule_id}:")
        # each explanation carries real prose, not just the summary line.
        assert len(text.splitlines()) > 1

    def test_lookup_is_case_insensitive(self):
        assert explain_rule("ba006") == explain_rule("BA006")

    def test_unknown_rule_returns_none(self):
        assert explain_rule("BA999") is None
