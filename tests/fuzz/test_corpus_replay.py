"""Replay every committed counterexample in ``tests/fuzz_corpus/``.

Each corpus file is a shrunk, fuzz-derived (or hand-minimised) adversary
script that once produced the recorded verdict.  Replaying them here makes
every counterexample a permanent regression test: the verdict must
reproduce bit-for-bit on the current code, and each entry must round-trip
through its JSON form unchanged.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    load_entries,
    replay_entry,
    save_entry,
    save_trace,
)

pytestmark = pytest.mark.fuzz

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"
ENTRIES = load_entries(CORPUS_DIR)


def _entry_id(item):
    path, _ = item
    return path.stem


def test_corpus_is_not_empty():
    # The committed corpus must exist: an accidentally-deleted directory
    # would otherwise skip every replay below and look green.
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize("item", ENTRIES, ids=_entry_id)
def test_recorded_verdict_reproduces(item):
    _, entry = item
    outcome = replay_entry(entry)
    assert outcome.verdict == entry.verdict, (
        f"corpus entry no longer reproduces: recorded {entry.verdict!r} "
        f"({entry.detail}), replay gave {outcome.verdict!r} ({outcome.detail})"
    )


@pytest.mark.parametrize("item", ENTRIES, ids=_entry_id)
def test_entry_round_trips_through_json(item):
    _, entry = item
    assert CorpusEntry.from_json_dict(entry.to_json_dict()) == entry


def test_save_trace_writes_replay_trace_beside_entry(tmp_path):
    from repro.obs import summarize_trace

    _, entry = ENTRIES[0]
    entry_path = save_entry(tmp_path, entry)
    trace_path = save_trace(entry_path, entry)
    assert trace_path.parent == entry_path.parent
    assert trace_path.name == entry_path.stem + ".trace.jsonl"
    summary = summarize_trace(trace_path)
    assert summary.algorithm == entry.algorithm
    assert summary.n == entry.n and summary.t == entry.t
    # The trace suffix must not collide with the ``*.json`` corpus glob —
    # load_entries still sees exactly one entry in the directory.
    assert len(load_entries(tmp_path)) == 1


@pytest.mark.parametrize("item", ENTRIES, ids=_entry_id)
def test_entries_are_shrunk(item):
    # Corpus hygiene: committed counterexamples are minimised — a small
    # coalition and a script a human can read at a glance.
    _, entry = item
    assert len(entry.script.faulty) <= entry.t
    assert len(entry.script.mutations) <= 3
