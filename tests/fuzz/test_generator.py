"""Generator determinism and structural validity of sampled scripts."""

from repro.fuzz.generator import generate_script
from repro.fuzz.mutations import Equivocate
from repro.fuzz.script import AdversaryScript


def sample(seed, **overrides):
    defaults = dict(n=7, t=2, num_phases=4)
    defaults.update(overrides)
    return generate_script(seed, **defaults)


class TestDeterminism:
    def test_same_seed_same_script(self):
        for seed in range(50):
            assert sample(seed) == sample(seed)

    def test_scripts_vary_across_seeds(self):
        scripts = {sample(seed) for seed in range(30)}
        assert len(scripts) > 10

    def test_json_round_trip(self):
        for seed in range(20):
            script = sample(seed)
            assert AdversaryScript.from_json_dict(script.to_json_dict()) == script


class TestStructuralValidity:
    def test_faulty_within_budget_and_range(self):
        for seed in range(200):
            script = sample(seed)
            assert 1 <= len(script.faulty) <= 2
            assert all(0 <= pid < 7 for pid in script.faulty)
            assert list(script.faulty) == sorted(set(script.faulty))

    def test_mutations_reference_faulty_pids(self):
        for seed in range(200):
            script = sample(seed)
            assert all(m.pid in script.faulty for m in script.mutations)

    def test_equivocate_only_on_faulty_transmitter(self):
        for seed in range(300):
            script = sample(seed)
            for m in script.mutations:
                if isinstance(m, Equivocate):
                    assert m.pid == 0 and 0 in script.faulty

    def test_at_most_one_equivocation(self):
        for seed in range(300):
            script = sample(seed)
            count = sum(isinstance(m, Equivocate) for m in script.mutations)
            assert count <= 1

    def test_phase_windows_within_bounds(self):
        for seed in range(200):
            script = sample(seed, num_phases=5)
            for m in script.mutations:
                assert m.phase_from >= 1
                if m.phase_to is not None:
                    assert m.phase_to >= m.phase_from

    def test_transmitter_bias_is_visible(self):
        corrupted = sum(0 in sample(seed).faulty for seed in range(300))
        # uniform choice over 7 processors with <=2 faults would corrupt the
        # transmitter well under 30% of the time; the bias pushes it higher
        assert corrupted > 100
