"""Shrinking: the acceptance demo from the issue.

A scratch algorithm with a deliberately injected agreement bug (processors
trust the first voice they hear, with no echo round) must be caught by a
seeded campaign and shrunk to a small counterexample that replays from its
JSON serialisation.
"""

import json

import pytest

from repro.core.message import Envelope
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.fuzz.generator import generate_script
from repro.fuzz.oracle import OK, SAFETY, execute_script
from repro.fuzz.script import AdversaryScript
from repro.fuzz.shrinker import shrink_script

pytestmark = pytest.mark.fuzz


class _GullibleProcessor(Processor):
    """Decides on the first payload it hears from the transmitter.

    The injected bug: no cross-checking round, so a two-faced transmitter
    (or one sending junk to a subset) splits the correct processors.
    """

    def __init__(self):
        self._heard = None

    def on_phase(self, phase, inbox):
        if self.ctx.pid == self.ctx.transmitter:
            if phase == 1:
                value = next(e.payload for e in inbox if e.is_input_edge())
                self._heard = value
                return [(q, value) for q in self.ctx.others()]
            return []
        for envelope in inbox:
            if envelope.src == self.ctx.transmitter and self._heard is None:
                self._heard = envelope.payload
        return []

    def decision(self):
        return self._heard if self._heard is not None else 0


class GullibleAlgorithm(AgreementAlgorithm):
    """Scratch single-round broadcast with no agreement safeguard."""

    name = "scratch-gullible"
    authenticated = False
    value_domain = frozenset({0, 1})
    phase_bound = "2"
    message_bound = "n - 1"

    def num_phases(self):
        return 2

    def make_processor(self, pid):
        return _GullibleProcessor()


N, T = 5, 1


def _run_candidate(script):
    return execute_script(GullibleAlgorithm(N, T), 1, script)


class TestInjectedBugIsCaughtAndShrunk:
    def _find_failure(self):
        for seed in range(400):
            script = generate_script(
                seed, n=N, t=T, num_phases=2, value_domain=(0, 1)
            )
            outcome = _run_candidate(script)
            if outcome.verdict == SAFETY:
                return seed, script, outcome
        pytest.fail("seeded campaign never caught the injected agreement bug")

    def test_campaign_finds_the_bug(self):
        _, _, outcome = self._find_failure()
        assert outcome.verdict == SAFETY

    def test_shrinks_to_at_most_three_mutations(self):
        _, script, outcome = self._find_failure()

        def reproduce(candidate):
            return _run_candidate(candidate).verdict == outcome.verdict

        shrunk = shrink_script(script, reproduce, num_phases=2)
        assert len(shrunk.mutations) <= 3
        assert len(shrunk.faulty) == 1
        assert shrunk.size <= script.size
        # still failing after minimisation
        assert _run_candidate(shrunk).verdict == SAFETY

    def test_shrunk_counterexample_replays_from_json(self, tmp_path):
        _, script, outcome = self._find_failure()

        def reproduce(candidate):
            return _run_candidate(candidate).verdict == outcome.verdict

        shrunk = shrink_script(script, reproduce, num_phases=2)
        path = tmp_path / "counterexample.json"
        path.write_text(json.dumps(shrunk.to_json_dict(), indent=2))

        reloaded = AdversaryScript.from_json_dict(json.loads(path.read_text()))
        assert reloaded == shrunk
        assert _run_candidate(reloaded).verdict == SAFETY


class TestShrinkerMechanics:
    def test_fault_free_script_not_shrinkable(self):
        script = AdversaryScript(faulty=(1,))
        outcome = _run_candidate(script)
        assert outcome.verdict == OK

    def test_shrinker_respects_reproducer(self):
        # A reproducer that only accepts the original script: no shrinking.
        _, script, _ = TestInjectedBugIsCaughtAndShrunk()._find_failure()
        shrunk = shrink_script(
            script, lambda candidate: candidate == script, num_phases=2
        )
        assert shrunk == script

    def test_attempt_budget_respected(self):
        calls = {"count": 0}
        _, script, outcome = TestInjectedBugIsCaughtAndShrunk()._find_failure()

        def counting(candidate):
            calls["count"] += 1
            return _run_candidate(candidate).verdict == outcome.verdict

        shrink_script(script, counting, num_phases=2, max_attempts=5)
        assert calls["count"] <= 5
