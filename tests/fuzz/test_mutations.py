"""Mutation primitives: windows, deterministic parameters, JSON round-trip."""

import pytest

from repro.fuzz.mutations import (
    MUTATION_KINDS,
    DropInbound,
    DropOutbound,
    Equivocate,
    ForgeAttempt,
    GarbleOutbound,
    ReplayStale,
    SelectiveSilence,
    mutation_from_json,
)

ALL_EXAMPLES = [
    DropInbound(pid=1, phase_from=2, phase_to=4, modulus=3, residue=1),
    DropOutbound(pid=0, phase_from=1, phase_to=None, modulus=2, residue=0),
    SelectiveSilence(pid=2, phase_from=1, phase_to=2, targets=(3, 5)),
    GarbleOutbound(pid=4, phase_from=3, phase_to=3, modulus=1, residue=0, salt=77),
    Equivocate(pid=0, phase_from=1, phase_to=None, alt_value=0, parity=1),
    ForgeAttempt(pid=3, phase_from=2, phase_to=2, victim=1, dst=4, value=1),
    ReplayStale(pid=2, phase_from=3, phase_to=5, dst=1, lag=2, limit=1),
]


class TestPhaseWindows:
    def test_window_inclusive(self):
        m = DropInbound(pid=0, phase_from=2, phase_to=4)
        assert not m.active(1)
        assert m.active(2) and m.active(3) and m.active(4)
        assert not m.active(5)

    def test_open_window_runs_to_end(self):
        m = SelectiveSilence(pid=0, phase_from=3, phase_to=None, targets=(1,))
        assert not m.active(2)
        assert all(m.active(p) for p in range(3, 50))


class TestParameters:
    def test_drop_keeps_by_modulus(self):
        m = DropInbound(pid=0, modulus=2, residue=0)
        assert [m.keeps(i) for i in range(4)] == [False, True, False, True]

    def test_drop_everything(self):
        m = DropInbound(pid=0, modulus=1, residue=0)
        assert not any(m.keeps(i) for i in range(5))

    def test_garble_junk_is_deterministic_and_canonicalisable(self):
        from repro.core.message import payload_digest

        m = GarbleOutbound(pid=3, salt=5)
        assert m.junk(2) == m.junk(2)
        assert payload_digest(m.junk(2))  # canonicalises without error

    def test_equivocate_parity_partitions_destinations(self):
        m = Equivocate(pid=0, parity=1)
        takes = {d for d in range(6) if m.takes_alt(d)}
        assert takes == {1, 3, 5}


class TestJsonRoundTrip:
    @pytest.mark.parametrize("mutation", ALL_EXAMPLES, ids=lambda m: m.kind)
    def test_round_trip_identity(self, mutation):
        assert mutation_from_json(mutation.to_json_dict()) == mutation

    def test_every_kind_has_an_example(self):
        assert {m.kind for m in ALL_EXAMPLES} == set(MUTATION_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation kind"):
            mutation_from_json({"kind": "nope", "pid": 0})
