"""Chaos campaigns: benign fault plans through the fuzz pipeline."""

import json

import pytest

from repro.algorithms.registry import get
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.fuzz.campaign import (
    FuzzCase,
    plan_chaos_cases,
    run_campaign,
    summarize,
)
from repro.fuzz.corpus import CorpusEntry, load_entry, save_entry
from repro.fuzz.oracle import BENIGN, OK, SAFETY, classify_run, execute_script
from repro.fuzz.script import AdversaryScript
from repro.transport import CrashFault, FaultPlan
from repro.core.runner import run
from repro.transport.faulty import FaultyTransport

pytestmark = pytest.mark.fuzz


class _ChattySplit(Processor):
    """Broadcasts every phase, then decides its own pid's parity — a
    split brain whose traffic gives delivery faults something to drop."""

    def on_phase(self, phase, inbox):
        return [
            (dst, "ping") for dst in range(self.ctx.n) if dst != self.ctx.pid
        ]

    def decision(self):
        return self.ctx.pid % 2


class ChattySplitBrain(AgreementAlgorithm):
    name = "scratch-chatty-split-brain"
    authenticated = False
    value_domain = frozenset({0, 1})

    def num_phases(self):
        return 2

    def make_processor(self, pid):
        return _ChattySplit()


class TestPlanChaosCases:
    def test_deterministic_in_arguments(self):
        kwargs = dict(budget=5, seed=3, fault_rate=0.4)
        a = plan_chaos_cases(["dolev-strong"], **kwargs)
        b = plan_chaos_cases(["dolev-strong"], **kwargs)
        assert a == b
        assert a != plan_chaos_cases(["dolev-strong"], budget=5, seed=4, fault_rate=0.4)

    def test_cases_carry_plans_and_empty_scripts(self):
        cases = plan_chaos_cases(["dolev-strong"], budget=4, seed=0, fault_rate=0.5)
        assert len(cases) == 4
        for case in cases:
            assert case.script == AdversaryScript(faulty=())
            assert case.fault_plan is not None and not case.fault_plan.is_empty

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError, match="no fuzz configuration"):
            plan_chaos_cases(["nonesuch"], budget=1, seed=0, fault_rate=0.5)


class TestChaosOracle:
    def test_injected_crash_is_benign_not_safety(self):
        algorithm = get("dolev-strong")(6, 2)
        plan = FaultPlan(faults=(CrashFault(pid=2, phase=1),))
        outcome = execute_script(
            algorithm, 1, AdversaryScript(faulty=()), fault_plan=plan
        )
        assert outcome.verdict in (OK, BENIGN)
        assert not outcome.failed

    def test_empty_plan_behaves_like_no_plan(self):
        algorithm = get("dolev-strong")(6, 2)
        with_plan = execute_script(
            algorithm, 1, AdversaryScript(faulty=()), fault_plan=FaultPlan()
        )
        without = execute_script(algorithm, 1, AdversaryScript(faulty=()))
        assert with_plan == without
        assert with_plan.verdict == OK

    def test_divergence_among_unexcused_is_safety(self):
        algorithm = ChattySplitBrain(6, 2)
        # pid 5 crashes; the split-brain disagreement among pids 0-4 is
        # NOT attributable to that fault, so it must stay a safety finding.
        plan = FaultPlan(faults=(CrashFault(pid=5, phase=1),))
        result = run(algorithm, 1, transport=FaultyTransport(plan))
        assert result.fault_events
        outcome = classify_run(algorithm, result)
        assert outcome.verdict == SAFETY

    def test_divergence_past_the_fault_budget_is_benign(self):
        algorithm = ChattySplitBrain(6, 2)
        # Three crashed processors exceed t=2: guarantees no longer bind,
        # so even a split brain reads as benign over-faulting.
        plan = FaultPlan(
            faults=tuple(CrashFault(pid=p, phase=1) for p in (3, 4, 5))
        )
        result = run(algorithm, 1, transport=FaultyTransport(plan))
        outcome = classify_run(algorithm, result)
        assert outcome.verdict == BENIGN
        assert "budget" in outcome.detail

    def test_campaign_smoke_counts_benign(self):
        cases = plan_chaos_cases(["dolev-strong"], budget=10, seed=0, fault_rate=0.5)
        results = run_campaign(cases, workers=1)
        (summary,) = summarize(results)
        assert summary.cases == 10
        assert summary.safety == summary.bound == summary.crash == 0
        assert summary.ok + summary.benign == 10
        row = summary.as_row()
        assert row["benign"] == summary.benign

    def test_chaos_worker_count_invariance(self):
        cases = plan_chaos_cases(["dolev-strong"], budget=6, seed=1, fault_rate=0.5)
        serial = run_campaign(cases, workers=1)
        parallel = run_campaign(cases, workers=2)
        assert [r.outcome for r in serial] == [r.outcome for r in parallel]


class TestChaosCorpus:
    def entry(self):
        return CorpusEntry(
            algorithm="dolev-strong",
            n=6,
            t=2,
            value=1,
            seed=11,
            verdict=BENIGN,
            detail="test entry",
            script=AdversaryScript(faulty=()),
            fault_plan=FaultPlan(faults=(CrashFault(pid=2, phase=1),), seed=11),
        )

    def test_fault_plan_round_trips(self, tmp_path):
        path = save_entry(tmp_path, self.entry())
        loaded = load_entry(path)
        assert loaded == self.entry()

    def test_pre_fault_corpus_files_still_load(self, tmp_path):
        data = self.entry().to_json_dict()
        del data["fault_plan"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(data))
        assert load_entry(path).fault_plan is None

    def test_plain_entries_omit_the_field(self):
        data = CorpusEntry(
            algorithm="dolev-strong",
            n=6,
            t=2,
            value=1,
            seed=0,
            verdict="safety",
            detail="",
            script=AdversaryScript(faulty=(1,)),
        ).to_json_dict()
        assert "fault_plan" not in data


class TestFuzzCasePickles:
    def test_chaos_case_round_trips_through_pickle(self):
        import pickle

        (case,) = plan_chaos_cases(
            ["dolev-strong"], budget=1, seed=0, fault_rate=0.5
        )
        assert pickle.loads(pickle.dumps(case)) == case
        assert isinstance(case, FuzzCase)
