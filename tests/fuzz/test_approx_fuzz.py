"""Fuzzing the approximate / randomized workload family.

The seeded ε-bug (``strawman-overshoot``, an untrimmed midpoint) must be
*found* by a stock campaign, classified under the dedicated
``eps_violation`` verdict, and shrunk to a script a human can read.
Ben-Or cases must carry a derived coin seed so every finding replays the
exact coin stream that produced it.
"""

import pytest

from repro.fuzz.campaign import (
    FUZZ_CONFIGS,
    plan_cases,
    shrink_result,
    summarize,
)
from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.oracle import EPS_VIOLATION, OK

pytestmark = pytest.mark.fuzz


def _run_overshoot_campaign(budget=40, seed=0):
    cases = plan_cases(["strawman-overshoot"], budget=budget, seed=seed)
    return [case.run() for case in cases]


class TestEpsViolationDiscovery:
    def test_campaign_finds_the_seeded_eps_bug(self):
        results = _run_overshoot_campaign()
        verdicts = {result.outcome.verdict for result in results}
        # The overshoot strawman is correct fault-free but leaks junk into
        # its mean: the only failure class is the epsilon one.
        assert EPS_VIOLATION in verdicts
        assert verdicts <= {OK, EPS_VIOLATION}

    def test_eps_failure_shrinks_to_a_tiny_script(self):
        results = _run_overshoot_campaign()
        first = next(r for r in results if r.outcome.verdict == EPS_VIOLATION)
        shrunk = shrink_result(first)
        assert shrunk.outcome.verdict == EPS_VIOLATION
        assert len(shrunk.minimal_script.mutations) <= 2
        assert len(shrunk.minimal_script.faulty) <= first.case.t

    def test_eps_detail_names_the_violated_condition(self):
        results = _run_overshoot_campaign()
        first = next(r for r in results if r.outcome.verdict == EPS_VIOLATION)
        assert "eps" in first.outcome.detail

    def test_summary_counts_eps_in_its_own_bucket(self):
        results = _run_overshoot_campaign()
        (summary,) = summarize(results)
        eps_count = sum(
            1 for r in results if r.outcome.verdict == EPS_VIOLATION
        )
        assert summary.eps == eps_count > 0
        assert summary.safety == 0
        assert summary.ok + summary.eps == summary.cases


class TestCoinSeedDerivation:
    def test_coin_algorithms_get_derived_coin_seeds(self):
        cases = plan_cases(["ben-or"], budget=5, seed=7)
        seeds = [case.coin_seed for case in cases]
        assert all(s is not None for s in seeds)
        assert len(set(seeds)) == len(seeds)  # one stream per case

    def test_deterministic_algorithms_get_none(self):
        for name in ("midpoint-approx", "filtered-mean-approx", "dolev-strong"):
            cases = plan_cases([name], budget=3, seed=7)
            assert all(case.coin_seed is None for case in cases)

    def test_planning_is_deterministic(self):
        assert plan_cases(["ben-or"], budget=5, seed=7) == plan_cases(
            ["ben-or"], budget=5, seed=7
        )

    def test_benor_case_replays_bit_for_bit(self):
        case = plan_cases(["ben-or"], budget=3, seed=11)[1]
        a = case.run().outcome
        b = case.run().outcome
        assert a == b


class TestCorpusRoundTrip:
    def test_float_params_and_coin_seed_survive_json(self):
        results = _run_overshoot_campaign(budget=10)
        first = next(r for r in results if r.outcome.verdict == EPS_VIOLATION)
        entry = CorpusEntry(
            algorithm=first.case.algorithm,
            n=first.case.n,
            t=first.case.t,
            value=first.case.value,
            seed=first.case.seed,
            verdict=first.outcome.verdict,
            detail=first.outcome.detail,
            script=first.case.script,
            params=dict(first.case.params),
            coin_seed=99,
        )
        restored = CorpusEntry.from_json_dict(entry.to_json_dict())
        assert restored == entry
        assert isinstance(restored.params["eps"], float)
        assert restored.coin_seed == 99

    def test_coinless_entry_omits_coin_seed_key(self):
        results = _run_overshoot_campaign(budget=10)
        first = next(r for r in results if r.outcome.failed)
        entry = CorpusEntry(
            algorithm=first.case.algorithm,
            n=first.case.n,
            t=first.case.t,
            value=first.case.value,
            seed=first.case.seed,
            verdict=first.outcome.verdict,
            detail=first.outcome.detail,
            script=first.case.script,
            params=dict(first.case.params),
        )
        assert "coin_seed" not in entry.to_json_dict()


class TestWorkloadConfigs:
    def test_every_workload_has_a_fuzz_config(self):
        for name in ("midpoint-approx", "filtered-mean-approx", "ben-or",
                     "strawman-overshoot"):
            assert name in FUZZ_CONFIGS

    def test_honest_workloads_survive_a_small_campaign(self):
        for name in ("midpoint-approx", "filtered-mean-approx", "ben-or"):
            cases = plan_cases([name], budget=6, seed=0)
            for case in cases:
                outcome = case.run().outcome
                assert not outcome.failed, (
                    f"{name} seed {case.seed}: {outcome.verdict} "
                    f"({outcome.detail})"
                )
