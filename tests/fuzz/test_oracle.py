"""Oracle verdicts: OK / SAFETY / BOUND / CRASH, and their precedence."""

import pytest

from repro.algorithms.dolev_strong import DolevStrong
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.core.runner import run
from repro.fuzz.oracle import BOUND, CRASH, OK, SAFETY, classify_run, execute_script
from repro.fuzz.script import AdversaryScript

pytestmark = pytest.mark.fuzz


class _SplitBrain(Processor):
    """Scratch processor violating agreement: decides its own pid's parity."""

    def on_phase(self, phase, inbox):
        return []

    def decision(self):
        return self.ctx.pid % 2


class SplitBrainAlgorithm(AgreementAlgorithm):
    name = "scratch-split-brain"
    authenticated = False
    value_domain = frozenset({0, 1})
    phase_bound = "1"
    message_bound = "0"

    def num_phases(self):
        return 1

    def make_processor(self, pid):
        return _SplitBrain()


class _Exploding(Processor):
    def on_phase(self, phase, inbox):
        raise RuntimeError("scratch processor explosion")

    def decision(self):
        return None


class ExplodingAlgorithm(AgreementAlgorithm):
    name = "scratch-exploding"
    authenticated = False
    value_domain = frozenset({0, 1})

    def num_phases(self):
        return 1

    def make_processor(self, pid):
        return _Exploding()


class UnderDeclaredDolevStrong(DolevStrong):
    """Dolev-Strong with a deliberately impossible message budget."""

    name = "scratch-under-declared"
    message_bound = "1"


EMPTY = AdversaryScript(faulty=(1,))  # one faulty pid, zero mutations


class TestVerdicts:
    def test_fault_free_script_is_ok(self):
        outcome = execute_script(DolevStrong(5, 1), 1, EMPTY)
        assert outcome.verdict == OK
        assert not outcome.failed
        assert outcome.messages > 0

    def test_agreement_violation_is_safety(self):
        outcome = execute_script(SplitBrainAlgorithm(4, 1), 1, EMPTY)
        assert outcome.verdict == SAFETY
        assert outcome.failed

    def test_exceeded_declared_bound_is_bound(self):
        outcome = execute_script(UnderDeclaredDolevStrong(5, 1), 1, EMPTY)
        assert outcome.verdict == BOUND
        assert "declared bound 1" in outcome.detail

    def test_runner_exception_is_crash(self):
        outcome = execute_script(ExplodingAlgorithm(4, 1), 1, EMPTY)
        assert outcome.verdict == CRASH
        assert "RuntimeError" in outcome.detail

    def test_safety_takes_precedence_over_bound(self):
        # SplitBrain also busts its (zero) message bound in spirit; the
        # verdict must still be the more severe SAFETY.
        outcome = execute_script(SplitBrainAlgorithm(4, 1), 0, EMPTY)
        assert outcome.verdict == SAFETY

    def test_counts_reported_on_ok_runs(self):
        algorithm = DolevStrong(5, 1)
        result = run(algorithm, 1, EMPTY.build())
        outcome = classify_run(algorithm, result)
        assert outcome.verdict == OK
        assert outcome.messages == result.metrics.messages_by_correct
        assert outcome.signatures == result.metrics.signatures_by_correct
        assert outcome.phases_used == result.metrics.last_active_phase
