"""Tests for scripts/bench_compare.py (loaded by path; it is not a package)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parents[2] / "scripts" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def bench_doc(cases, *, quick=False, workers=1):
    return {
        "schema": "repro-bench/1",
        "workers": workers,
        "repeat": 3,
        "quick": quick,
        "cases": {
            key: {"kind": "runner", "seconds": seconds}
            for key, seconds in cases.items()
        },
    }


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self, capsys):
        baseline = bench_doc({"runner:a": 1.0, "runner:b": 2.0})
        current = bench_doc({"runner:a": 1.1, "runner:b": 1.9})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, capsys):
        baseline = bench_doc({"runner:a": 1.0})
        current = bench_doc({"runner:a": 1.5})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_one_sided_cases_never_fail(self, capsys):
        baseline = bench_doc({"runner:a": 1.0, "runner:old": 1.0})
        current = bench_doc({"runner:a": 1.0, "runner:new": 9.0})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        out = capsys.readouterr().out
        assert "only in baseline" in out and "only in current" in out

    def test_quick_vs_full_refused(self):
        baseline = bench_doc({"runner:a": 1.0}, quick=False)
        current = bench_doc({"runner:a": 1.0}, quick=True)
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.compare(baseline, current, threshold=0.25)
        assert excinfo.value.code == 2

    def test_worker_mismatch_is_a_note_not_an_error(self, capsys):
        baseline = bench_doc({"runner:a": 1.0}, workers=1)
        current = bench_doc({"runner:a": 1.0}, workers=4)
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        assert "worker counts differ" in capsys.readouterr().out


class TestMain:
    def test_end_to_end_ok(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", bench_doc({"runner:a": 1.0}))
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.01}))
        assert bench_compare.main([baseline, current]) == 0

    def test_threshold_flag(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", bench_doc({"runner:a": 1.0}))
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.2}))
        assert bench_compare.main([baseline, current]) == 0
        assert bench_compare.main([baseline, current, "--threshold", "0.1"]) == 1

    def test_unreadable_input_exits_2(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.0}))
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.main([missing, current])
        assert excinfo.value.code == 2

    def test_wrong_schema_exits_2(self, tmp_path):
        bogus = write(tmp_path, "bogus.json", {"schema": "other/1", "cases": {}})
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.0}))
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.main([bogus, current])
        assert excinfo.value.code == 2


def batch_doc(*, batch_rate=1000.0, runner_rate=100.0, seconds=1.0, quick=False):
    """A bench doc with one batch case wired to its runner baseline."""
    return {
        "schema": "repro-bench/1",
        "workers": 1,
        "repeat": 3,
        "quick": quick,
        "cases": {
            "runner:a": {
                "kind": "runner",
                "seconds": seconds,
                "messages_per_sec": runner_rate,
            },
            "batch:a": {
                "kind": "batch",
                "seconds": seconds,
                "baseline_case": "runner:a",
                "messages_per_sec": batch_rate,
            },
        },
    }


class TestWorstFirstOrdering:
    def test_rows_are_sorted_by_delta_descending(self, capsys):
        baseline = bench_doc({"runner:a": 1.0, "runner:b": 1.0, "runner:c": 1.0})
        current = bench_doc({"runner:a": 1.1, "runner:b": 2.0, "runner:c": 0.5})
        bench_compare.compare(baseline, current, threshold=10.0)
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("runner:")
        ]
        assert [line.split()[0] for line in lines] == [
            "runner:b", "runner:a", "runner:c",
        ]


class TestBatchFloor:
    def test_floor_met_passes(self, capsys):
        assert bench_compare.check_batch_floor(batch_doc(), 5.0) == 0
        assert "10.0x" in capsys.readouterr().out

    def test_floor_missed_fails(self, capsys):
        assert bench_compare.check_batch_floor(batch_doc(batch_rate=300.0), 5.0) == 1
        assert "FLOOR FAIL" in capsys.readouterr().out

    def test_missing_baseline_case_fails_loudly(self, capsys):
        document = batch_doc()
        del document["cases"]["runner:a"]
        assert bench_compare.check_batch_floor(document, 5.0) == 1
        assert "cannot compute" in capsys.readouterr().out

    def test_no_batch_cases_fails(self, capsys):
        document = bench_doc({"runner:a": 1.0})
        assert bench_compare.check_batch_floor(document, 5.0) == 1
        assert "no batch" in capsys.readouterr().out

    def test_main_flag_gates_the_current_file(self, tmp_path):
        baseline = write(tmp_path, "base.json", batch_doc())
        good = write(tmp_path, "good.json", batch_doc())
        slow = write(tmp_path, "slow.json", batch_doc(batch_rate=150.0))
        assert bench_compare.main([baseline, good, "--min-batch-speedup", "5"]) == 0
        assert bench_compare.main([baseline, slow, "--min-batch-speedup", "5"]) == 1


class TestUpdate:
    def test_update_rewrites_the_baseline(self, tmp_path):
        baseline = write(tmp_path, "base.json", bench_doc({"runner:a": 1.0}))
        current_doc = bench_doc({"runner:a": 5.0})
        current = write(tmp_path, "curr.json", current_doc)
        # A 5x regression fails a plain run but not an --update run.
        assert bench_compare.main([baseline, current]) == 1
        assert bench_compare.main([baseline, current, "--update"]) == 0
        assert json.loads(Path(baseline).read_text(encoding="utf-8")) == current_doc

    def test_update_still_fails_on_floor_violation(self, tmp_path):
        baseline = write(tmp_path, "base.json", batch_doc())
        current = write(tmp_path, "curr.json", batch_doc(batch_rate=150.0))
        code = bench_compare.main(
            [baseline, current, "--update", "--min-batch-speedup", "5"]
        )
        assert code == 1


def service_doc(*, rate=50.0, trials=1, with_rate=True, extra_cases=None):
    """A bench doc with service:* cases and a trials count."""
    case = {"kind": "service", "seconds": 1.0, "requests": 100}
    if with_rate:
        case["agreements_per_sec"] = rate
    cases = {"service:mixed": dict(case), "service:faulty": dict(case)}
    cases.update(extra_cases or {})
    return {
        "schema": "repro-bench/1",
        "workers": 1,
        "repeat": 3,
        "trials": trials,
        "quick": False,
        "cases": cases,
    }


class TestServiceFloor:
    def test_above_floor_passes(self, capsys):
        assert bench_compare.check_service_floor(service_doc(rate=50.0), 20.0) == 0
        assert "service:mixed" in capsys.readouterr().out

    def test_below_floor_fails(self, capsys):
        assert bench_compare.check_service_floor(service_doc(rate=5.0), 20.0) == 1
        assert "FLOOR FAIL" in capsys.readouterr().out

    def test_missing_rate_fails_loudly(self, capsys):
        document = service_doc(with_rate=False)
        assert bench_compare.check_service_floor(document, 20.0) == 1
        assert "no agreements_per_sec" in capsys.readouterr().out

    def test_no_service_cases_fails(self, capsys):
        document = bench_doc({"runner:a": 1.0})
        assert bench_compare.check_service_floor(document, 20.0) == 1
        assert "no service:* cases" in capsys.readouterr().out


class TestTrials:
    def test_enough_trials_passes(self, capsys):
        a, b = service_doc(trials=3), service_doc(trials=3)
        assert bench_compare.check_trials(a, b, 3) == 0
        assert "3 timing trial" in capsys.readouterr().out

    def test_too_few_trials_is_exit_2(self, capsys):
        a, b = service_doc(trials=3), service_doc(trials=1)
        assert bench_compare.check_trials(a, b, 3) == 2
        assert "requires --trials 3" in capsys.readouterr().out

    def test_missing_trials_field_defaults_to_one(self):
        legacy = bench_doc({"runner:a": 1.0})
        assert bench_compare.check_trials(legacy, legacy, 1) == 0
        assert bench_compare.check_trials(legacy, legacy, 2) == 2

    def test_differing_counts_are_a_note_not_a_failure(self, capsys):
        a, b = service_doc(trials=1), service_doc(trials=3)
        assert bench_compare.check_trials(a, b, 1) == 0
        assert "trial counts differ" in capsys.readouterr().out


class TestServiceFlagsInMain:
    def test_min_service_rate_flag(self, tmp_path):
        baseline = write(tmp_path, "base.json", service_doc(rate=50.0))
        current = write(tmp_path, "curr.json", service_doc(rate=50.0))
        assert bench_compare.main(
            [baseline, current, "--min-service-rate", "20"]
        ) == 0
        assert bench_compare.main(
            [baseline, current, "--min-service-rate", "100"]
        ) == 1

    def test_trials_flag_gates_before_comparison(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", service_doc(trials=1))
        current = write(tmp_path, "curr.json", service_doc(trials=1))
        assert bench_compare.main([baseline, current, "--trials", "3"]) == 2
        assert bench_compare.main([baseline, current, "--trials", "1"]) == 0
