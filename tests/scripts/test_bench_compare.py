"""Tests for scripts/bench_compare.py (loaded by path; it is not a package)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parents[2] / "scripts" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def bench_doc(cases, *, quick=False, workers=1):
    return {
        "schema": "repro-bench/1",
        "workers": workers,
        "repeat": 3,
        "quick": quick,
        "cases": {
            key: {"kind": "runner", "seconds": seconds}
            for key, seconds in cases.items()
        },
    }


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self, capsys):
        baseline = bench_doc({"runner:a": 1.0, "runner:b": 2.0})
        current = bench_doc({"runner:a": 1.1, "runner:b": 1.9})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, capsys):
        baseline = bench_doc({"runner:a": 1.0})
        current = bench_doc({"runner:a": 1.5})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_one_sided_cases_never_fail(self, capsys):
        baseline = bench_doc({"runner:a": 1.0, "runner:old": 1.0})
        current = bench_doc({"runner:a": 1.0, "runner:new": 9.0})
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        out = capsys.readouterr().out
        assert "only in baseline" in out and "only in current" in out

    def test_quick_vs_full_refused(self):
        baseline = bench_doc({"runner:a": 1.0}, quick=False)
        current = bench_doc({"runner:a": 1.0}, quick=True)
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.compare(baseline, current, threshold=0.25)
        assert excinfo.value.code == 2

    def test_worker_mismatch_is_a_note_not_an_error(self, capsys):
        baseline = bench_doc({"runner:a": 1.0}, workers=1)
        current = bench_doc({"runner:a": 1.0}, workers=4)
        assert bench_compare.compare(baseline, current, threshold=0.25) == 0
        assert "worker counts differ" in capsys.readouterr().out


class TestMain:
    def test_end_to_end_ok(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", bench_doc({"runner:a": 1.0}))
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.01}))
        assert bench_compare.main([baseline, current]) == 0

    def test_threshold_flag(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", bench_doc({"runner:a": 1.0}))
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.2}))
        assert bench_compare.main([baseline, current]) == 0
        assert bench_compare.main([baseline, current, "--threshold", "0.1"]) == 1

    def test_unreadable_input_exits_2(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.0}))
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.main([missing, current])
        assert excinfo.value.code == 2

    def test_wrong_schema_exits_2(self, tmp_path):
        bogus = write(tmp_path, "bogus.json", {"schema": "other/1", "cases": {}})
        current = write(tmp_path, "curr.json", bench_doc({"runner:a": 1.0}))
        with pytest.raises(SystemExit) as excinfo:
            bench_compare.main([bogus, current])
        assert excinfo.value.code == 2
