"""Tests for the active-set O(nt + t²) baseline."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestConfiguration:
    def test_needs_2t_plus_1(self):
        with pytest.raises(ConfigurationError):
            ActiveSetBroadcast(4, 2)

    def test_phase_count(self):
        assert ActiveSetBroadcast(20, 3).num_phases() == 5


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(5, 1), (10, 2), (30, 3), (100, 2)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement(self, n, t, value):
        result = run(ActiveSetBroadcast(n, t), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    def test_scales_linearly_in_n(self):
        """The whole point of the active set: messages grow like nt, not n²."""
        t = 2
        small = run(ActiveSetBroadcast(20, t), 1).metrics.messages_by_correct
        large = run(ActiveSetBroadcast(80, t), 1).metrics.messages_by_correct
        # quadrupling n far less than quadruples the traffic growth beyond
        # the inform fan-out (which is exactly (2t+1) per extra processor).
        assert large - small == (2 * t + 1) * 60

    def test_within_bound(self):
        algorithm = ActiveSetBroadcast(50, 3)
        result = run(algorithm, 1)
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()


class TestByzantineResilience:
    def test_silent_actives(self):
        result = run(ActiveSetBroadcast(20, 2), 1, SilentAdversary([1, 3]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_equivocating_transmitter(self):
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 12)})
        result = run(ActiveSetBroadcast(12, 2), 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_faulty_actives_cannot_deceive_passives(self):
        """t faulty actives voting a wrong value at the inform phase cannot
        reach the t+1 quorum passives require."""
        t = 2

        def script(view, env):
            if view.phase == t + 2:
                from repro.crypto.chains import SignatureChain

                sends = []
                for src in (1, 2):
                    wrong = SignatureChain.initial(0, env.keys[src], env.service)
                    sends.extend((src, q, wrong) for q in range(2 * t + 1, env.n))
                return sends
            return []

        result = run(ActiveSetBroadcast(12, t), 1, ScriptedAdversary([1, 2], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage(self):
        result = run(ActiveSetBroadcast(15, 2), 1, GarbageAdversary([4, 9]))
        assert check_byzantine_agreement(result).ok
