"""Tests for Algorithm 1 (Theorem 3): n = 2t+1, t+2 phases, ≤ 2t²+2t msgs."""

import pytest

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.algorithm1 import Algorithm1
from repro.bounds.formulas import theorem3_message_upper_bound, theorem3_phases
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement
from repro.crypto.chains import SignatureChain


class TestConfiguration:
    @pytest.mark.parametrize("n,t", [(4, 1), (5, 1), (7, 2), (5, 0)])
    def test_rejects_anything_but_n_equals_2t_plus_1(self, n, t):
        if n != 2 * t + 1 or t < 1:
            with pytest.raises(ConfigurationError):
                Algorithm1(n, t)

    @pytest.mark.parametrize("t", [1, 2, 3, 5])
    def test_phase_count_matches_theorem3(self, t):
        assert Algorithm1(2 * t + 1, t).num_phases() == theorem3_phases(t)

    @pytest.mark.parametrize("t", [1, 2, 3, 5])
    def test_message_bound_matches_theorem3(self, t):
        assert (
            Algorithm1(2 * t + 1, t).upper_bound_messages()
            == theorem3_message_upper_bound(t)
        )


class TestFaultFree:
    @pytest.mark.parametrize("t", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_validity(self, t, value):
        result = run(Algorithm1(2 * t + 1, t), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    @pytest.mark.parametrize("t", [1, 2, 3, 4, 5])
    def test_value_one_hits_the_bound_exactly(self, t):
        """The fault-free 1-history is the worst case: exactly 2t² + 2t."""
        result = run(Algorithm1(2 * t + 1, t), 1)
        assert result.metrics.messages_by_correct == 2 * t * t + 2 * t

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_value_zero_sends_only_the_broadcast(self, t):
        """0 is never relayed — only the transmitter's 2t messages flow."""
        result = run(Algorithm1(2 * t + 1, t), 0)
        assert result.metrics.messages_by_correct == 2 * t


class TestByzantineResilience:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_equivocating_transmitter(self, t):
        n = 2 * t + 1
        adversary = EquivocatingTransmitter(
            0, {q: (1 if q == 1 else 0) for q in range(1, n)}
        )
        result = run(Algorithm1(n, t), 0, adversary)
        assert check_byzantine_agreement(result).ok

    @pytest.mark.parametrize("t", [2, 3])
    def test_silent_side_a(self, t):
        n = 2 * t + 1
        result = run(Algorithm1(n, t), 1, SilentAdversary(list(range(1, t + 1))))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_transmitter_sends_one_only_to_one_side(self):
        """A faulty transmitter telling only side A still converges: A
        relays to B within the phase budget."""
        t = 2
        adversary = EquivocatingTransmitter(0, {1: 1, 2: 1, 3: 0, 4: 0})
        result = run(Algorithm1(5, t), 0, adversary)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage_resilience(self):
        result = run(Algorithm1(7, 3), 1, GarbageAdversary([1, 4]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_crash_chain_mid_relay(self):
        result = run(Algorithm1(7, 3), 1, CrashAdversary({1: 2, 4: 3, 2: 4}))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1


class TestCorrectOneMessageValidation:
    def test_same_side_path_rejected(self):
        """A chain whose signers hop within one side is not a path in G."""

        def script(view, env):
            if view.phase != 2:
                return []
            chain = SignatureChain(1)
            chain = chain.extend(env.keys[0], env.service)
            chain = chain.extend(env.keys[1], env.service)
            # 1 and 2 are both in A — (1, 2) is not an edge of G; target 2's
            # neighbour check must reject the extended path.
            return [(1, 2, chain)]

        result = run(Algorithm1(5, 2), 0, ScriptedAdversary([0, 1], script))
        assert result.decisions[2] == 0

    def test_wrong_length_chain_rejected(self):
        """A phase-k correct 1-message needs exactly k signatures."""

        def script(view, env):
            if view.phase != 3:
                return []
            chain = SignatureChain.initial(1, env.keys[0], env.service)
            return [(0, q, chain) for q in range(1, env.n)]  # 1 sig at phase 3

        result = run(Algorithm1(5, 2), 0, ScriptedAdversary([0], script))
        assert all(v == 0 for v in result.decisions.values())

    def test_forged_signature_rejected(self):
        def script(view, env):
            if view.phase != 1:
                return []
            from repro.crypto.chains import chain_body

            fake = env.service.forge(0, chain_body(1, ()))
            chain = SignatureChain(1, (fake,))
            return [(1, q, chain) for q in range(2, env.n)]

        result = run(Algorithm1(5, 2), 0, ScriptedAdversary([0, 1], script))
        assert all(v == 0 for v in result.decisions.values())

    def test_value_zero_chain_never_relayed(self):
        """Only 1-messages propagate; a signed 0 is not a correct 1-message."""
        result = run(Algorithm1(5, 2), 0)
        relays = [
            e
            for k, phase in enumerate(result.history.phases)
            if k >= 2
            for e in phase.edges()
        ]
        assert relays == []


class TestDecisionTiming:
    def test_delayed_release_still_reaches_everyone_by_t_plus_2(self):
        """Theorem 3's hard case: faulty processors release the value as
        late as possible; relays must still cover everybody by phase t+2,
        with the final deliveries arriving through ``on_final``."""
        t = 2  # n = 5, A = {1, 2}, B = {3, 4}, faulty = {0, 3}

        def script(view, env):
            if view.phase == 1:
                # faulty transmitter whispers 1 only to its accomplice 3.
                chain = SignatureChain.initial(1, env.keys[0], env.service)
                return [(0, 3, chain)]
            if view.phase == 2:
                # accomplice 3 (side B) extends and releases only to 1.
                chain = SignatureChain.initial(1, env.keys[0], env.service)
                chain = chain.extend(env.keys[3], env.service)
                return [(3, 1, chain)]
            return []

        result = run(Algorithm1(5, t), 0, ScriptedAdversary([0, 3], script))
        # 1 accepts (0,3)-chain at phase 3 and relays (0,3,1) to B; 4
        # accepts at phase 4 and relays (0,3,1,4) to A; 2 accepts it in
        # on_final. Everyone correct must land on 1.
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1
