"""Tests for the strawman counterexamples: they work fault-free and break
exactly the way the lower-bound proofs predict."""

import pytest

from repro.algorithms.cheap_strawman import EchoBroadcast, UnderSigningBroadcast
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestUnderSigningBroadcast:
    @pytest.mark.parametrize("value", [0, 1])
    def test_fault_free_agreement(self, value):
        result = run(UnderSigningBroadcast(6, 2), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    def test_spends_below_every_bound(self):
        result = run(UnderSigningBroadcast(8, 2), 1)
        from repro.bounds.formulas import (
            theorem1_signature_lower_bound,
            theorem2_message_lower_bound,
        )

        # below the Theorem 1 signature budget (over H and G: 2(n-1) < n(t+1)/4
        # whenever t ≥ 7... for n=8, t=2 the *per-processor* form is what
        # fails: each non-transmitter exchanges only 1 < t + 1 signatures).
        assert result.metrics.signatures_by_correct == 7
        # below the Theorem 2 per-B-member requirement for t = 2.
        assert all(
            result.metrics.correct_messages_received_by[q] == 1 for q in range(1, 8)
        )
        assert theorem2_message_lower_bound(8, 2) > 0
        assert theorem1_signature_lower_bound(8, 2) > 0

    def test_single_phase(self):
        assert UnderSigningBroadcast(5, 1).num_phases() == 1


class TestEchoBroadcast:
    @pytest.mark.parametrize("value", [0, 1])
    def test_fault_free_agreement(self, value):
        result = run(EchoBroadcast(6, 2), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    def test_message_volume_is_quadratic_but_signature_diversity_is_not(self):
        """EchoBroadcast sends Θ(n²) messages yet every chain carries only
        the transmitter's and one echoer's signatures — message volume does
        not buy signature-exchange diversity."""
        result = run(EchoBroadcast(8, 2), 1)
        assert result.metrics.messages_by_correct == 7 + 7 * 7
        # every processor's signature reaches everyone via echoes, so the
        # exchange sets are large — but the transmitter remains the single
        # point of trust: silence it and nobody has any chain at all.
        silent = run(EchoBroadcast(8, 2), 1)
        assert silent.metrics.unsigned_correct_messages == 0
