"""Tests for Algorithm 4 (Theorem 6 / Lemma 2): the grid exchange."""

import pytest

from repro.adversary.standard import (
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.algorithm4 import (
    Algorithm4,
    check_lemma2,
    nonisolated_set,
)
from repro.bounds.formulas import theorem6_message_upper_bound
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.network.topology import Grid


def values_for(n: int) -> dict[int, object]:
    return {pid: ("value-of", pid) for pid in range(n)}


class TestConfiguration:
    def test_rejects_missing_values(self):
        with pytest.raises(ConfigurationError, match="no value"):
            Algorithm4(2, 1, {0: "a"})

    def test_rejects_zero_grid(self):
        with pytest.raises(ConfigurationError):
            Algorithm4(0, 0, {})

    def test_three_phases_always(self):
        assert Algorithm4(3, 2, values_for(9)).num_phases() == 3


class TestFaultFree:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
    def test_everyone_learns_everything(self, m):
        algorithm = Algorithm4(m, max(1, m // 2) if m > 1 else 0, values_for(m * m))
        result = run(algorithm, 0)
        p_set, violations = check_lemma2(result, algorithm)
        assert not violations
        assert p_set == set(range(m * m))

    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_message_count_exactly_at_bound(self, m):
        algorithm = Algorithm4(m, 1, values_for(m * m))
        result = run(algorithm, 0)
        assert result.metrics.messages_by_correct == theorem6_message_upper_bound(m)

    def test_beats_hub_relay_for_large_t(self):
        """The point of Theorem 6: ``3(m−1)m² = O(N^1.5)`` undercuts the
        ``Θ(Nt)`` hub-relay solution once ``t`` grows past ``≈ 3√N``."""
        m = 4
        n = m * m
        t = 3 * m
        hub_relay = (n - 1) * (t + 1) + (n - t - 1) * (t + 1)
        assert theorem6_message_upper_bound(m) < n * t
        assert theorem6_message_upper_bound(m) < hub_relay


class TestLemma2UnderFaults:
    def test_silent_row_isolation(self):
        m, t = 4, 2
        algorithm = Algorithm4(m, t, values_for(m * m))
        # both faults in row 0: rows 1..3 stay clean, row 0 survivors have
        # half their row faulty and fall out of P.
        result = run(algorithm, 0, SilentAdversary([0, 1]))
        p_set, violations = check_lemma2(result, algorithm)
        assert not violations
        assert p_set == set(range(4, 16))

    def test_spread_faults_keep_everyone_nonisolated(self):
        m, t = 4, 2
        algorithm = Algorithm4(m, t, values_for(m * m))
        # one fault in each of two different rows: < m/2 = 2 per row.
        result = run(algorithm, 0, SilentAdversary([0, 5]))
        p_set, violations = check_lemma2(result, algorithm)
        assert not violations
        assert p_set == set(range(16)) - {0, 5}

    def test_garbage_bundles_rejected(self):
        m, t = 3, 2
        algorithm = Algorithm4(m, t, values_for(9))
        result = run(algorithm, 0, GarbageAdversary([0, 4]))
        _, violations = check_lemma2(result, algorithm)
        assert not violations

    def test_lying_relay_cannot_corrupt_values(self):
        """A faulty processor forwarding altered bundles cannot make a
        non-isolated processor accept a wrong value for a correct one —
        signatures travel with the values."""
        m, t = 3, 1
        algorithm = Algorithm4(m, t, values_for(9))

        def script(view, env):
            if view.phase == 2:
                from repro.crypto.chains import SignatureChain

                fake = SignatureChain.initial(
                    ("value-of", 99), env.keys[4], env.service
                )
                # 4 claims row 1's bundle is just its fake value.
                return [(4, q, (fake,)) for q in (1, 7)]
            return []

        result = run(algorithm, 0, ScriptedAdversary([4], script))
        p_set, violations = check_lemma2(result, algorithm)
        assert not violations
        for receiver in p_set:
            exchange = result.processors[receiver].exchange
            for source, values in exchange.gathered.items():
                if source != 4:
                    assert values == {("value-of", source)}


class TestNonIsolatedSet:
    def test_counts_row_faults(self):
        grid = Grid(tuple(range(9)))
        p = nonisolated_set(grid, frozenset({0, 1}))
        # row 0 has 2 ≥ m/2 = 1.5 faulty → 2 is isolated.
        assert p == set(range(3, 9))

    def test_no_faults(self):
        grid = Grid(tuple(range(4)))
        assert nonisolated_set(grid, frozenset()) == {0, 1, 2, 3}


class TestGridExchangeFormatChecks:
    def test_oversized_bundle_rejected(self):
        m, t = 2, 1
        algorithm = Algorithm4(m, t, values_for(4))

        def script(view, env):
            if view.phase == 2:
                from repro.crypto.chains import SignatureChain

                chains = tuple(
                    SignatureChain.initial(("spam", i), env.keys[1], env.service)
                    for i in range(5)
                )
                return [(1, 3, chains)]
            return []

        result = run(algorithm, 0, ScriptedAdversary([1], script))
        exchange = result.processors[3].exchange
        assert all(
            not str(v).startswith("('spam'") for vs in exchange.gathered.values() for v in vs
        )

    def test_wrong_signer_in_bundle_rejected(self):
        """A phase-2 bundle may only carry signatures of the *sender's row*;
        smuggling another row's (colluding) signature poisons the whole
        bundle, which is then treated as the empty string."""
        m, t = 3, 2
        algorithm = Algorithm4(m, t, values_for(9))

        def script(view, env):
            if view.phase == 2:
                from repro.crypto.chains import SignatureChain

                outsider = SignatureChain.initial("outside", env.keys[0], env.service)
                # faulty 4 (row 1) sends its column peer 1 a "row 1" bundle
                # signed by faulty 0 — signer 0 is in row 0, not row 1.
                return [(4, 1, (outsider,))]
            return []

        result = run(algorithm, 0, ScriptedAdversary([0, 4], script))
        exchange = result.processors[1].exchange
        assert "outside" not in {v for vs in exchange.gathered.values() for v in vs}
