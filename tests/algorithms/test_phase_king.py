"""Tests for the Phase King reference baseline (post-paper)."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    GarbageAdversary,
    RandomizedAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.phase_king import KingWord, PhaseKing, Preference
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestConfiguration:
    @pytest.mark.parametrize("n,t", [(4, 1), (8, 2), (12, 3)])
    def test_rejects_n_at_most_4t(self, n, t):
        with pytest.raises(ConfigurationError, match="4t"):
            PhaseKing(n, t)

    def test_phases(self):
        assert PhaseKing(9, 2).num_phases() == 7

    def test_unauthenticated(self):
        result = run(PhaseKing(5, 1), 1)
        assert result.metrics.signatures_by_correct == 0


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(5, 1), (9, 2), (13, 3)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement(self, n, t, value):
        algorithm = PhaseKing(n, t)
        result = run(algorithm, value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_polynomial_vs_oral_messages(self):
        """The reason it is here: a polynomial unauthenticated point."""
        from repro.algorithms.oral_messages import OralMessages

        n, t = 13, 3
        pk = run(PhaseKing(n, t), 1).metrics.messages_by_correct
        om = run(OralMessages(n, t), 1).metrics.messages_by_correct
        assert pk < om / 5


class TestByzantineResilience:
    def test_faulty_kings(self):
        """All t faulty processors are kings of early iterations; the last
        king is correct and fixes everything."""
        n, t = 9, 2
        result = run(PhaseKing(n, t), 1, SilentAdversary([0, 1][:t]))
        assert check_byzantine_agreement(result).ok

    def test_equivocating_transmitter_and_first_king(self):
        n, t = 9, 2
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)})
        result = run(PhaseKing(n, t), 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_lying_king_cannot_override_strong_preferences(self):
        """A faulty king telling everyone the wrong value is ignored by
        processors whose count reached n − t."""
        n, t = 9, 2

        def script(view, env):
            # processor 1 (king of iteration 1) broadcasts a lie in its
            # round B (phase 5) and otherwise stays correct-silent.
            if view.phase == 5:
                return [(1, q, KingWord("wrong")) for q in range(n) if q != 1]
            return []

        result = run(PhaseKing(n, t), 1, ScriptedAdversary([1], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_double_voting_rejected(self):
        """A faulty processor sending two different preferences in one
        round is counted once."""
        n, t = 9, 2

        def script(view, env):
            if view.phase % 2 == 0:  # round A phases are even
                sends = []
                for value in (0, 1):
                    sends.extend(
                        (1, q, Preference(value)) for q in range(2, n)
                    )
                return sends
            return []

        result = run(PhaseKing(n, t), 1, ScriptedAdversary([1], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage(self):
        result = run(PhaseKing(9, 2), 1, GarbageAdversary([3, 4], forge=False))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_chaos(self, seed):
        result = run(PhaseKing(9, 2), seed % 2, RandomizedAdversary([1, 5], seed))
        assert check_byzantine_agreement(result).ok
