"""Tests for interactive consistency (n parallel rotated BA instances)."""

import pytest

from repro.adversary.standard import (
    GarbageAdversary,
    RandomizedAdversary,
    SilentAdversary,
)
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.interactive import (
    InteractiveConsistency,
    check_interactive_consistency,
)
from repro.algorithms.oral_messages import OralMessages
from repro.core.errors import ConfigurationError
from repro.core.runner import run


def make(n=7, t=2, inner=DolevStrong, values=None):
    values = values if values is not None else [f"v{i}" for i in range(n)]
    return InteractiveConsistency(n, t, values=values, inner_factory=inner)


class TestConfiguration:
    def test_value_count_must_match(self):
        with pytest.raises(ConfigurationError, match="one value per"):
            InteractiveConsistency(5, 1, values=["a"], inner_factory=DolevStrong)

    def test_name_and_phases_follow_inner(self):
        algorithm = make()
        assert algorithm.name == "interactive-dolev-strong"
        assert algorithm.num_phases() == DolevStrong(7, 2).num_phases()

    def test_message_bound_is_n_times_inner(self):
        algorithm = make()
        assert (
            algorithm.upper_bound_messages()
            == 7 * DolevStrong(7, 2).upper_bound_messages()
        )


class TestFaultFree:
    def test_everyone_holds_the_true_vector(self):
        algorithm = make()
        result = run(algorithm, "v0")
        assert check_interactive_consistency(result, algorithm) == []
        for pid in result.correct:
            assert result.processors[pid].vector() == tuple(
                f"v{i}" for i in range(7)
            )

    def test_unauthenticated_inner(self):
        algorithm = make(inner=OralMessages, values=list(range(7)))
        result = run(algorithm, 0)
        assert check_interactive_consistency(result, algorithm) == []

    def test_within_message_bound(self):
        algorithm = make()
        result = run(algorithm, "v0")
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()


class TestByzantineResilience:
    def test_silent_sources_default_consistently(self):
        algorithm = make()
        result = run(algorithm, "v0", SilentAdversary([2, 5]))
        assert check_interactive_consistency(result, algorithm) == []
        vectors = {result.processors[p].vector() for p in result.correct}
        assert len(vectors) == 1
        vector = vectors.pop()
        # faulty sources' slots are the inner default, consistently.
        assert vector[2] == vector[5] == 0
        assert vector[0] == "v0" and vector[3] == "v3"

    def test_garbage_across_all_instances(self):
        algorithm = make(inner=OralMessages, values=list(range(7)))
        result = run(algorithm, 0, GarbageAdversary([4], forge=False))
        assert check_interactive_consistency(result, algorithm) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_chaos(self, seed):
        algorithm = make()
        adversary = RandomizedAdversary([1, 6], seed)
        result = run(algorithm, "v0", adversary)
        assert check_interactive_consistency(result, algorithm) == []

    def test_signature_rotation_is_unforgeable_across_instances(self):
        """Real processor 3 signs as virtual 0 in instance 3 only; no other
        instance's registry accepts that identity from anyone else."""
        algorithm = make()
        result = run(algorithm, "v0")
        service_3 = algorithm._services[3]
        service_4 = algorithm._services[4]
        from repro.crypto.chains import SignatureChain, chain_body

        forged = service_4.forge(0, chain_body("v3", ()))
        assert not service_4.verify(forged, chain_body("v3", ()))
        # instance 3's registry holds virtual-0 signatures (real 3 signed).
        legit = SignatureChain.initial("x", service_3.key_for(0), service_3)
        assert legit.verify(service_3)
        assert not legit.verify(service_4)
