"""Tests for the unauthenticated OM(t)/EIG baseline."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.oral_messages import OralMessages, Relay
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestConfiguration:
    @pytest.mark.parametrize("n,t", [(3, 1), (6, 2), (9, 3)])
    def test_rejects_n_at_most_3t(self, n, t):
        with pytest.raises(ConfigurationError, match="3t"):
            OralMessages(n, t)

    def test_phases_is_t_plus_one(self):
        assert OralMessages(7, 2).num_phases() == 3

    def test_uses_no_signatures(self):
        result = run(OralMessages(7, 2), 1)
        assert result.metrics.signatures_by_correct == 0
        assert not OralMessages.authenticated


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement(self, n, t, value):
        result = run(OralMessages(n, t), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_message_count_matches_closed_form(self, n, t):
        algorithm = OralMessages(n, t)
        result = run(algorithm, 1)
        assert result.metrics.messages_by_correct == algorithm.upper_bound_messages()

    def test_exponential_growth_with_t(self):
        """The reason [10]'s polynomial algorithm matters: OM(t) explodes."""
        counts = [
            OralMessages(3 * t + 1, t).upper_bound_messages() for t in (1, 2, 3, 4)
        ]
        ratios = [b / a for a, b in zip(counts, counts[1:])]
        assert all(r2 > r1 for r1, r2 in zip(ratios, ratios[1:]))


class TestByzantineResilience:
    def test_classic_3_general_impossibility_boundary(self):
        """n = 4, t = 1 works — one fewer processor is rejected outright."""
        adversary = EquivocatingTransmitter(0, {1: 0, 2: 1, 3: 0})
        result = run(OralMessages(4, 1), 0, adversary)
        assert check_byzantine_agreement(result).ok

    @pytest.mark.parametrize("n,t", [(7, 2), (10, 3)])
    def test_equivocating_transmitter(self, n, t):
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)})
        result = run(OralMessages(n, t), 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_silent_lieutenants(self):
        result = run(OralMessages(7, 2), 1, SilentAdversary([1, 2]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_lying_relays(self):
        """Faulty lieutenants misreporting what the transmitter said are
        outvoted by the recursive majority."""

        def script(view, env):
            if view.phase == 2:
                lie = Relay(path=(0, 1), value=0)
                return [(1, q, lie) for q in range(2, env.n)]
            return []

        result = run(OralMessages(7, 2), 1, ScriptedAdversary([1], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_path_spoofing_rejected(self):
        """A relay whose path does not end in the true sender is dropped —
        the receiver knows the immediate source."""

        def script(view, env):
            if view.phase == 2:
                spoof = Relay(path=(0, 3), value=0)  # 3 is correct
                return [(1, q, spoof) for q in range(2, env.n)]
            return []

        result = run(OralMessages(7, 2), 1, ScriptedAdversary([1], script))
        assert result.unanimous_value() == 1
        for processor in result.processors.values():
            assert processor.tree.get((0, 3)) in (None, 1)

    def test_duplicate_path_ids_rejected(self):
        def script(view, env):
            if view.phase == 2:
                bad = Relay(path=(0, 1, 1), value=0)
                return [(1, q, bad) for q in range(2, env.n)]
            return []

        result = run(OralMessages(7, 2), 1, ScriptedAdversary([1], script))
        assert result.unanimous_value() == 1

    def test_garbage(self):
        result = run(OralMessages(7, 2), 1, GarbageAdversary([1], forge=False))
        assert check_byzantine_agreement(result).ok
