"""Tests for the classic Dolev–Strong baseline."""

import pytest

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.dolev_strong import DolevStrong
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement
from repro.crypto.chains import SignatureChain


class TestConfiguration:
    def test_rejects_t_equal_n_minus_one(self):
        with pytest.raises(ConfigurationError):
            DolevStrong(4, 3)

    def test_phases_is_t_plus_one(self):
        assert DolevStrong(7, 2).num_phases() == 3

    def test_tolerates_t_zero(self):
        result = run(DolevStrong(3, 0), 1)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_validity(self, n, t, value):
        result = run(DolevStrong(n, t), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    def test_fault_free_message_count(self):
        # transmitter broadcast + one relay per processor to non-signers.
        result = run(DolevStrong(5, 1), 1)
        assert result.metrics.messages_by_correct == 4 + 4 * 3

    def test_within_paper_bound(self):
        algorithm = DolevStrong(8, 2)
        result = run(algorithm, 1)
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()
        assert (
            result.metrics.signatures_by_correct
            <= algorithm.upper_bound_signatures()
        )

    def test_every_message_signed(self):
        result = run(DolevStrong(6, 2), 1)
        assert result.metrics.unsigned_correct_messages == 0


class TestByzantineResilience:
    def test_silent_faults(self):
        result = run(DolevStrong(7, 2), 1, SilentAdversary([3, 4]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_silent_transmitter_decides_default(self):
        result = run(DolevStrong(7, 2, default="fallback"), 1, SilentAdversary([0]))
        assert result.unanimous_value() == "fallback"

    def test_equivocating_transmitter(self):
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 7)})
        result = run(DolevStrong(7, 1), 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_crash_mid_protocol(self):
        result = run(DolevStrong(7, 2), 1, CrashAdversary({1: 2, 2: 3}))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage_and_forgeries_ignored(self):
        result = run(DolevStrong(7, 2), 1, GarbageAdversary([3, 5]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_late_injection_of_short_chain_rejected(self):
        """A valid 1-signature chain delivered at phase 3 is stale (phase-k
        chains need k-1 signatures) and must be ignored."""

        def script(view, env):
            if view.phase == 2:
                # faulty 1 re-sends the transmitter's phase-1 chain unsigned.
                inbox = view.inbox(1)
                if inbox:
                    return [(1, q, inbox[0].payload) for q in range(2, env.n)]
            return []

        result = run(DolevStrong(7, 2), 1, ScriptedAdversary([1], script))
        assert check_byzantine_agreement(result).ok

    def test_faulty_cannot_fabricate_second_value(self):
        """Two faulty processors cannot make a correct one extract a value
        the transmitter never signed."""

        def script(view, env):
            chain = SignatureChain(0)
            for pid in (1, 2):
                chain = chain.extend(env.keys[pid], env.service)
            return [(2, q, chain) for q in range(3, env.n)] if view.phase == 2 else []

        result = run(DolevStrong(7, 2), 1, ScriptedAdversary([1, 2], script))
        # the fabricated chain lacks the transmitter's first signature.
        assert result.unanimous_value() == 1


class TestExtractionRules:
    def test_at_most_two_values_extracted(self):
        def script(view, env):
            if view.phase != 1:
                return []
            sends = []
            for value in ("a", "b", "c"):
                chain = SignatureChain.initial(value, env.keys[0], env.service)
                sends.extend((0, q, chain) for q in range(1, env.n))
            return sends

        result = run(DolevStrong(5, 1), 0, ScriptedAdversary([0], script))
        for pid, processor in result.processors.items():
            assert len(processor.extracted) <= 2

    def test_duplicate_chain_not_relayed_twice(self):
        result = run(DolevStrong(5, 1), 1)
        # each correct processor relays exactly once in the fault-free run.
        for pid in range(1, 5):
            assert result.metrics.sent_per_processor[pid] == 3
