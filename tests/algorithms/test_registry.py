"""Tests for the algorithm registry."""

import pytest

from repro.algorithms.registry import ALGORITHMS, STRAWMEN, get
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestRegistryContents:
    def test_all_paper_algorithms_registered(self):
        assert {
            "dolev-strong",
            "active-set",
            "oral-messages",
            "algorithm-1",
            "algorithm-2",
            "algorithm-3",
            "algorithm-5",
        } <= set(ALGORITHMS)

    def test_strawmen_kept_separate(self):
        assert set(STRAWMEN) & set(ALGORITHMS) == set()
        assert "strawman-undersigning" in STRAWMEN

    def test_names_match_instances(self):
        for name, info in ALGORITHMS.items():
            if name == "algorithm-1" or name == "algorithm-2":
                instance = info(5, 2)
            elif name == "oral-messages":
                instance = info(7, 2)
            else:
                instance = info(20, 2)
            assert instance.name == name
            assert instance.authenticated == info.authenticated

    def test_get_falls_back_to_strawmen(self):
        assert get("strawman-echo").name == "strawman-echo"

    def test_get_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="algorithm-1"):
            get("no-such-algorithm")


class TestRegistryConstruction:
    def test_every_registered_algorithm_reaches_agreement(self):
        sizing = {
            "algorithm-1": (7, 3),
            "algorithm-2": (7, 3),
            "oral-messages": (7, 2),
        }
        for name, info in ALGORITHMS.items():
            n, t = sizing.get(name, (20, 2))
            result = run(info(n, t), 1)
            assert check_byzantine_agreement(result).ok, name
            assert result.unanimous_value() == 1, name

    def test_params_forwarded(self):
        algorithm = get("algorithm-3")(30, 2, s=5)
        assert algorithm.s == 5
