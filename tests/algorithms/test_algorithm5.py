"""Tests for Algorithm 5 (Lemma 5 / Theorem 7): the O(n + t²) algorithm."""

import pytest

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.algorithm5 import (
    Algorithm5,
    Algorithm5Passive,
    Algorithm5Schedule,
    count_pi,
    flist_string,
    parse_flist,
)
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestFlistStrings:
    def test_round_trip(self):
        value = flist_string(3, [9, 7, 8])
        assert parse_flist(value) == (3, frozenset({7, 8, 9}))

    def test_parse_rejects_malformed(self):
        assert parse_flist("nonsense") is None
        assert parse_flist(("flist", "x", (1,))) is None
        assert parse_flist(("flist", 1, (1, "b"))) is None

    def test_count_pi(self):
        strings = {
            0: {flist_string(2, [10, 11])},
            1: {flist_string(2, [10]), flist_string(1, [12])},
            2: {flist_string(1, [10])},
        }
        assert count_pi(strings, 10, 2) == 2
        assert count_pi(strings, 10, 1) == 1
        assert count_pi(strings, 12, 1) == 1
        assert count_pi(strings, 12, 2) == 0


class TestSchedule:
    def test_block_layout(self):
        schedule = Algorithm5Schedule(t=2, levels=2)
        assert schedule.spread_phase == 10
        assert [b.x for b in schedule.blocks] == [2, 1]
        assert schedule.blocks[0].start == 11
        assert schedule.blocks[0].length == 2 * 3 + 3  # L = 3
        assert schedule.blocks[1].start == 20
        assert schedule.blocks[1].length == 2 * 1 + 3  # L = 1
        assert schedule.block0_phase == 25
        assert schedule.num_phases == 25

    def test_block_lookup(self):
        schedule = Algorithm5Schedule(t=2, levels=2)
        block = schedule.block_for(12)
        assert block is not None and block.x == 2
        assert block.offset(12) == 2
        assert schedule.block_for(10) is None  # the spread phase

    def test_zero_levels(self):
        schedule = Algorithm5Schedule(t=1, levels=0)
        assert schedule.blocks == []
        assert schedule.block0_phase == schedule.spread_phase + 1


class TestConfiguration:
    def test_alpha_is_smallest_square_above_6t(self):
        assert Algorithm5(20, 1).alpha == 9
        assert Algorithm5(20, 2).alpha == 16
        assert Algorithm5(30, 3).alpha == 25

    def test_rejects_n_below_alpha(self):
        with pytest.raises(ConfigurationError, match="α"):
            Algorithm5(8, 1)

    def test_default_s_is_t(self):
        assert Algorithm5(30, 3).s == 3


class TestFaultFree:
    @pytest.mark.parametrize("n,t,s", [(9, 1, 1), (12, 1, 3), (30, 2, 3), (40, 2, 7)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_validity(self, n, t, s, value):
        result = run(Algorithm5(n, t, s=s), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    @pytest.mark.parametrize("n,t,s", [(30, 2, 3), (60, 2, 3), (25, 3, 3)])
    def test_within_declared_bound(self, n, t, s):
        algorithm = Algorithm5(n, t, s=s)
        result = run(algorithm, 1)
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_fault_free_blocks_after_first_are_idle(self):
        """When every tree activates in block λ, all F-lists are empty and
        later blocks carry only the Algorithm 4 gossip."""
        algorithm = Algorithm5(30, 2, s=3)
        result = run(algorithm, 1)
        last_block = algorithm.schedule.blocks[-1]
        activation_traffic = result.metrics.messages_per_phase[last_block.start]
        assert activation_traffic == 0

    def test_no_direct_deliveries_when_fault_free(self):
        algorithm = Algorithm5(30, 2, s=3)
        result = run(algorithm, 1)
        assert result.metrics.messages_per_phase[algorithm.schedule.block0_phase] == 0


class TestByzantineResilience:
    def test_silent_tree_roots(self):
        algorithm = Algorithm5(40, 2, s=3)
        roots = [tree.root() for tree in algorithm.forest.trees[:2]]
        result = run(algorithm, 1, SilentAdversary(roots))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_silent_internal_nodes(self):
        algorithm = Algorithm5(40, 2, s=7)
        tree = algorithm.forest.trees[0]
        internal = [tree.processor_at(2), tree.processor_at(3)][:2]
        result = run(algorithm, 1, SilentAdversary(internal))
        assert check_byzantine_agreement(result).ok

    def test_silent_leaves(self):
        algorithm = Algorithm5(40, 2, s=7)
        tree = algorithm.forest.trees[0]
        leaves = [tree.processor_at(6), tree.processor_at(7)]
        result = run(algorithm, 1, SilentAdversary(leaves))
        assert check_byzantine_agreement(result).ok

    def test_silent_extra_actives(self):
        algorithm = Algorithm5(40, 2, s=3)
        result = run(algorithm, 1, SilentAdversary([2 * 2 + 1, 2 * 2 + 2]))
        assert check_byzantine_agreement(result).ok

    def test_equivocating_transmitter(self):
        algorithm = Algorithm5(30, 2, s=3)
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 30)})
        result = run(algorithm, 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_garbage_resilience(self):
        algorithm = Algorithm5(30, 2, s=3)
        result = run(algorithm, 1, GarbageAdversary([3, algorithm.alpha]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_crash_resilience(self):
        algorithm = Algorithm5(30, 2, s=3)
        result = run(
            algorithm, 1, CrashAdversary({algorithm.alpha: 12, 1: 5})
        )
        assert check_byzantine_agreement(result).ok


class TestProofOfWork:
    def test_faulty_actives_cannot_activate_without_quorum(self):
        """t faulty actives forging an activation with a fabricated proof
        cannot reach the α − 2t quorum, so correct roots stay silent and no
        spurious tree traffic appears."""
        t = 2
        algorithm = Algorithm5(40, t, s=3)
        alpha = algorithm.alpha
        last_block = algorithm.schedule.blocks[-1]  # depth-1 subtrees
        leaf_targets = [
            tree.processor_at(index)
            for tree in algorithm.forest.trees[:1]
            for index in tree.roots_at_depth(1)
        ]

        def script(view, env):
            from repro.algorithms.algorithm5 import Activation
            from repro.crypto.chains import SignatureChain

            if view.phase == last_block.start:
                proof = tuple(
                    SignatureChain.initial(
                        flist_string(1, leaf_targets), env.keys[src], env.service
                    )
                    for src in (1, 2)
                )
                message = SignatureChain(1)
                for src in (1, 2):
                    message = message.extend(env.keys[src], env.service)
                payload = Activation(message=message, proof=proof)
                return [(1, leaf, payload) for leaf in leaf_targets]
            return []

        result = run(algorithm, 1, ScriptedAdversary([1, 2], script))
        assert check_byzantine_agreement(result).ok
        # no leaf got activated by the forged proof: leaves signed nothing
        # beyond their legitimate block-λ chain replies.
        for leaf in leaf_targets:
            processor = result.processors.get(leaf)
            if processor is not None:
                assert processor.activated_block is None

    def test_root_block_assignment(self):
        algorithm = Algorithm5(40, 2, s=7)
        tree = algorithm.forest.trees[0]
        processor = algorithm.make_processor(tree.processor_at(1))
        assert isinstance(processor, Algorithm5Passive)
        # root of a 3-level tree is activated in block 3; leaves in block 1.
        from tests.conftest import make_context

        processor.bind(make_context(pid=tree.processor_at(1), n=40, t=2))
        assert processor.root_block == 3
        leaf = algorithm.make_processor(tree.processor_at(5))
        leaf.bind(make_context(pid=tree.processor_at(5), n=40, t=2))
        assert leaf.root_block == 1


class TestActivationDescent:
    def test_faulty_tree_root_activates_child_subtrees(self):
        """The recursive mechanism itself: when a tree's root is silent,
        block λ stalls for that tree, the gossip spreads its members'
        names, and the *child* subtree roots are activated in block λ−1."""
        algorithm = Algorithm5(40, 2, s=7)  # 3-level trees
        tree = algorithm.forest.trees[0]
        root = tree.root()
        result = run(algorithm, 1, SilentAdversary([root]))
        assert check_byzantine_agreement(result).ok
        levels = algorithm.schedule.levels
        for child_index in tree.children(1):
            child = tree.processor_at(child_index)
            processor = result.processors[child]
            assert processor.activated_block == levels - 1, (
                child,
                processor.activated_block,
            )
        # healthy trees activated at the top block only.
        other_root = algorithm.forest.trees[1].root()
        assert result.processors[other_root].activated_block == levels

    def test_descent_reaches_leaves_when_path_is_faulty(self):
        """Root and one internal node faulty: the leaves under the faulty
        internal node still receive the value (via their own activation or
        the final direct block)."""
        algorithm = Algorithm5(40, 2, s=7)
        tree = algorithm.forest.trees[0]
        faulty = [tree.root(), tree.processor_at(2)]
        result = run(algorithm, 1, SilentAdversary(faulty))
        assert check_byzantine_agreement(result).ok
        for leaf_index in (4, 5):
            leaf = tree.processor_at(leaf_index)
            assert result.decisions[leaf] == 1


class TestTradeoff:
    def test_larger_s_fewer_messages_more_phases(self):
        t, n = 2, 80
        small_s = Algorithm5(n, t, s=1)
        large_s = Algorithm5(n, t, s=7)
        result_small = run(small_s, 1)
        result_large = run(large_s, 1)
        assert large_s.num_phases() > small_s.num_phases()
        assert (
            result_large.metrics.messages_by_correct
            < result_small.metrics.messages_by_correct
        )
