"""Tests for the Section 6 hub-relay exchange."""

import pytest

from repro.adversary.standard import (
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.hub_exchange import HubExchange, check_full_exchange
from repro.core.errors import ConfigurationError
from repro.core.runner import run


def values_for(n: int) -> dict:
    return {pid: ("v", pid) for pid in range(n)}


class TestConfiguration:
    def test_needs_a_correct_relay_margin(self):
        with pytest.raises(ConfigurationError):
            HubExchange(3, 2, values_for(3))

    def test_two_phases(self):
        assert HubExchange(10, 2, values_for(10)).num_phases() == 2

    def test_missing_values_rejected(self):
        with pytest.raises(ConfigurationError, match="no value"):
            HubExchange(5, 1, {0: "a"})


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(5, 1), (10, 2), (20, 3)])
    def test_everyone_learns_everyone(self, n, t):
        algorithm = HubExchange(n, t, values_for(n))
        result = run(algorithm, 0)
        assert check_full_exchange(result, algorithm) == []

    @pytest.mark.parametrize("n,t", [(5, 1), (10, 2), (20, 3)])
    def test_message_count_matches_papers_formula(self, n, t):
        algorithm = HubExchange(n, t, values_for(n))
        result = run(algorithm, 0)
        expected = (n - 1) * (t + 1) + (n - t - 1) * (t + 1)
        assert result.metrics.messages_by_correct == expected


class TestByzantineResilience:
    def test_t_silent_relays(self):
        """With t of the t+1 relays dead, the survivor covers everybody."""
        n, t = 12, 3
        algorithm = HubExchange(n, t, values_for(n))
        result = run(algorithm, 0, SilentAdversary(list(range(t))))
        assert check_full_exchange(result, algorithm) == []

    def test_lying_relay_cannot_corrupt_values(self):
        """A relay rewriting bundle contents fails verification — receivers
        only accept correctly signed values."""
        n, t = 8, 1

        def script(view, env):
            if view.phase == 2:
                from repro.crypto.chains import SignatureChain

                fake = SignatureChain.initial(("fake", 99), env.keys[0], env.service)
                return [(0, q, (fake,)) for q in range(t + 1, n)]
            return []

        algorithm = HubExchange(n, t, values_for(n))
        result = run(algorithm, 0, ScriptedAdversary([0], script))
        violations = check_full_exchange(result, algorithm)
        assert violations == []
        # the fake value is attributed to the faulty relay only.
        for receiver in sorted(result.correct)[t + 1 :]:
            gathered = result.processors[receiver].gathered
            for source, values in gathered.items():
                if source != 0:
                    assert values == {("v", source)}

    def test_garbage_from_non_relay(self):
        n, t = 10, 2
        algorithm = HubExchange(n, t, values_for(n))
        result = run(algorithm, 0, GarbageAdversary([5]))
        assert check_full_exchange(result, algorithm) == []


class TestComparisonWithGrid:
    def test_grid_beats_hub_exactly_where_theorem6_says(self):
        """Measured, not computed: at N = 36 the grid exchange undercuts
        the hub once t ≥ 8 ≈ 1.5·√N."""
        from repro.algorithms.algorithm4 import Algorithm4
        from repro.core.runner import run as run_algorithm

        m = 6
        n = m * m
        grid = run_algorithm(
            Algorithm4(m, 3, values_for(n)), 0
        ).metrics.messages_by_correct
        costs = {}
        for t in (3, 8, 12):
            hub = run_algorithm(
                HubExchange(n, t, values_for(n)), 0
            ).metrics.messages_by_correct
            costs[t] = hub
        assert grid > costs[3]  # hub wins at small t
        assert grid < costs[8]  # grid wins past ~1.5·√N
        assert grid < costs[12]
