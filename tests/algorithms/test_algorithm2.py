"""Tests for Algorithm 2 (Theorem 4): proof distribution on top of Algorithm 1."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.algorithm2 import Algorithm2
from repro.bounds.formulas import theorem4_message_upper_bound, theorem4_phases
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement
from repro.crypto.chains import SignatureChain


def all_proofs_held(result) -> bool:
    return all(p.has_agreement_proof() for p in result.processors.values())


class TestConfiguration:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_phases_match_theorem4(self, t):
        assert Algorithm2(2 * t + 1, t).num_phases() == theorem4_phases(t)

    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_message_bound_matches_theorem4(self, t):
        assert (
            Algorithm2(2 * t + 1, t).upper_bound_messages()
            == theorem4_message_upper_bound(t)
        )


class TestFaultFree:
    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_proofs(self, t, value):
        result = run(Algorithm2(2 * t + 1, t), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value
        assert all_proofs_held(result)

    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    def test_worst_case_hits_bound_exactly(self, t):
        result = run(Algorithm2(2 * t + 1, t), 1)
        assert result.metrics.messages_by_correct == 5 * t * t + 5 * t

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_within_bound_for_value_zero(self, t):
        result = run(Algorithm2(2 * t + 1, t), 0)
        assert result.metrics.messages_by_correct <= theorem4_message_upper_bound(t)


class TestProofProperties:
    def test_proof_carries_t_other_signatures(self):
        t = 3
        result = run(Algorithm2(2 * t + 1, t), 1)
        for pid, processor in result.processors.items():
            proof = processor.best_proof
            others = [s for s in proof.signers if s != pid]
            assert len(others) >= t
            assert proof.value == 1
            assert proof.verify(result.processors[pid].ctx.service)

    def test_no_proof_exists_for_the_wrong_value(self):
        """Theorem 4: no processor can hold a ≥ t+1-signature message on a
        value other than the common one — correct processors only ever sign
        their committed value."""
        t = 2
        result = run(Algorithm2(2 * t + 1, t), 1)
        service = next(iter(result.processors.values())).ctx.service
        # try to assemble a wrong-value proof from everything ever sent:
        from repro.core.history import edge_payloads
        from repro.core.message import iter_payload_parts

        wrong_signers = set()
        for phase in result.history.phases:
            for edge in phase.edges():
                for payload in edge_payloads(edge.label):
                    for part in iter_payload_parts(payload):
                        if isinstance(part, SignatureChain) and part.value != 1:
                            if part.verify(service):
                                wrong_signers.update(part.signers)
        assert len(wrong_signers) == 0

    def test_proofs_survive_silent_b_side(self):
        t = 3
        result = run(
            Algorithm2(2 * t + 1, t), 1, SilentAdversary(list(range(t + 1, 2 * t + 1)))
        )
        assert check_byzantine_agreement(result).ok
        assert all_proofs_held(result)

    def test_proofs_survive_equivocation(self):
        t = 2
        adversary = EquivocatingTransmitter(
            0, {q: (1 if q <= t else 0) for q in range(1, 2 * t + 1)}
        )
        result = run(Algorithm2(2 * t + 1, t), 0, adversary)
        assert check_byzantine_agreement(result).ok
        assert all_proofs_held(result)

    def test_proofs_survive_garbage(self):
        t = 2
        result = run(Algorithm2(2 * t + 1, t), 1, GarbageAdversary([1, 3]))
        assert check_byzantine_agreement(result).ok
        assert all_proofs_held(result)


class TestIncreasingMessageRules:
    def test_non_increasing_signers_rejected_for_relay(self):
        """A chain with out-of-order signers is not an increasing message;
        relaying processors must not adopt it."""
        t = 2

        def script(view, env):
            # after commitment, send p(5) (pid 4) a chain signed (2, 1) —
            # decreasing label order.
            if view.phase == 3 * t + 2:
                chain = SignatureChain(1)
                chain = chain.extend(env.keys[2], env.service)
                chain = chain.extend(env.keys[1], env.service)
                return [(1, 4, chain)]
            return []

        result = run(Algorithm2(2 * t + 1, t), 1, ScriptedAdversary([1, 2], script))
        assert check_byzantine_agreement(result).ok

    def test_faulty_signing_does_not_hurt(self):
        """The paper notes a faulty processor signing an increasing message
        does not hurt correctness — inject extra faulty signatures."""
        t = 2

        class HelpfulFaulty(ScriptedAdversary):
            pass

        def script(view, env):
            if view.phase == t + 3:  # first increasing phase
                chain = SignatureChain(1)
                chain = chain.extend(env.keys[1], env.service)
                return [(1, q, chain) for q in range(2, env.n)]
            return []

        result = run(Algorithm2(2 * t + 1, t), 1, HelpfulFaulty([1], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1
