"""Tests for InformedAlgorithm2 — the paper's n < α remedy."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.informed import InformedAlgorithm2
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement
from repro.crypto.chains import SignatureChain


class TestConfiguration:
    def test_requires_2t_plus_1(self):
        with pytest.raises(ConfigurationError):
            InformedAlgorithm2(4, 2)

    def test_phase_count_is_3t_plus_4(self):
        assert InformedAlgorithm2(12, 2).num_phases() == 10

    def test_bound_formula(self):
        # 5t²+5t + (t+1)(n-2t-1) for n=12, t=2: 30 + 3·7 = 51.
        assert InformedAlgorithm2(12, 2).upper_bound_messages() == 51

    def test_degenerates_to_algorithm2_when_no_passives(self):
        result = run(InformedAlgorithm2(5, 2), 1)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1


class TestFaultFree:
    @pytest.mark.parametrize("n,t", [(5, 2), (12, 2), (20, 3), (10, 4)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_bound(self, n, t, value):
        algorithm = InformedAlgorithm2(n, t)
        result = run(algorithm, value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_cheaper_than_active_set_for_small_n(self):
        """The point of the remedy: for n < α it undercuts the O(nt)
        informing of the [9]-style baseline."""
        from repro.algorithms.active_set import ActiveSetBroadcast

        n, t = 14, 3  # n < α = 25
        informed = run(InformedAlgorithm2(n, t), 1).metrics.messages_by_correct
        baseline = run(ActiveSetBroadcast(n, t), 1).metrics.messages_by_correct
        # the informing phase uses t+1 senders instead of 2t+1.
        assert informed <= baseline + 5 * t * t  # Algorithm 2 core overhead


class TestByzantineResilience:
    def test_silent_informers(self):
        """t of the t+1 informers silent: the one correct one suffices."""
        n, t = 16, 3
        result = run(InformedAlgorithm2(n, t), 1, SilentAdversary([0, 1, 2]))
        assert check_byzantine_agreement(result).ok

    def test_equivocating_transmitter(self):
        n, t = 16, 3
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)})
        result = run(InformedAlgorithm2(n, t), 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_faulty_informers_cannot_fake_a_proof(self):
        """t faulty informers sending a wrong-value chain with only their
        own signatures fall short of the t+1 core-signature requirement."""
        n, t = 16, 3

        def script(view, env):
            if view.phase == 3 * t + 4:
                chain = SignatureChain(0)
                for pid in (1, 2):
                    chain = chain.extend(env.keys[pid], env.service)
                return [(1, q, chain) for q in range(2 * t + 1, n)]
            return []

        result = run(InformedAlgorithm2(n, t), 1, ScriptedAdversary([1, 2], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage(self):
        result = run(InformedAlgorithm2(14, 2), 1, GarbageAdversary([3, 9]))
        assert check_byzantine_agreement(result).ok
