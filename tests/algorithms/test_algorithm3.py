"""Tests for Algorithm 3 (Lemma 1 / Theorem 5): the linear algorithm."""

import pytest

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SilentAdversary,
)
from repro.algorithms.algorithm3 import Algorithm3, build_chain_sets
from repro.bounds.formulas import lemma1_message_upper_bound, lemma1_phases
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestChainSets:
    def test_partition_covers_all_passives(self):
        sets = build_chain_sets(n=20, t=2, s=3)
        members = [pid for cs in sets for pid in cs.members]
        assert members == list(range(5, 20))
        assert [cs.size for cs in sets] == [3, 3, 3, 3, 3]

    def test_remainder_set(self):
        sets = build_chain_sets(n=12, t=2, s=3)
        assert [cs.size for cs in sets] == [3, 3, 1]

    def test_roots_and_positions(self):
        sets = build_chain_sets(n=11, t=2, s=3)
        assert sets[0].root == 5
        assert sets[0].position(6) == 2
        assert sets[0].member(3) == 7


class TestConfiguration:
    def test_requires_enough_processors(self):
        with pytest.raises(ConfigurationError):
            Algorithm3(4, 2)

    def test_default_s_is_theorem5(self):
        assert Algorithm3(100, 3).s == 12

    def test_phase_count_for_full_sets(self):
        algorithm = Algorithm3(20, 2, s=3)
        assert algorithm.num_phases() == lemma1_phases(2, 3)

    def test_phase_count_shrinks_with_short_sets(self):
        # only 3 passives: the single set has size 3 < s = 4, and the
        # schedule shortens accordingly.
        algorithm = Algorithm3(6, 1, s=4)
        assert algorithm.num_phases() == lemma1_phases(1, 3)


class TestFaultFree:
    @pytest.mark.parametrize("n,t,s", [(7, 1, 2), (20, 2, 3), (40, 2, 8), (30, 3, 12)])
    @pytest.mark.parametrize("value", [0, 1])
    def test_agreement_and_validity(self, n, t, s, value):
        result = run(Algorithm3(n, t, s=s), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    @pytest.mark.parametrize("n,t,s", [(20, 2, 3), (50, 2, 8), (30, 1, 4)])
    def test_within_lemma1_bound(self, n, t, s):
        result = run(Algorithm3(n, t, s=s), 1)
        assert result.metrics.messages_by_correct <= lemma1_message_upper_bound(n, t, s)

    def test_no_passives_degenerates_to_algorithm1(self):
        result = run(Algorithm3(5, 2, s=3), 1)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1


class TestByzantineResilience:
    def test_silent_roots_force_direct_delivery(self):
        t, s = 2, 3
        algorithm = Algorithm3(20, t, s=s)
        roots = [cs.root for cs in algorithm.sets[:2]]
        result = run(algorithm, 1, SilentAdversary(roots))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_silent_members_are_covered_by_actives(self):
        t, s = 2, 4
        algorithm = Algorithm3(20, t, s=s)
        members = [algorithm.sets[0].member(2), algorithm.sets[1].member(3)]
        result = run(algorithm, 1, SilentAdversary(members))
        assert check_byzantine_agreement(result).ok

    def test_lying_root_is_overridden_by_actives(self):
        """A faulty root feeding its members the wrong value: the actives
        see the wrong-value report and deliver the correct value directly."""
        t, s = 2, 3
        algorithm = Algorithm3(14, t, s=s)
        root = algorithm.sets[0].root

        def script(view, env):
            from repro.crypto.chains import SignatureChain

            offset = view.phase - env.t
            if offset >= 4 and offset % 2 == 0:
                k = offset // 2
                chain_set = next(cs for cs in env.algorithm.sets if cs.root == root)
                if k <= chain_set.size:
                    wrong = SignatureChain.initial(0, env.keys[root], env.service)
                    return [(root, chain_set.member(k), wrong)]
            return []

        result = run(algorithm, 1, ScriptedAdversary([root], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_equivocating_transmitter(self):
        algorithm = Algorithm3(16, 2, s=3)
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 16)})
        result = run(algorithm, 0, adversary)
        assert check_byzantine_agreement(result).ok

    def test_faulty_active_cannot_fool_members(self):
        """≤ t faulty actives cannot assemble the t+1 endorsements a passive
        member requires in the final phase."""
        t, s = 2, 3
        algorithm = Algorithm3(14, t, s=s)

        def script(view, env):
            from repro.crypto.chains import SignatureChain

            if view.phase == algorithm.num_phases():
                sends = []
                for src in (1, 2):
                    wrong = SignatureChain.initial(0, env.keys[src], env.service)
                    sends.extend(
                        (src, q, wrong) for q in range(2 * t + 1, env.n)
                    )
                return sends
            return []

        result = run(algorithm, 1, ScriptedAdversary([1, 2], script))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage_resilience(self):
        result = run(Algorithm3(20, 2, s=3), 1, GarbageAdversary([1, 6]))
        assert check_byzantine_agreement(result).ok

    def test_crash_resilience(self):
        result = run(Algorithm3(20, 2, s=3), 1, CrashAdversary({5: 4, 1: 2}))
        assert check_byzantine_agreement(result).ok


class TestMessageEconomy:
    def test_fault_free_chain_visits_each_member_twice(self):
        """Within a set the root exchanges exactly 2 messages per member."""
        n, t, s = 20, 2, 3
        result = run(Algorithm3(n, t, s=s), 1)
        m = n - (2 * t + 1)
        r = -(-m // s)
        expected_chain_traffic = 2 * (m - r)
        chain_phases = range(t + 4, t + 2 * s + 2)
        measured = sum(
            result.metrics.messages_per_phase[p] for p in chain_phases
        )
        assert measured == expected_chain_traffic

    def test_no_direct_deliveries_when_fault_free(self):
        n, t, s = 20, 2, 3
        result = run(Algorithm3(n, t, s=s), 1)
        assert result.metrics.messages_per_phase[t + 2 * s + 3] == 0
