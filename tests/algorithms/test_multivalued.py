"""Tests for the multivalued (bit-parallel) composition."""

import pytest

from repro.adversary.standard import (
    EquivocatingTransmitter,
    SilentAdversary,
)
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.multivalued import (
    MultivaluedAgreement,
    decode_bits,
    encode_bits,
)
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestBitCodec:
    @pytest.mark.parametrize("value", [0, 1, 5, 12, 255])
    def test_round_trip(self, value):
        assert decode_bits(encode_bits(value, 8)) == value

    def test_little_endian(self):
        assert encode_bits(6, 4) == [0, 1, 1, 0]

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_bits(-1, 4)


def make(width=4, n=7, t=2, inner=DolevStrong):
    return MultivaluedAgreement(n, t, width=width, inner_factory=inner)


class TestMultivaluedAgreement:
    @pytest.mark.parametrize("value", [0, 1, 7, 10, 15])
    def test_fault_free_agreement(self, value):
        result = run(make(), value)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == value

    def test_name_and_phase_count_follow_inner(self):
        algorithm = make()
        assert algorithm.name == "multivalued-dolev-strong"
        assert algorithm.num_phases() == DolevStrong(7, 2).num_phases()

    def test_message_bound_is_width_times_inner(self):
        algorithm = make(width=3)
        assert (
            algorithm.upper_bound_messages()
            == 3 * DolevStrong(7, 2).upper_bound_messages()
        )
        result = run(algorithm, 5)
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_silent_faults(self):
        result = run(make(), 11, SilentAdversary([2, 4]))
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 11

    def test_equivocating_transmitter_still_agrees(self):
        """Bit-mixing by a faulty transmitter may synthesize a value nobody
        proposed — agreement must hold regardless."""
        adversary = EquivocatingTransmitter(
            0, {q: (5 if q < 4 else 10) for q in range(1, 7)}
        )
        result = run(make(), 5, adversary)
        report = check_byzantine_agreement(result)
        assert report.agreement and report.all_decided

    def test_composes_with_algorithm1(self):
        algorithm = MultivaluedAgreement(
            7, 3, width=3, inner_factory=Algorithm1
        )
        result = run(algorithm, 6)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 6

    def test_width_one_is_binary(self):
        result = run(make(width=1), 1)
        assert result.unanimous_value() == 1
