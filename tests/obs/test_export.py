"""Tests for the metrics exporters (Prometheus text + bench JSON)."""

import json
import sys
from pathlib import Path

from repro.adversary.standard import SilentAdversary
from repro.algorithms.registry import get
from repro.core.runner import run
from repro.obs import TickClock, bench_json, prometheus_metrics, write_metrics

SCRIPTS = str(Path(__file__).resolve().parents[2] / "scripts")


def instrumented_run(name="algorithm-1", n=7, t=3, adversary=None):
    return run(
        get(name)(n, t), 1, adversary, collect_telemetry=True, clock=TickClock()
    )


class TestPrometheus:
    def test_counters_match_the_ledger(self):
        result = instrumented_run()
        text = prometheus_metrics(result)
        assert (
            f'repro_messages_total{{sender="correct"}} '
            f"{result.metrics.messages_by_correct}" in text
        )
        assert (
            f'repro_signatures_total{{sender="correct"}} '
            f"{result.metrics.signatures_by_correct}" in text
        )

    def test_every_configured_phase_exported(self):
        result = instrumented_run()
        text = prometheus_metrics(result)
        for phase in range(1, result.metrics.phases_configured + 1):
            assert f'repro_phase_messages_total{{phase="{phase}"}}' in text

    def test_help_and_type_headers_present(self):
        text = prometheus_metrics(instrumented_run())
        assert "# HELP repro_messages_total" in text
        assert "# TYPE repro_messages_total counter" in text
        assert "# TYPE repro_run_wall_seconds gauge" in text

    def test_faulty_role_labels(self):
        result = run(
            get("dolev-strong")(5, 1),
            1,
            SilentAdversary([2]),
            collect_telemetry=True,
            clock=TickClock(),
        )
        text = prometheus_metrics(result)
        assert 'repro_processor_sent_total{processor="2",role="faulty"}' in text
        assert 'repro_run_info{algorithm="dolev-strong"' in text

    def test_uninstrumented_run_exports_without_timing_block(self):
        result = run(get("dolev-strong")(4, 1), 1)
        text = prometheus_metrics(result)
        assert "repro_messages_total" in text
        assert "repro_run_wall_seconds" not in text

    def test_label_escaping(self):
        from repro.obs.export import _escape_label

        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestBenchJson:
    def test_document_shape(self):
        document = bench_json(instrumented_run())
        assert document["schema"] == "repro-bench/1"
        case = document["cases"]["runner:algorithm-1"]
        assert case["n"] == 7 and case["t"] == 3
        assert case["seconds"] > 0
        assert case["messages"] > 0

    def test_accepted_by_bench_compare(self, tmp_path):
        sys.path.insert(0, SCRIPTS)
        try:
            import bench_compare
        finally:
            sys.path.remove(SCRIPTS)
        path = tmp_path / "m.json"
        assert write_metrics(instrumented_run(), path) == "json"
        document = bench_compare.load_bench(str(path))
        assert bench_compare.compare(document, document, 0.25) == 0


class TestWriteMetrics:
    def test_extension_selects_format(self, tmp_path):
        result = instrumented_run()
        prom = tmp_path / "m.prom"
        as_json = tmp_path / "m.json"
        assert write_metrics(result, prom) == "prometheus"
        assert write_metrics(result, as_json) == "json"
        assert prom.read_text(encoding="utf-8").startswith("# HELP")
        assert json.loads(as_json.read_text(encoding="utf-8"))["schema"] == (
            "repro-bench/1"
        )
