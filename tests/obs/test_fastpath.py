"""The no-sink fast path: tracing must cost nothing when it is off.

PR-2's hot-path numbers (``BENCH_runner.json``) are protected by the
guarantee that with no sinks attached the runner performs *zero* event-hook
work per message: no event dicts are built, no digests computed, no
telemetry recorded.  These tests pin that structurally — the emit hook and
the digest helper are patched to raise, so a single stray call on the fast
path fails loudly — and the bench smoke in ``scripts/check.sh`` pins it by
wall clock.
"""

import pytest

import repro.core.runner as runner_module
from repro.algorithms.registry import get
from repro.core.runner import run
from repro.obs import ListSink, RunTelemetry, TickClock


class TestNoSinkFastPath:
    def test_event_hook_never_called_without_sinks(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("_emit called on the no-sink fast path")

        monkeypatch.setattr(runner_module, "_emit", forbidden)
        result = run(get("algorithm-1")(7, 3), 1)
        assert result.unanimous_value() == 1

    def test_digest_helper_never_called_without_sinks(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("safe_digest called on the no-sink fast path")

        monkeypatch.setattr(runner_module, "safe_digest", forbidden)
        result = run(get("dolev-strong")(5, 1), 1)
        assert result.unanimous_value() == 1

    def test_event_hook_is_called_when_a_sink_is_attached(self, monkeypatch):
        calls = []
        original = runner_module._emit

        def counting(sinks, event, telemetry=None):
            calls.append(event["event"])
            original(sinks, event, telemetry)

        monkeypatch.setattr(runner_module, "_emit", counting)
        run(get("dolev-strong")(4, 1), 1, sinks=(ListSink(),))
        assert "send" in calls and "run_end" in calls

    def test_no_telemetry_allocated_without_instrumentation(self):
        result = run(get("algorithm-1")(5, 2), 1)
        assert result.telemetry is None

    def test_clock_not_read_without_instrumentation(self):
        class ExplodingClock:
            @property
            def wall(self):  # pragma: no cover - must not run
                raise AssertionError("clock read on the no-sink fast path")

            cpu = wall

        result = run(get("dolev-strong")(4, 1), 1, clock=ExplodingClock())
        assert result.telemetry is None

    def test_per_message_allocations_do_not_grow_with_tracing_machinery(self):
        """Allocation regression guard: the bytes allocated per run on the
        no-sink path must not include trace events — two identical runs
        allocate (essentially) the same, and a traced run measurably more.
        """
        import tracemalloc

        algorithm = get("dolev-strong")
        run(algorithm(6, 1), 1, record_history=False)  # warm caches

        def allocated(**kwargs) -> int:
            # Minimum of a few samples: peak memory is noisy (GC timing,
            # interpreter caches warmed by unrelated tests), but the
            # *floor* of identical runs is stable.
            peaks = []
            for _ in range(3):
                tracemalloc.start()
                run(algorithm(6, 1), 1, record_history=False, **kwargs)
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                peaks.append(peak)
            return min(peaks)

        plain_a = allocated()
        plain_b = allocated()
        traced = allocated(sinks=(ListSink(),))
        # Identical no-sink runs are within noise of each other...
        assert abs(plain_a - plain_b) < 0.2 * max(plain_a, plain_b)
        # ...while the traced run allocates strictly more (the event dicts),
        # proving the no-sink path did not pay for them.
        assert traced > max(plain_a, plain_b)


class TestOptInTelemetry:
    def test_collect_telemetry_without_sinks(self):
        result = run(
            get("algorithm-1")(5, 2), 1, collect_telemetry=True, clock=TickClock()
        )
        telemetry = result.telemetry
        assert isinstance(telemetry, RunTelemetry)
        assert len(telemetry.per_phase) == 4  # algorithm-1 at t=2 has 2t phases
        assert telemetry.wall_s > 0
        assert telemetry.events_emitted == 0  # no sinks -> no events

    def test_handler_timings_cover_every_correct_processor(self):
        result = run(
            get("dolev-strong")(5, 1), 1, collect_telemetry=True, clock=TickClock()
        )
        assert set(result.telemetry.handler_wall_s) == set(range(5))
        phases = result.metrics.phases_configured
        assert all(
            calls == phases for calls in result.telemetry.handler_calls.values()
        )

    def test_injected_clock_makes_timings_deterministic(self):
        def profile():
            result = run(
                get("algorithm-2")(5, 2), 1, collect_telemetry=True, clock=TickClock()
            )
            return result.telemetry.to_json_dict()

        assert profile() == profile()

    def test_telemetry_events_emitted_counts_sink_traffic(self):
        sink = ListSink()
        result = run(get("dolev-strong")(4, 1), 1, sinks=(sink,))
        # run_end increments after its own payload is built, so the
        # attached telemetry counts every event including run_end.
        assert result.telemetry.events_emitted == len(sink.events)


class TestSweepPointUnchanged:
    def test_measure_defaults_stay_untraced(self):
        from repro.analysis.sweep import measure

        point = measure(get("algorithm-1")(5, 2), 1)
        assert point.agreement_ok

    def test_bound_excess_guard(self):
        # A traced run must account exactly like an untraced one.
        sink = ListSink()
        traced = run(get("algorithm-3")(20, 2), 1, sinks=(sink,))
        plain = run(get("algorithm-3")(20, 2), 1)
        assert traced.metrics.summary() == plain.metrics.summary()
        assert traced.decisions == plain.decisions
