"""Tests for the event sinks and trace primitives."""

import io
import json

import pytest

from repro.algorithms.dolev_strong import DolevStrong
from repro.core.runner import run
from repro.obs import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    EventSink,
    JsonlTraceSink,
    ListSink,
    read_events,
)
from repro.obs.events import jsonable, safe_digest


class TestListSink:
    def test_collects_all_event_kinds(self):
        # A crash fault is needed to exercise the full vocabulary: plain
        # runs never emit 'fault' events.
        from repro.transport import CrashFault, FaultPlan, FaultyTransport

        sink = ListSink()
        transport = FaultyTransport(FaultPlan(faults=(CrashFault(pid=2, phase=1),)))
        run(DolevStrong(4, 1), 1, sinks=(sink,), transport=transport)
        kinds = {event["event"] for event in sink.events}
        assert kinds == set(EVENT_KINDS)

    def test_plain_run_emits_every_kind_but_fault(self):
        sink = ListSink()
        run(DolevStrong(4, 1), 1, sinks=(sink,))
        kinds = {event["event"] for event in sink.events}
        assert kinds == set(EVENT_KINDS) - {"fault"}

    def test_first_event_is_schema_versioned_run_start(self):
        sink = ListSink()
        run(DolevStrong(4, 1), 1, sinks=(sink,))
        first = sink.events[0]
        assert first["event"] == "run_start"
        assert first["schema"] == TRACE_SCHEMA
        assert first["n"] == 4 and first["t"] == 1

    def test_of_kind_filters(self):
        sink = ListSink()
        result = run(DolevStrong(4, 1), 1, sinks=(sink,))
        sends = sink.of_kind("send")
        assert len(sends) == result.metrics.total_messages
        assert len(sink.of_kind("run_end")) == 1

    def test_satisfies_the_sink_protocol(self):
        assert isinstance(ListSink(), EventSink)
        assert isinstance(JsonlTraceSink(io.StringIO()), EventSink)


class TestJsonlTraceSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            run(DolevStrong(4, 1), 1, sinks=(sink,))
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"

    def test_borrowed_handle_not_closed(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.emit({"event": "run_start", "schema": TRACE_SCHEMA})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["event"] == "run_start"

    def test_multiple_sinks_receive_identical_streams(self, tmp_path):
        list_sink = ListSink()
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as file_sink:
            run(DolevStrong(4, 1), 1, sinks=(list_sink, file_sink))
        from_file = list(read_events(path))
        assert from_file == list_sink.events


class TestReadEvents:
    def test_rejects_non_json_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"run_start"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not JSON"):
            list(read_events(path))

    def test_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1,2,3]\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not an object"):
            list(read_events(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event":"x"}\n\n{"event":"y"}\n', encoding="utf-8")
        assert [e["event"] for e in read_events(path)] == ["x", "y"]


class TestHelpers:
    def test_jsonable_passes_scalars(self):
        for value in (None, True, 3, 2.5, "s"):
            assert jsonable(value) == value

    def test_jsonable_reprs_rich_values(self):
        assert jsonable((1, 2)) == "(1, 2)"

    def test_safe_digest_matches_payload_digest(self):
        from repro.core.message import payload_digest

        assert safe_digest((1, "a")) == payload_digest((1, "a"))

    def test_safe_digest_survives_uncanonicalisable_payloads(self):
        assert safe_digest(object()) is None
