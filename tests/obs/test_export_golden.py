"""Golden-file tests for the Prometheus text renderings.

The golden files under ``tests/obs/golden/`` pin the full exposition
byte-for-byte: family names, HELP/TYPE headers, label sets and value
formatting.  Regenerate them by running this module as a script::

    PYTHONPATH=src python tests/obs/test_export_golden.py

and review the diff — a golden change is an exporter API change.
"""

import json
from pathlib import Path

from repro.algorithms.registry import get
from repro.core.runner import run
from repro.obs import (
    TickClock,
    prometheus_metrics,
    prometheus_service_metrics,
    service_bench_json,
    write_service_metrics,
)
from repro.service import LatencySummary, ServiceStats

GOLDEN = Path(__file__).parent / "golden"


def golden_run_metrics() -> str:
    """A deterministic instrumented run (TickClock pins the timings)."""
    result = run(
        get("algorithm-1")(7, 3), 1, collect_telemetry=True, clock=TickClock()
    )
    return prometheus_metrics(result)


def golden_service_stats() -> ServiceStats:
    """A fully pinned synthetic traffic summary (no clocks involved)."""
    summary = LatencySummary(
        count=4, mean_s=0.25, p50_s=0.2, p95_s=0.4, p99_s=0.4, max_s=0.4
    )
    queue = LatencySummary(
        count=4, mean_s=0.05, p50_s=0.04, p95_s=0.08, p99_s=0.08, max_s=0.08
    )
    service = LatencySummary(
        count=4, mean_s=0.2, p50_s=0.16, p95_s=0.32, p99_s=0.32, max_s=0.32
    )
    phase1 = LatencySummary(
        count=2, mean_s=0.01, p50_s=0.01, p95_s=0.012, p99_s=0.012, max_s=0.012
    )
    return ServiceStats(
        requests=4,
        ok=3,
        failed=1,
        wall_s=2.0,
        waves=2,
        messages_total=1200,
        signatures_total=340,
        unique_runs=2,
        replicated_runs=1,
        kernel_runs=1,
        scalar_runs=1,
        digest_hits=90,
        digest_misses=10,
        setup_hits=3,
        setup_misses=1,
        e2e=summary,
        queue=queue,
        service=service,
        per_phase={1: phase1},
        per_algorithm={
            "phase-king": {"requests": 3, "ok": 3},
            "ben-or": {"requests": 1, "ok": 0},
        },
    )


def golden_service_metrics() -> str:
    return prometheus_service_metrics(golden_service_stats())


class TestGoldenRenderings:
    def test_run_prometheus_matches_golden(self):
        expected = (GOLDEN / "run_metrics.prom").read_text(encoding="utf-8")
        assert golden_run_metrics() == expected

    def test_service_prometheus_matches_golden(self):
        expected = (GOLDEN / "service_metrics.prom").read_text(encoding="utf-8")
        assert golden_service_metrics() == expected

    def test_service_families_present(self):
        text = golden_service_metrics()
        for family, kind in [
            ("repro_service_requests_total", "counter"),
            ("repro_service_agreements_per_second", "gauge"),
            ("repro_service_latency_seconds", "summary"),
            ("repro_service_phase_wall_seconds", "summary"),
            ("repro_service_runs_total", "counter"),
            ("repro_service_digest_lookups_total", "counter"),
            ("repro_service_setup_cache_total", "counter"),
        ]:
            assert f"# TYPE {family} {kind}" in text

    def test_summary_quantiles_and_count_sum(self):
        text = golden_service_metrics()
        assert (
            'repro_service_latency_seconds{stage="e2e",quantile="0.5"} 0.2'
            in text
        )
        assert (
            'repro_service_latency_seconds{stage="queue",quantile="0.99"} 0.08'
            in text
        )
        assert 'repro_service_latency_seconds_count{stage="e2e"} 4' in text
        assert 'repro_service_latency_seconds_sum{stage="e2e"} 1.0' in text
        assert (
            'repro_service_phase_wall_seconds{phase="1",quantile="0.95"} 0.012'
            in text
        )


class TestServiceBenchJson:
    def test_document_shape(self):
        document = service_bench_json(golden_service_stats(), case="service:x")
        assert document["schema"] == "repro-bench/1"
        case = document["cases"]["service:x"]
        assert case["kind"] == "service"
        assert case["requests"] == 4
        assert case["agreements_per_sec"] == 1.5
        assert case["p50_s"] == 0.2
        assert case["p99_s"] == 0.4
        assert case["seconds"] == 2.0
        assert case["dedup_ratio"] == 2.0

    def test_write_dispatches_on_extension(self, tmp_path):
        stats = golden_service_stats()
        assert write_service_metrics(stats, tmp_path / "m.prom") == "prometheus"
        assert write_service_metrics(stats, tmp_path / "m.json") == "json"
        text = (tmp_path / "m.prom").read_text(encoding="utf-8")
        assert text == golden_service_metrics()
        document = json.loads((tmp_path / "m.json").read_text(encoding="utf-8"))
        assert "service:loadgen" in document["cases"]


if __name__ == "__main__":  # pragma: no cover - golden regeneration
    GOLDEN.mkdir(exist_ok=True)
    (GOLDEN / "run_metrics.prom").write_text(
        golden_run_metrics(), encoding="utf-8"
    )
    (GOLDEN / "service_metrics.prom").write_text(
        golden_service_metrics(), encoding="utf-8"
    )
    print(f"regenerated goldens under {GOLDEN}")
