"""Cache-counter telemetry: digest memo and canonical fast-path accounting.

Telemetry runs report how much signature-digest work was answered from the
per-service memo versus computed fresh, and how often ``canonical()`` took
the all-primitives shortcut.  ``repro inspect`` renders both pairs on a
``caches`` line.
"""

from repro.algorithms.registry import get
from repro.core.runner import run
from repro.crypto.signatures import InternedSignatureService, SharedDigestTable
from repro.obs import JsonlTraceSink, TickClock, summarize_trace
from repro.obs.inspect import render_summary


class TestTelemetryCounters:
    def test_authenticated_run_populates_digest_counters(self):
        result = run(get("dolev-strong")(5, 2), 1, collect_telemetry=True)
        telemetry = result.telemetry
        assert telemetry is not None
        # Every chain link pays one digest under the identity memo — the
        # base service sees fresh ``chain_body`` tuples each time.
        assert telemetry.digest_memo_misses > 0
        assert telemetry.digest_memo_hits == 0
        assert telemetry.canonical_fast_hits + telemetry.canonical_slow_hits > 0

    def test_interned_service_turns_repeat_digests_into_hits(self):
        # The batch engine's service interns payloads by value, so
        # re-verifying equal chain bodies is answered from the memo.
        service = InternedSignatureService(SharedDigestTable())
        result = run(
            get("dolev-strong")(5, 2), 1,
            collect_telemetry=True, service=service,
        )
        assert result.telemetry is not None
        assert result.telemetry.digest_memo_hits > 0

    def test_counters_are_per_run_deltas(self):
        # Two identical runs see identical counters: the second run must
        # not inherit the first run's totals.
        first = run(get("algorithm-3")(9, 2), 1, collect_telemetry=True)
        second = run(get("algorithm-3")(9, 2), 1, collect_telemetry=True)
        assert first.telemetry is not None and second.telemetry is not None
        assert second.telemetry.digest_memo_hits == first.telemetry.digest_memo_hits
        assert (
            second.telemetry.digest_memo_misses
            == first.telemetry.digest_memo_misses
        )
        assert (
            second.telemetry.canonical_fast_hits
            == first.telemetry.canonical_fast_hits
        )

    def test_counters_survive_the_json_round_trip(self):
        result = run(get("dolev-strong")(5, 1), 0, collect_telemetry=True)
        assert result.telemetry is not None
        document = result.telemetry.to_json_dict()
        assert document["digest_memo_hits"] == result.telemetry.digest_memo_hits
        assert document["digest_memo_misses"] == result.telemetry.digest_memo_misses
        assert document["canonical_fast_hits"] == result.telemetry.canonical_fast_hits
        assert document["canonical_slow_hits"] == result.telemetry.canonical_slow_hits


class TestInspectRendering:
    def test_inspect_renders_the_caches_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            run(get("dolev-strong")(5, 1), 1, sinks=(sink,), clock=TickClock())
        rendered = render_summary(summarize_trace(path))
        cache_lines = [
            line for line in rendered.splitlines() if line.startswith("caches")
        ]
        assert len(cache_lines) == 1
        assert "digest memo" in cache_lines[0]
        assert "canonical fast path" in cache_lines[0]
