"""Round-trip and determinism guarantees of the trace layer.

The contract pinned here: a trace written by :class:`JsonlTraceSink` and
read back by ``repro inspect``'s engine reports per-phase message and
signature counts that *exactly* equal the :class:`MetricsLedger` totals of
the same run — and two identical seeded runs produce byte-identical trace
files when the clock is injected.
"""

import pytest

from repro.adversary.standard import GarbageAdversary, SilentAdversary
from repro.algorithms.registry import get
from repro.core.runner import run
from repro.obs import JsonlTraceSink, TickClock, summarize_trace
from repro.obs.inspect import TraceFormatError, render_summary


def traced_run(tmp_path, algorithm, value=1, adversary=None, name="trace.jsonl"):
    path = tmp_path / name
    with JsonlTraceSink(path) as sink:
        result = run(algorithm, value, adversary, sinks=(sink,), clock=TickClock())
    return path, result


SCENARIOS = [
    ("dolev-strong", 5, 1, None),
    ("algorithm-1", 7, 3, None),
    ("algorithm-2", 5, 2, None),
    ("phase-king", 9, 2, None),
]


class TestInspectEqualsLedger:
    @pytest.mark.parametrize("name,n,t,adversary", SCENARIOS)
    def test_per_phase_counts_equal_ledger(self, tmp_path, name, n, t, adversary):
        path, result = traced_run(tmp_path, get(name)(n, t), adversary=adversary)
        summary = summarize_trace(path)
        assert summary.messages_per_phase == dict(result.metrics.messages_per_phase)
        assert summary.signatures_per_phase == dict(
            result.metrics.signatures_per_phase
        )
        assert summary.messages_by_correct == result.metrics.messages_by_correct
        assert summary.signatures_by_correct == result.metrics.signatures_by_correct
        assert summary.consistency_errors() == []

    def test_faulty_traffic_split_matches_ledger(self, tmp_path):
        path, result = traced_run(
            tmp_path, get("dolev-strong")(6, 2), adversary=GarbageAdversary([1, 2])
        )
        summary = summarize_trace(path)
        assert summary.faulty == [1, 2]
        assert summary.messages_by_faulty == result.metrics.messages_by_faulty
        assert summary.signatures_by_faulty == result.metrics.signatures_by_faulty
        assert summary.consistency_errors() == []

    def test_sent_per_processor_matches_ledger(self, tmp_path):
        path, result = traced_run(tmp_path, get("algorithm-1")(7, 3))
        summary = summarize_trace(path)
        assert summary.sent_per_processor == dict(result.metrics.sent_per_processor)

    def test_decisions_recorded(self, tmp_path):
        path, result = traced_run(
            tmp_path, get("dolev-strong")(5, 1), adversary=SilentAdversary([2])
        )
        summary = summarize_trace(path)
        assert set(summary.decisions) == set(result.decisions)

    def test_adaptive_cost_uses_actual_faults(self, tmp_path):
        path, result = traced_run(
            tmp_path, get("dolev-strong")(6, 2), adversary=SilentAdversary([1])
        )
        summary = summarize_trace(path)
        adaptive = summary.adaptive_cost()
        assert adaptive["actual_faults"] == 1  # f=1 even though t=2
        assert adaptive["messages_per_fault"] == pytest.approx(
            result.metrics.messages_by_correct
        )


class TestDeterminism:
    def test_identical_seeded_runs_yield_byte_identical_traces(self, tmp_path):
        path_a, _ = traced_run(tmp_path, get("algorithm-2")(5, 2), name="a.jsonl")
        path_b, _ = traced_run(tmp_path, get("algorithm-2")(5, 2), name="b.jsonl")
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_adversarial_runs_also_deterministic(self, tmp_path):
        path_a, _ = traced_run(
            tmp_path, get("dolev-strong")(6, 2),
            adversary=SilentAdversary([1, 3]), name="a.jsonl",
        )
        path_b, _ = traced_run(
            tmp_path, get("dolev-strong")(6, 2),
            adversary=SilentAdversary([1, 3]), name="b.jsonl",
        )
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_different_inputs_yield_different_traces(self, tmp_path):
        path_a, _ = traced_run(tmp_path, get("dolev-strong")(5, 1), 0, name="a.jsonl")
        path_b, _ = traced_run(tmp_path, get("dolev-strong")(5, 1), 1, name="b.jsonl")
        assert path_a.read_bytes() != path_b.read_bytes()


class TestTraceValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="empty"):
            summarize_trace(path)

    def test_wrong_first_event_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"send","phase":1}\n', encoding="utf-8")
        with pytest.raises(TraceFormatError, match="run_start"):
            summarize_trace(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"event":"run_start","schema":"repro-trace/99","n":3,"t":1}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match="repro-trace/99"):
            summarize_trace(path)

    def test_truncated_trace_flagged_incomplete(self, tmp_path):
        path, _ = traced_run(tmp_path, get("dolev-strong")(4, 1))
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        summary = summarize_trace(truncated)
        assert not summary.complete
        assert any("incomplete" in e for e in summary.consistency_errors())

    def test_tampered_trace_fails_consistency(self, tmp_path):
        import json

        path, _ = traced_run(tmp_path, get("dolev-strong")(4, 1))
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        events = [json.loads(line) for line in lines]
        # Drop one send event: the recomputed histogram no longer matches
        # the ledger snapshot recorded in run_end.
        send_index = next(
            i for i, e in enumerate(events) if e["event"] == "send"
        )
        del events[send_index]
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n", encoding="utf-8"
        )
        summary = summarize_trace(tampered)
        assert summary.consistency_errors() != []

    def test_render_summary_mentions_key_figures(self, tmp_path):
        path, result = traced_run(tmp_path, get("algorithm-1")(7, 3))
        text = render_summary(summarize_trace(path))
        assert "algorithm-1" in text
        assert str(result.metrics.messages_by_correct) in text
        assert "consistency: ok" in text
