"""Tests for the logical topologies (repro.network.topology)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.network.topology import (
    BinaryTree,
    BipartiteRelayGraph,
    Grid,
    TreeForest,
    smallest_square_above,
)


class TestSmallestSquareAbove:
    @pytest.mark.parametrize(
        "x,expected",
        [(0, 1), (1, 4), (3, 4), (4, 9), (6, 9), (8, 9), (9, 16), (12, 16), (18, 25), (24, 25)],
    )
    def test_values(self, x, expected):
        assert smallest_square_above(x) == expected

    def test_alpha_for_small_t(self):
        # α in Algorithm 5: smallest square > 6t.
        assert smallest_square_above(6 * 1) == 9
        assert smallest_square_above(6 * 2) == 16
        assert smallest_square_above(6 * 3) == 25


class TestBipartiteRelayGraph:
    def test_sides_partition_the_non_transmitters(self):
        graph = BipartiteRelayGraph(3)
        assert list(graph.side_a) == [1, 2, 3]
        assert list(graph.side_b) == [4, 5, 6]
        assert graph.n == 7

    def test_side_of(self):
        graph = BipartiteRelayGraph(2)
        assert graph.side_of(1) == "A"
        assert graph.side_of(3) == "B"
        with pytest.raises(ValueError):
            graph.side_of(0)

    def test_opposite_side(self):
        graph = BipartiteRelayGraph(2)
        assert list(graph.opposite_side(1)) == [3, 4]
        assert list(graph.opposite_side(4)) == [1, 2]

    def test_edges(self):
        graph = BipartiteRelayGraph(2)
        assert graph.has_edge(0, 1) and graph.has_edge(0, 4)  # q to everyone
        assert graph.has_edge(1, 3) and graph.has_edge(4, 2)  # across sides
        assert not graph.has_edge(1, 2)  # within A
        assert not graph.has_edge(3, 4)  # within B
        assert not graph.has_edge(1, 1)

    def test_simple_path_validation(self):
        graph = BipartiteRelayGraph(2)
        assert graph.is_simple_path_from_transmitter((0, 1))
        assert graph.is_simple_path_from_transmitter((0, 1, 3, 2))
        assert not graph.is_simple_path_from_transmitter((1, 3))  # no transmitter
        assert not graph.is_simple_path_from_transmitter((0, 1, 2))  # A-A edge
        assert not graph.is_simple_path_from_transmitter((0, 1, 3, 1))  # repeat
        assert not graph.is_simple_path_from_transmitter(())

    def test_needs_positive_t(self):
        with pytest.raises(ConfigurationError):
            BipartiteRelayGraph(0)


class TestGrid:
    def test_requires_square_count(self):
        with pytest.raises(ConfigurationError, match="square"):
            Grid((0, 1, 2))

    def test_requires_distinct_members(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            Grid((0, 0, 1, 2))

    def test_rows_and_columns(self):
        grid = Grid(tuple(range(9)))
        assert grid.m == 3
        assert grid.row_of(4) == [3, 4, 5]
        assert grid.column_of(4) == [1, 4, 7]
        assert grid.at(2, 0) == 6
        assert grid.position(7) == (2, 1)

    def test_arbitrary_member_ids(self):
        grid = Grid((10, 20, 30, 40))
        assert grid.row_of(30) == [30, 40]
        assert grid.column_of(30) == [10, 30]
        assert 20 in grid and 99 not in grid


class TestBinaryTree:
    def test_full_tree_structure(self):
        tree = BinaryTree(tuple(range(100, 107)))  # size 7, 3 levels
        assert tree.levels == 3
        assert tree.root() == 100
        assert tree.children(1) == [2, 3]
        assert tree.children(4) == []
        assert tree.subtree_depth(1) == 3
        assert tree.subtree_depth(2) == 2
        assert tree.subtree_depth(5) == 1

    def test_bfs_subtree_members(self):
        tree = BinaryTree(tuple(range(7)))
        assert tree.subtree_members(1) == [0, 1, 2, 3, 4, 5, 6]
        assert tree.subtree_members(2) == [1, 3, 4]
        assert tree.subtree_members(3) == [2, 5, 6]

    def test_roots_at_depth(self):
        tree = BinaryTree(tuple(range(7)))
        assert tree.roots_at_depth(3) == [1]
        assert tree.roots_at_depth(2) == [2, 3]
        assert tree.roots_at_depth(1) == [4, 5, 6, 7]

    def test_truncated_tree(self):
        tree = BinaryTree(tuple(range(5)))  # heap indices 1..5
        assert tree.levels == 3
        assert tree.children(2) == [4, 5]
        assert tree.children(3) == []
        assert tree.subtree_members(2) == [1, 3, 4]
        assert tree.roots_at_depth(1) == [4, 5]

    def test_index_round_trip(self):
        tree = BinaryTree((7, 8, 9))
        assert tree.index_of(8) == 2
        assert tree.processor_at(2) == 8

    def test_full_size_formula(self):
        assert [BinaryTree.full_size(x) for x in (1, 2, 3, 4)] == [1, 3, 7, 15]

    def test_empty_tree_rejected(self):
        with pytest.raises(ConfigurationError):
            BinaryTree(())


class TestTreeForest:
    def test_partition_with_remainder(self):
        forest = TreeForest(tuple(range(10, 20)), s=3)
        sizes = [tree.size for tree in forest.trees]
        assert sizes == [3, 3, 3, 1]
        assert list(forest.all_passive()) == list(range(10, 20))

    def test_tree_of(self):
        forest = TreeForest(tuple(range(6)), s=3)
        assert forest.tree_of(4) is forest.trees[1]

    def test_max_levels(self):
        assert TreeForest(tuple(range(14)), s=7).max_levels == 3
        assert TreeForest((), s=3).max_levels == 0

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            TreeForest((1, 2), s=0)
