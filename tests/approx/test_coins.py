"""CoinSource: the only entropy the randomized workloads are allowed."""

import pytest

from repro.approx.coins import CoinSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = CoinSource(7)
        b = CoinSource(7)
        draws_a = [a.uniform(lane, r) for lane in range(4) for r in range(20)]
        draws_b = [b.uniform(lane, r) for lane in range(4) for r in range(20)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        assert CoinSource(1).uniform(0, 1) != CoinSource(2).uniform(0, 1)

    def test_value_independent_of_call_order(self):
        """(lane, round) addresses the value — call order cannot matter."""
        forward = CoinSource(3)
        backward = CoinSource(3)
        keys = [(lane, r) for lane in range(3) for r in range(5)]
        left = {k: forward.uniform(*k) for k in keys}
        right = {k: backward.uniform(*k) for k in reversed(keys)}
        assert left == right

    def test_uniform_in_unit_interval(self):
        coins = CoinSource(0)
        for r in range(200):
            value = coins.uniform(0, r)
            assert 0.0 <= value < 1.0


class TestFlip:
    def test_flip_is_binary_and_counts(self):
        coins = CoinSource(11)
        flips = [coins.flip(pid, r) for pid in range(4) for r in range(10)]
        assert set(flips) <= {0, 1}
        assert coins.flips == len(flips)

    def test_bias_zero_and_one_are_degenerate(self):
        always = CoinSource(5, bias=1.0)
        never = CoinSource(5, bias=0.0)
        assert all(always.flip(0, r) == 1 for r in range(50))
        assert all(never.flip(0, r) == 0 for r in range(50))

    def test_bias_shifts_frequency(self):
        heavy = CoinSource(9, bias=0.9)
        ones = sum(heavy.flip(0, r) for r in range(500))
        assert ones > 400  # E = 450, this is > 6 sigma of slack


class TestScope:
    def test_local_scope_distinguishes_lanes(self):
        coins = CoinSource(13, scope="local")
        a = [coins.uniform(0, r) for r in range(30)]
        b = [coins.uniform(1, r) for r in range(30)]
        assert a != b

    def test_common_scope_ignores_lane(self):
        coins = CoinSource(13, scope="common")
        a = [coins.uniform(0, r) for r in range(30)]
        b = [coins.uniform(1, r) for r in range(30)]
        assert a == b


class TestValidation:
    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            CoinSource(0, bias=-0.1)
        with pytest.raises(ValueError):
            CoinSource(0, bias=1.5)

    def test_rejects_bad_scope(self):
        with pytest.raises(ValueError):
            CoinSource(0, scope="global")
