"""Ben-Or: coin-driven binary consensus under the variable-round runner."""

import pytest

from repro.adversary.standard import GarbageAdversary, SilentAdversary
from repro.approx.benor import BenOr
from repro.approx.validation import check_randomized_consensus, check_run_conditions
from repro.core.errors import ConfigurationError, ProtocolViolationError
from repro.core.runner import run


def run_benor(algorithm: BenOr, seed: int, adversary=None):
    return run(
        algorithm,
        algorithm.inputs[algorithm.transmitter],
        adversary,
        coins=algorithm.make_coin_source(seed),
    )


class TestConfiguration:
    def test_requires_n_gt_5t(self):
        with pytest.raises(ConfigurationError):
            BenOr(5, 1)
        BenOr(6, 1)  # boundary: 6 > 5

    def test_requires_binary_inputs(self):
        with pytest.raises(ConfigurationError):
            BenOr(6, 1, inputs=(0, 1, 2, 0, 1, 0))

    def test_phase_cap_is_two_per_round(self):
        assert BenOr(6, 1, max_rounds=8).num_phases() == 16


class TestUnanimousFastPath:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, value):
        algorithm = BenOr(6, 1, inputs=(value,) * 6)
        result = run_benor(algorithm, seed=0)
        assert set(result.decisions.values()) == {value}
        # Unanimity needs no coins: round 1 reports are unanimous, the
        # proposal clears the threshold, decision settles at phase 3.
        assert result.metrics.last_active_phase <= 5

    def test_variable_rounds_stop_early(self):
        algorithm = BenOr(6, 1, inputs=(1,) * 6, max_rounds=30)
        result = run_benor(algorithm, seed=0)
        assert result.metrics.last_active_phase < algorithm.num_phases()


class TestMixedInputs:
    def test_decides_and_agrees_per_seed(self):
        algorithm = BenOr(6, 1)
        for seed in range(10):
            result = run_benor(algorithm, seed)
            values = set(result.decisions.values())
            assert None not in values, f"seed {seed} hit the cap"
            assert len(values) == 1, f"seed {seed} disagreed: {values}"
            assert check_randomized_consensus(result, algorithm).ok

    def test_same_seed_reproduces_exactly(self):
        algorithm = BenOr(6, 1)
        a = run_benor(algorithm, seed=3)
        b = run_benor(algorithm, seed=3)
        assert a.decisions == b.decisions
        assert a.metrics == b.metrics
        assert a.coin_seed == b.coin_seed == 3

    def test_different_seeds_vary_round_count(self):
        algorithm = BenOr(6, 1)
        phases = {run_benor(algorithm, seed).metrics.last_active_phase
                  for seed in range(20)}
        assert len(phases) > 1  # the coin actually steers termination


class TestFaults:
    def test_tolerates_t_silent(self):
        algorithm = BenOr(6, 1)
        for seed in range(5):
            result = run_benor(algorithm, seed, SilentAdversary([5]))
            decided = {v for v in result.decisions.values() if v is not None}
            assert len(decided) <= 1
            assert check_run_conditions(result, algorithm).ok

    def test_tolerates_t_garbage(self):
        algorithm = BenOr(6, 1)
        for seed in range(5):
            result = run_benor(algorithm, seed, GarbageAdversary([5]))
            assert check_run_conditions(result, algorithm).ok


class TestCoinsRequired:
    def test_mixed_run_without_coins_raises(self):
        algorithm = BenOr(6, 1)
        with pytest.raises(ProtocolViolationError):
            run(algorithm, 1)

    def test_undecided_at_cap_is_not_a_per_run_failure(self):
        """A cap-censored run is a statistics question (see stats.py)."""
        algorithm = BenOr(6, 1, max_rounds=1)
        result = run_benor(algorithm, seed=0)
        report = check_randomized_consensus(result, algorithm)
        assert report.ok
