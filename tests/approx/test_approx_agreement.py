"""ε-agreement: round derivation, trimming, robustness, and validation."""

import math

import pytest

from repro.adversary.standard import GarbageAdversary, SilentAdversary
from repro.approx.filtered_mean import FilteredMeanApprox
from repro.approx.midpoint import MidpointApprox
from repro.approx.strawman import OvershootMidpoint
from repro.approx.validation import check_epsilon_agreement, check_run_conditions
from repro.core.errors import ConfigurationError
from repro.core.runner import run
from fractions import Fraction


class TestConfiguration:
    def test_midpoint_requires_n_gt_3t(self):
        with pytest.raises(ConfigurationError):
            MidpointApprox(6, 2)
        MidpointApprox(7, 2)  # boundary: 7 > 6

    def test_filtered_mean_requires_t_at_least_1(self):
        with pytest.raises(ConfigurationError):
            FilteredMeanApprox(4, 0)

    def test_eps_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MidpointApprox(7, 2, eps=0.0)

    def test_inputs_must_match_n(self):
        with pytest.raises(ConfigurationError):
            MidpointApprox(7, 2, inputs=(1.0, 2.0))


class TestRoundDerivation:
    def test_midpoint_rate_is_half(self):
        assert MidpointApprox(7, 2).contraction_rate() == Fraction(1, 2)

    def test_filtered_mean_rate(self):
        # t / (n - 2t) at (7, 2) = 2/3
        assert FilteredMeanApprox(7, 2).contraction_rate() == Fraction(2, 3)

    def test_rounds_shrink_diameter_below_eps(self):
        for eps in (1.0, 0.25, 0.01):
            algorithm = MidpointApprox(7, 2, eps=eps)
            diameter = max(algorithm.inputs) - min(algorithm.inputs)
            rate = float(algorithm.contraction_rate())
            assert diameter * rate**algorithm.m <= eps
            if algorithm.m > 1:  # minimality: one round fewer is not enough
                assert diameter * rate ** (algorithm.m - 1) > eps

    def test_tighter_eps_needs_more_rounds(self):
        loose = MidpointApprox(7, 2, eps=1.0)
        tight = MidpointApprox(7, 2, eps=0.01)
        assert tight.m > loose.m


class TestTrimming:
    def test_trims_t_per_side(self):
        algorithm = MidpointApprox(7, 2)
        survivors = algorithm.trimmed([7.0, 1.0, 3.0, 5.0, 2.0, 6.0, 4.0])
        assert survivors == [3.0, 4.0, 5.0]


class TestFaultFreeConvergence:
    @pytest.mark.parametrize("cls", [MidpointApprox, FilteredMeanApprox])
    def test_decisions_within_eps_and_range(self, cls):
        algorithm = cls(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        values = [result.decisions[pid] for pid in range(7)]
        assert max(values) - min(values) <= 0.25
        assert min(algorithm.inputs) <= min(values)
        assert max(values) <= max(algorithm.inputs)
        assert check_epsilon_agreement(result, algorithm).ok


class TestRobustness:
    @pytest.mark.parametrize("cls", [MidpointApprox, FilteredMeanApprox])
    def test_garbage_senders_are_trimmed(self, cls):
        """t junk-spamming processors cannot break ε-agreement/validity."""
        algorithm = cls(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0], GarbageAdversary([5, 6]))
        report = check_epsilon_agreement(result, algorithm)
        assert report.ok, str(report)

    def test_silent_senders_are_substituted(self):
        algorithm = MidpointApprox(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0], SilentAdversary([1, 2]))
        report = check_epsilon_agreement(result, algorithm)
        assert report.ok, str(report)

    def test_overshoot_strawman_breaks_validity_under_garbage(self):
        """The untrimmed midpoint absorbs junk-as-0.0 and exits the
        correct-input range — the seeded ε-bug the fuzzer must find."""
        algorithm = OvershootMidpoint(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0], GarbageAdversary([6]))
        report = check_epsilon_agreement(result, algorithm)
        assert not report.ok
        assert not report.validity

    def test_overshoot_strawman_is_fine_fault_free(self):
        algorithm = OvershootMidpoint(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        assert check_epsilon_agreement(result, algorithm).ok


class TestValidator:
    def test_flags_spread_beyond_eps(self):
        algorithm = MidpointApprox(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        result.decisions[0] = result.decisions[1] + 1.0
        report = check_epsilon_agreement(result, algorithm)
        assert not report.ok and not report.agreement

    def test_flags_nan_decision_as_undecided(self):
        algorithm = MidpointApprox(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        result.decisions[3] = math.nan
        report = check_epsilon_agreement(result, algorithm)
        assert not report.ok and not report.all_decided

    def test_excused_processors_are_ignored(self):
        algorithm = MidpointApprox(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        result.decisions[0] = 1e9
        report = check_epsilon_agreement(
            result, algorithm, excused=frozenset({0})
        )
        assert report.ok

    def test_dispatch_routes_by_family(self):
        algorithm = MidpointApprox(7, 2, eps=0.25)
        result = run(algorithm, algorithm.inputs[0])
        assert check_run_conditions(result, algorithm).ok
