"""Tests for the capacity statistics (percentiles, summaries, rates)."""

import pytest

from repro.service import LatencySummary, ServiceStats, build_stats, percentile
from repro.service.request import RequestOutcome


class TestPercentile:
    def test_nearest_rank_is_an_actual_sample(self):
        samples = [3.0, 1.0, 2.0, 4.0]
        assert percentile(samples, 0.5) == 2.0
        assert percentile(samples, 0.75) == 3.0
        assert percentile(samples, 1.0) == 4.0

    def test_exact_rank_despite_float_error(self):
        # 0.99 * 100 floats to 99.00000000000001; nearest-rank must still
        # pick the 99th order statistic, not the 100th.
        samples = list(range(1, 101))
        assert percentile(samples, 0.99) == 99

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.1])
    def test_quantile_out_of_range_raises(self, q):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], q)


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([0.1, 0.2, 0.3, 0.4])
        assert summary.count == 4
        assert summary.mean_s == pytest.approx(0.25)
        assert summary.p50_s == 0.2
        assert summary.max_s == 0.4

    def test_empty_is_none(self):
        assert LatencySummary.from_samples([]) is None

    def test_json_dict_rounds_to_microseconds(self):
        summary = LatencySummary.from_samples([0.123456789])
        assert summary.to_json_dict()["p50_s"] == 0.123457


def outcome(request_id, algorithm="algorithm-3", ok=True, **overrides):
    fields = dict(
        request_id=request_id,
        algorithm=algorithm,
        ok=ok,
        verdict="ok" if ok else "ba_violation",
        messages=10,
        signatures=5,
        arrival_s=0.0,
        start_s=0.1,
        finish_s=0.2,
    )
    fields.update(overrides)
    return RequestOutcome(**fields)


class TestBuildStats:
    def test_counts_and_rates(self):
        outcomes = [outcome(0), outcome(1), outcome(2, ok=False)]
        stats = build_stats(outcomes, wall_s=2.0, waves=1)
        assert stats.requests == 3
        assert stats.ok == 2
        assert stats.failed == 1
        assert stats.messages_total == 30
        assert stats.agreements_per_sec == pytest.approx(1.0)
        assert stats.requests_per_sec == pytest.approx(1.5)
        assert stats.messages_per_sec == pytest.approx(15.0)

    def test_zero_wall_means_no_rates(self):
        stats = build_stats([], wall_s=0.0, waves=0)
        assert stats.agreements_per_sec is None
        assert stats.requests_per_sec is None
        assert stats.dedup_ratio is None

    def test_per_algorithm_counts(self):
        outcomes = [
            outcome(0, "algorithm-3"),
            outcome(1, "phase-king", ok=False),
            outcome(2, "phase-king"),
        ]
        stats = build_stats(outcomes, wall_s=1.0, waves=1)
        assert stats.per_algorithm == {
            "algorithm-3": {"requests": 1, "ok": 1},
            "phase-king": {"requests": 2, "ok": 1},
        }

    def test_latency_summaries_cover_all_three_stages(self):
        stats = build_stats([outcome(0)], wall_s=1.0, waves=1)
        assert stats.e2e.count == 1
        assert stats.e2e.p50_s == pytest.approx(0.2)
        assert stats.queue.p50_s == pytest.approx(0.1)
        assert stats.service.p50_s == pytest.approx(0.1)

    def test_phase_samples_grouped_by_phase(self):
        stats = build_stats(
            [outcome(0)],
            wall_s=1.0,
            waves=1,
            phase_samples=[(1, 0.01), (1, 0.03), (2, 0.05)],
        )
        assert sorted(stats.per_phase) == [1, 2]
        assert stats.per_phase[1].count == 2
        assert stats.per_phase[2].p50_s == pytest.approx(0.05)

    def test_json_dict_shape(self):
        data = build_stats([outcome(0)], wall_s=1.0, waves=1).to_json_dict()
        assert data["requests"] == 1
        assert set(data["latency"]) == {"e2e", "queue", "service"}
        assert data["per_algorithm"]["algorithm-3"]["ok"] == 1

    def test_dedup_ratio(self):
        stats = ServiceStats(requests=100, unique_runs=4)
        assert stats.dedup_ratio == pytest.approx(25.0)
