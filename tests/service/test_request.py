"""Tests for the repro-service/1 wire objects."""

import pickle

import pytest

from repro.service import (
    SERVICE_SCHEMA,
    AgreementRequest,
    RequestFormatError,
    RequestOutcome,
)
from repro.transport.faults import random_plan


def request(**overrides):
    fields = dict(
        request_id=3, algorithm="algorithm-3", n=60, t=2, value=1
    )
    fields.update(overrides)
    return AgreementRequest(**fields)


class TestAgreementRequest:
    def test_round_trips_through_json(self):
        original = request(params=(("s", 4),), coin_seed=None)
        data = original.to_json_dict()
        assert data["schema"] == SERVICE_SCHEMA
        assert AgreementRequest.from_json_dict(data) == original

    def test_fault_plan_round_trips(self):
        plan = random_plan(7, n=9, t=2, num_phases=4, rate=0.8)
        original = request(algorithm="dolev-strong", n=9, fault_plan=plan)
        restored = AgreementRequest.from_json_dict(original.to_json_dict())
        assert restored.fault_plan == plan

    def test_coin_seed_round_trips(self):
        original = request(algorithm="ben-or", n=11, coin_seed=12345)
        restored = AgreementRequest.from_json_dict(original.to_json_dict())
        assert restored.coin_seed == 12345

    def test_config_key_ignores_value_plan_and_coins(self):
        plan = random_plan(1, n=60, t=2, num_phases=4, rate=0.8)
        a = request(value=0)
        b = request(value=1, fault_plan=plan, coin_seed=9, request_id=8)
        assert a.config_key() == b.config_key()

    def test_params_change_the_config_key(self):
        assert request().config_key() != request(params=(("s", 4),)).config_key()

    def test_missing_fields_raise(self):
        with pytest.raises(RequestFormatError, match="missing"):
            AgreementRequest.from_json_dict({"schema": SERVICE_SCHEMA, "n": 4})

    def test_unknown_schema_raises(self):
        with pytest.raises(RequestFormatError, match="unknown request schema"):
            AgreementRequest.from_json_dict({"schema": "repro-service/99"})

    def test_non_object_raises(self):
        with pytest.raises(RequestFormatError):
            AgreementRequest.from_json_dict([1, 2, 3])

    def test_picklable(self):
        plan = random_plan(7, n=9, t=2, num_phases=4, rate=0.8)
        original = request(fault_plan=plan)
        assert pickle.loads(pickle.dumps(original)) == original


class TestRequestOutcome:
    def outcome(self):
        return RequestOutcome(
            request_id=0,
            algorithm="algorithm-3",
            ok=True,
            verdict="ok",
            arrival_s=1.0,
            start_s=1.5,
            finish_s=2.25,
        )

    def test_latency_stages_decompose(self):
        outcome = self.outcome()
        assert outcome.queue_wait_s == pytest.approx(0.5)
        assert outcome.service_s == pytest.approx(0.75)
        assert outcome.latency_s == pytest.approx(1.25)

    def test_stages_clamp_at_zero(self):
        outcome = RequestOutcome(
            request_id=0,
            algorithm="x",
            ok=True,
            verdict="ok",
            arrival_s=5.0,
            start_s=1.0,
            finish_s=0.5,
        )
        assert outcome.queue_wait_s == 0.0
        assert outcome.service_s == 0.0
        assert outcome.latency_s == 0.0

    def test_json_dict_carries_verdict_and_latencies(self):
        data = self.outcome().to_json_dict()
        assert data["schema"] == SERVICE_SCHEMA
        assert data["verdict"] == "ok"
        assert data["latency_s"] == pytest.approx(1.25)
        assert data["queue_wait_s"] == pytest.approx(0.5)
        assert "excused" not in data
