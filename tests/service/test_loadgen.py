"""Tests for the seeded open-loop load generator."""

import pytest

from repro.service import DEFAULT_MIX, MixSpecError, generate_schedule, parse_mix


class TestParseMix:
    def test_default_mix_parses(self):
        items = parse_mix(DEFAULT_MIX)
        assert [item.algorithm for item in items] == [
            "algorithm-3",
            "phase-king",
            "midpoint-approx",
        ]
        assert items[0].weight == 3.0

    def test_weight_defaults_to_one(self):
        (item,) = parse_mix("phase-king:n=24,t=2")
        assert item.weight == 1.0

    def test_extra_params_become_constructor_params(self):
        (item,) = parse_mix("algorithm-3:n=60,t=2,s=4")
        assert item.params == (("s", 4),)

    def test_family_comes_from_the_registry(self):
        assert parse_mix("ben-or:n=11,t=2")[0].family == "randomized"
        assert parse_mix("midpoint-approx:n=8,t=2")[0].family == "approx"
        assert parse_mix("phase-king:n=24,t=2")[0].family == "exact"

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("no-such-algo:n=4,t=1", "no-such-algo"),
            ("phase-king:n=24", "must set n= and t="),
            ("phase-king:n=24,t=2:0", "weight must be positive"),
            ("phase-king:n=24,t=2:zzz", "not a number"),
            ("phase-king", "not NAME"),
            ("phase-king:n=x,t=2", "neither int nor float"),
            ("  ;  ", "no clauses"),
        ],
    )
    def test_malformed_specs_raise(self, spec, match):
        with pytest.raises(MixSpecError, match=match):
            parse_mix(spec)


class TestGenerateSchedule:
    def test_deterministic_for_a_seed(self):
        a = generate_schedule(requests=40, rate=100, seed=7, fault_rate=0.3)
        b = generate_schedule(requests=40, rate=100, seed=7, fault_rate=0.3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_schedule(requests=40, rate=100, seed=7)
        b = generate_schedule(requests=40, rate=100, seed=8)
        assert a != b

    def test_arrivals_are_strictly_increasing(self):
        schedule = generate_schedule(requests=50, rate=100, seed=1)
        arrivals = [item.arrival_s for item in schedule]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_request_ids_are_sequential(self):
        schedule = generate_schedule(requests=10, rate=100, seed=1)
        assert [item.request.request_id for item in schedule] == list(range(10))

    def test_fault_plans_only_on_exact_family(self):
        schedule = generate_schedule(
            requests=120,
            rate=100,
            seed=3,
            mix="phase-king:n=8,t=1; midpoint-approx:n=6,t=1; ben-or:n=7,t=1",
            fault_rate=1.0,
        )
        planned = [s.request for s in schedule if s.request.fault_plan is not None]
        assert planned, "fault_rate=1.0 must produce fault plans"
        assert {r.algorithm for r in planned} == {"phase-king"}

    def test_coin_seeds_only_on_randomized_family(self):
        schedule = generate_schedule(
            requests=80,
            rate=100,
            seed=3,
            mix="phase-king:n=8,t=1; ben-or:n=7,t=1",
        )
        for item in schedule:
            if item.request.algorithm == "ben-or":
                assert item.request.coin_seed is not None
            else:
                assert item.request.coin_seed is None

    def test_coin_seeds_differ_per_request(self):
        schedule = generate_schedule(
            requests=30, rate=100, seed=3, mix="ben-or:n=7,t=1"
        )
        seeds = [item.request.coin_seed for item in schedule]
        assert len(set(seeds)) == len(seeds)

    def test_fault_rate_zero_means_no_plans(self):
        schedule = generate_schedule(requests=60, rate=100, seed=2)
        assert all(item.request.fault_plan is None for item in schedule)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(requests=-1, rate=10, seed=0), "requests"),
            (dict(requests=1, rate=0, seed=0), "rate"),
            (dict(requests=1, rate=10, seed=0, fault_rate=1.5), "fault_rate"),
        ],
    )
    def test_invalid_arguments_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            generate_schedule(**kwargs)
