"""Tests for the wave-dispatching scheduler and its stripes."""

import pytest

from repro.service import (
    AgreementRequest,
    ScheduledRequest,
    Scheduler,
    ServiceStripe,
    generate_schedule,
    reset_worker_cache,
)
from repro.transport.faults import random_plan


class VirtualTime:
    """Injectable clock/sleep pair: time advances only when slept."""

    def __init__(self):
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def immediate(requests):
    """Wrap *requests* as arrivals at t=0 (a single wave)."""
    return [ScheduledRequest(arrival_s=0.0, request=r) for r in requests]


def request(request_id, algorithm="phase-king", n=8, t=1, value=1, **overrides):
    return AgreementRequest(
        request_id=request_id,
        algorithm=algorithm,
        n=n,
        t=t,
        value=value,
        **overrides,
    )


@pytest.fixture(autouse=True)
def fresh_worker_cache():
    reset_worker_cache()
    yield
    reset_worker_cache()


class TestScheduler:
    def test_single_wave_outcomes_in_submission_order(self):
        time = VirtualTime()
        requests = [request(i, value=i % 2) for i in range(6)]
        report = Scheduler(workers=1).serve(
            immediate(requests), clock=time.clock, sleep=time.sleep
        )
        assert [o.request_id for o in report.outcomes] == list(range(6))
        assert report.stats.waves == 1
        assert report.verdict_counts() == {"ok": 6}
        assert not report.failures()

    def test_spread_arrivals_make_multiple_waves(self):
        time = VirtualTime()
        scheduled = [
            ScheduledRequest(arrival_s=float(i), request=request(i))
            for i in range(3)
        ]
        report = Scheduler(workers=1).serve(
            scheduled, clock=time.clock, sleep=time.sleep
        )
        assert report.stats.waves == 3
        # Open loop: a request dispatched at its arrival never waits.
        assert all(o.queue_wait_s == 0.0 for o in report.outcomes)

    def test_identical_requests_deduplicate(self):
        time = VirtualTime()
        requests = [request(i, value=1) for i in range(50)]
        report = Scheduler(workers=1).serve(
            immediate(requests), clock=time.clock, sleep=time.sleep
        )
        stats = report.stats
        assert stats.ok == 50
        assert stats.unique_runs == 1
        assert stats.replicated_runs == 49
        assert stats.dedup_ratio == pytest.approx(50.0)

    def test_faulted_requests_judged_crash_tolerantly(self):
        time = VirtualTime()
        plan = random_plan(11, n=9, t=2, num_phases=4, rate=0.8)
        assert not plan.is_empty
        requests = [
            request(0, algorithm="dolev-strong", n=9, t=2),
            request(1, algorithm="dolev-strong", n=9, t=2, fault_plan=plan),
        ]
        report = Scheduler(workers=1).serve(
            immediate(requests), clock=time.clock, sleep=time.sleep
        )
        assert report.verdict_counts() == {"ok": 2}
        faulted = report.outcomes[1]
        assert faulted.fault_events > 0
        # The faulted run takes the scalar path; the clean one batches.
        assert report.stats.scalar_runs >= 1

    def test_mixed_families_all_verdict_ok(self):
        time = VirtualTime()
        requests = [
            request(0, algorithm="midpoint-approx", n=6, t=1, value=2.0),
            request(1, algorithm="ben-or", n=7, t=1, value=1, coin_seed=5),
            request(2, algorithm="phase-king", n=8, t=1, value=0),
        ]
        report = Scheduler(workers=1).serve(
            immediate(requests), clock=time.clock, sleep=time.sleep
        )
        assert report.verdict_counts() == {"ok": 3}

    def test_setup_cache_amortises_across_waves(self):
        time = VirtualTime()
        scheduled = [
            ScheduledRequest(arrival_s=float(i), request=request(i))
            for i in range(4)
        ]
        report = Scheduler(workers=1).serve(
            scheduled, clock=time.clock, sleep=time.sleep
        )
        # One miss builds the arena; every later stripe of the same
        # configuration hits (workers=1 keeps the cache process-local).
        assert report.stats.setup_misses == 1
        assert report.stats.setup_hits == 3

    def test_verdicts_identical_across_worker_counts(self):
        schedule = generate_schedule(
            requests=16, rate=100_000, seed=5, fault_rate=0.25
        )
        serial = Scheduler(workers=1).serve(schedule)
        pooled = Scheduler(workers=2).serve(schedule)
        assert serial.verdict_counts() == pooled.verdict_counts()
        assert [o.verdict for o in serial.outcomes] == [
            o.verdict for o in pooled.outcomes
        ]
        assert [o.decided for o in serial.outcomes] == [
            o.decided for o in pooled.outcomes
        ]

    def test_max_stripe_must_be_positive(self):
        with pytest.raises(ValueError, match="max_stripe"):
            Scheduler(max_stripe=0)


class TestStripes:
    def test_sharded_by_config_key_and_split_at_max_stripe(self):
        scheduler = Scheduler(workers=1, max_stripe=2)
        wave = [
            (0, request(0)),
            (1, request(1)),
            (2, request(2)),
            (3, request(3, algorithm="dolev-strong", n=9, t=2)),
        ]
        stripes = scheduler._stripes(wave)
        assert len(stripes) == 3  # phase-king split 2+1, dolev-strong 1
        sizes = sorted(len(s.cases) for s in stripes)
        assert sizes == [1, 1, 2]
        assert all(len(s.cases) <= 2 for s in stripes)

    def test_stripe_batches_clean_exact_and_memoises_scalar(self):
        plan = random_plan(3, n=8, t=1, num_phases=3, rate=0.8)
        stripe = ServiceStripe(
            algorithm="phase-king",
            n=8,
            t=1,
            params=(),
            cases=(
                (0, 1, None, None),
                (1, 1, None, None),
                (2, 1, plan, None),
                (3, 1, plan, None),
            ),
            telemetry_sample=0,
        )
        result = stripe.run()
        assert len(result.outcomes) == 4
        # The two faulted cases share one scalar execution via the memo.
        assert result.scalar_runs == 1
        assert result.replicated_runs >= 1
        assert result.phase_samples == ()

    def test_telemetry_sampling_yields_phase_samples(self):
        stripe = ServiceStripe(
            algorithm="phase-king",
            n=8,
            t=1,
            params=(),
            cases=((0, 1, None, None),),
            telemetry_sample=1,
        )
        result = stripe.run()
        phases = {phase for phase, _ in result.phase_samples}
        assert phases, "sampling must produce per-phase timings"
        assert all(seconds >= 0.0 for _, seconds in result.phase_samples)
