"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.protocol import Context
from repro.core.types import TRANSMITTER
from repro.crypto.signatures import SignatureService


def make_context(
    pid: int = 0,
    n: int = 5,
    t: int = 1,
    service: SignatureService | None = None,
) -> Context:
    """A standalone processor context backed by a (shared) service."""
    service = service if service is not None else SignatureService()
    return Context(
        pid=pid,
        n=n,
        t=t,
        transmitter=TRANSMITTER,
        key=service.key_for(pid),
        service=service,
    )


@pytest.fixture
def service() -> SignatureService:
    return SignatureService()


@pytest.fixture
def ctx(service: SignatureService) -> Context:
    return make_context(service=service)
