"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.protocol import Context
from repro.core.types import TRANSMITTER
from repro.crypto.signatures import SignatureService

# Deterministic Hypothesis runs by default: property tests are part of the
# tier-1 suite, so they must not flake.  ``derandomize=True`` derives the
# examples from the test body itself — same code, same examples, every run.
# Opt into exploratory randomised search with HYPOTHESIS_PROFILE=explore.
settings.register_profile("ci", derandomize=True)
settings.register_profile("explore", derandomize=False, max_examples=400)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def make_context(
    pid: int = 0,
    n: int = 5,
    t: int = 1,
    service: SignatureService | None = None,
) -> Context:
    """A standalone processor context backed by a (shared) service."""
    service = service if service is not None else SignatureService()
    return Context(
        pid=pid,
        n=n,
        t=t,
        transmitter=TRANSMITTER,
        key=service.key_for(pid),
        service=service,
    )


@pytest.fixture
def service() -> SignatureService:
    return SignatureService()


@pytest.fixture
def ctx(service: SignatureService) -> Context:
    return make_context(service=service)
