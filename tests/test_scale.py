"""Scale tests: the algorithms at sizes well past the unit-test range.

These keep the suite honest about simulator performance and shake out
bugs that only appear with many trees / chain sets / grid rows (index
arithmetic, remainder groups, schedule length).  Each case also asserts
the paper's bound at that size.
"""

import pytest

from repro.adversary.standard import RandomizedAdversary, SilentAdversary
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm4 import Algorithm4, check_lemma2
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.oral_messages import OralMessages
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestScale:
    def test_active_set_500_processors(self):
        algorithm = ActiveSetBroadcast(500, 5)
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_algorithm3_500_processors_many_chain_sets(self):
        algorithm = Algorithm3(500, 4)  # s = 16, ~31 chain sets
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_algorithm3_with_faults_at_scale(self):
        algorithm = Algorithm3(300, 3, s=5)
        roots = [cs.root for cs in algorithm.sets[:3]]
        result = run(algorithm, 1, SilentAdversary(roots), record_history=False)
        assert check_byzantine_agreement(result).ok

    def test_algorithm5_200_processors_many_trees(self):
        algorithm = Algorithm5(200, 4, s=7)
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
        assert result.metrics.messages_by_correct <= algorithm.upper_bound_messages()

    def test_algorithm5_with_scattered_faults_at_scale(self):
        algorithm = Algorithm5(150, 3, s=3)
        alpha = algorithm.alpha
        faulty = [1, alpha + 1, alpha + 30]
        result = run(
            algorithm, 1, RandomizedAdversary(faulty, seed=7), record_history=False
        )
        assert check_byzantine_agreement(result).ok

    def test_grid_exchange_100_processors(self):
        m = 10
        algorithm = Algorithm4(m, 4, {pid: pid for pid in range(100)})
        result = run(algorithm, 0, SilentAdversary([0, 1, 2, 3]))
        _, violations = check_lemma2(result, algorithm)
        assert not violations

    def test_oral_messages_t4_exponential_but_finishes(self):
        algorithm = OralMessages(13, 4)
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
        assert result.metrics.messages_by_correct == algorithm.upper_bound_messages()

    @pytest.mark.parametrize("n", [64, 128, 256])
    def test_algorithm5_remainder_trees(self, n):
        """n chosen so the last tree is truncated at different fill levels."""
        algorithm = Algorithm5(n, 2, s=7)
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
