"""The tentpole equivalence guarantee: a fault-free transport is invisible.

Pins, across the algorithm zoo, that routing through
:class:`LockstepTransport` (both strategies) or a zero-fault
:class:`FaultyTransport` produces **byte-identical** ``repro-trace/1``
streams — and identical metrics and decisions — to the runner's inline
fast path.  Timing fields come from an injected
:class:`~repro.obs.TickClock`, so byte equality is exact, not fuzzy.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.standard import RandomizedAdversary
from repro.algorithms.registry import get
from repro.core.runner import run
from repro.obs import ListSink, TickClock
from repro.transport import FaultPlan, FaultyTransport, LockstepTransport

#: (name, n, t): small-but-real shapes for every registered algorithm
#: family exercised by the fuzz configs.
ZOO = (
    ("dolev-strong", 6, 2),
    ("active-set", 8, 2),
    ("oral-messages", 7, 2),
    ("algorithm-1", 7, 3),
    ("algorithm-2", 5, 2),
    ("algorithm-5", 10, 1),
    ("phase-king", 9, 2),
)

TRANSPORTS = (
    ("inline", None),
    ("lockstep-merged", LockstepTransport()),
    ("lockstep-sorted", LockstepTransport(delivery="sorted")),
    ("faulty-empty", FaultyTransport(FaultPlan())),
)


def trace_bytes(name, n, t, value, adversary, transport):
    sink = ListSink()
    result = run(
        get(name)(n, t),
        value,
        adversary,
        sinks=(sink,),
        clock=TickClock(),
        transport=transport,
    )
    lines = "\n".join(
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in sink.events
    )
    return lines, result


@settings(max_examples=30, deadline=None)
@given(
    case=st.sampled_from(ZOO),
    value=st.sampled_from([0, 1]),
    seed=st.integers(0, 2**16),
    corrupt=st.booleans(),
)
def test_fault_free_transports_are_byte_identical(case, value, seed, corrupt):
    name, n, t = case
    reference, result = trace_bytes(
        name,
        n,
        t,
        value,
        RandomizedAdversary([n - 1], seed) if corrupt else None,
        None,
    )
    assert result.fault_events == ()
    for label, transport in TRANSPORTS[1:]:
        adversary = RandomizedAdversary([n - 1], seed) if corrupt else None
        candidate, other = trace_bytes(name, n, t, value, adversary, transport)
        assert candidate == reference, f"{name}/{label}: trace diverged"
        assert other.decisions == result.decisions
        assert other.fault_events == ()
        assert (
            other.metrics.messages_by_correct
            == result.metrics.messages_by_correct
        )
        assert (
            other.metrics.signatures_by_correct
            == result.metrics.signatures_by_correct
        )


def test_zero_fault_plan_is_transparent_on_every_zoo_member():
    """Deterministic (non-hypothesis) sweep: the chaos-campaign default of
    an empty plan must never perturb a single algorithm."""
    for name, n, t in ZOO:
        reference, _ = trace_bytes(name, n, t, 1, None, None)
        candidate, result = trace_bytes(
            name, n, t, 1, None, FaultyTransport(FaultPlan())
        )
        assert candidate == reference, name
        assert result.fault_events == ()
