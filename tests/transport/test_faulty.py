"""FaultyTransport behaviour: each fault kind, observed through real runs."""

from repro.algorithms.registry import get
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement
from repro.obs import ListSink
from repro.transport import (
    CrashFault,
    Delay,
    Duplicate,
    FaultPlan,
    FaultyTransport,
    LinkDrop,
    Partition,
    ReceiveOmission,
    SendOmission,
    excused_processors,
)


def run_with(plan, *, algorithm="dolev-strong", n=6, t=2, value=1, sinks=()):
    return run(
        get(algorithm)(n, t), value, transport=FaultyTransport(plan), sinks=sinks
    )


def kinds(result):
    return {event["kind"] for event in result.fault_events}


class TestCrash:
    def test_crash_is_recorded_and_excused(self):
        result = run_with(FaultPlan(faults=(CrashFault(pid=2, phase=1),)))
        assert kinds(result) == {"crash"}
        excused = excused_processors(result.fault_events)
        assert excused == frozenset({2})
        # Survivors still reach Byzantine Agreement without the crashed pid.
        report = check_byzantine_agreement(result, excused=excused)
        assert report.ok
        assert "excused: [2]" in str(report)

    def test_crashed_processor_may_diverge(self):
        result = run_with(FaultPlan(faults=(CrashFault(pid=2, phase=1),)))
        # pid 2 hears nothing after phase 1, so the full (unexcused) check
        # sees its stale decision.
        assert result.decisions[2] != result.decisions[0]
        assert not check_byzantine_agreement(result).ok

    def test_recovery_resumes_delivery(self):
        crashed = run_with(FaultPlan(faults=(CrashFault(pid=2, phase=1),)))
        recovered = run_with(
            FaultPlan(faults=(CrashFault(pid=2, phase=1, recovery_phase=2),))
        )
        assert len(recovered.fault_events) < len(crashed.fault_events)


class TestOmissionsAndDrops:
    def test_send_omission_rate_one_silences_the_sender(self):
        result = run_with(FaultPlan(faults=(SendOmission(pid=1, rate=1.0),)))
        assert kinds(result) == {"omission_send"}
        assert all(e["src"] == 1 for e in result.fault_events)

    def test_receive_omission_targets_the_receiver(self):
        result = run_with(FaultPlan(faults=(ReceiveOmission(pid=4, rate=1.0),)))
        assert kinds(result) == {"omission_recv"}
        assert all(e["dst"] == 4 for e in result.fault_events)

    def test_probabilistic_omission_is_seed_deterministic(self):
        plan = FaultPlan(faults=(SendOmission(pid=1, rate=0.5),), seed=9)
        a, b = run_with(plan), run_with(plan)
        assert a.fault_events == b.fault_events
        assert a.decisions == b.decisions
        other = FaultPlan(faults=(SendOmission(pid=1, rate=0.5),), seed=10)
        assert run_with(other).fault_events != a.fault_events

    def test_link_drop_severs_one_direction_only(self):
        result = run_with(FaultPlan(faults=(LinkDrop(src=0, dst=4),)))
        assert {(e["src"], e["dst"]) for e in result.fault_events} == {(0, 4)}

    def test_partition_cuts_both_directions(self):
        # The cut starts at phase 2: pid 2 received the transmitter's
        # chain in phase 1, so it has relays to lose — and everyone
        # else's phase-2 relays to it are lost too.
        result = run_with(
            FaultPlan(faults=(Partition(group=(2,), first=2, last=2),))
        )
        endpoints = {(e["src"], e["dst"]) for e in result.fault_events}
        assert all(2 in pair for pair in endpoints)
        assert any(e["src"] == 2 for e in result.fault_events)
        assert any(e["dst"] == 2 for e in result.fault_events)


class TestDelayAndDuplicate:
    def test_delay_postpones_and_records_due_phase(self):
        result = run_with(FaultPlan(faults=(Delay(src=0, dst=3, delay=1),)))
        delays = [e for e in result.fault_events if e["kind"] == "delay"]
        assert delays
        assert all(e["until"] == e["phase"] + 2 for e in delays)

    def test_delay_past_the_end_is_lost(self):
        # A 10-phase delay on a 3-phase run can never be delivered: the
        # capture is recorded as 'delay', the write-off as 'lost'.
        plan = FaultPlan(faults=(Delay(src=0, dst=3, delay=10),))
        result = run_with(plan)
        assert kinds(result) == {"delay", "lost"}

    def test_duplicate_preserves_agreement(self):
        result = run_with(FaultPlan(faults=(Duplicate(src=0, dst=3, copies=3),)))
        assert "duplicate" in kinds(result)
        assert check_byzantine_agreement(result).ok


class TestEventPlumbing:
    def test_fault_events_reach_the_sinks(self):
        sink = ListSink()
        result = run_with(
            FaultPlan(faults=(CrashFault(pid=2, phase=1),)), sinks=(sink,)
        )
        traced = sink.of_kind("fault")
        assert traced == list(result.fault_events)
        assert all(e["fault_schema"] == "repro-fault/1" for e in traced)

    def test_instance_reusable_across_runs(self):
        transport = FaultyTransport(FaultPlan(faults=(CrashFault(pid=2),)))
        algorithm = get("dolev-strong")(6, 2)
        first = run(algorithm, 1, transport=transport)
        second = run(algorithm, 1, transport=transport)
        assert first.fault_events == second.fault_events
        assert first.decisions == second.decisions

    def test_input_edge_is_exempt(self):
        # Even a fully crashed transmitter keeps its own input: no fault
        # event ever names the phase-0 input edge.
        result = run_with(FaultPlan(faults=(CrashFault(pid=0, phase=1),)))
        assert all(e["phase"] >= 1 for e in result.fault_events)
