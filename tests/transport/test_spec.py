"""The ``--faults`` spec grammar."""

import pytest

from repro.transport.faults import (
    CrashFault,
    Delay,
    Duplicate,
    LinkDrop,
    Partition,
    ReceiveOmission,
    SendOmission,
)
from repro.transport.spec import FaultSpecError, parse_fault_plan

SHAPE = dict(n=7, t=2, num_phases=3)


def parse(spec):
    return parse_fault_plan(spec, **SHAPE)


class TestClauses:
    def test_crash(self):
        assert parse("crash:2").faults == (CrashFault(pid=2),)
        assert parse("crash:2@3").faults == (CrashFault(pid=2, phase=3),)

    def test_crash_with_recovery(self):
        (fault,) = parse("crash:2@1-2").faults
        assert fault == CrashFault(pid=2, phase=1, recovery_phase=3)
        assert not fault.active(3)

    def test_omissions(self):
        assert parse("omit-send:3:0.5").faults == (
            SendOmission(pid=3, rate=0.5),
        )
        assert parse("omit-recv:4:0.25@2-3").faults == (
            ReceiveOmission(pid=4, rate=0.25, first=2, last=3),
        )
        # RATE defaults to 1.0 (drop everything)
        assert parse("omit-send:3").faults == (SendOmission(pid=3),)

    def test_drop_and_delay_and_dup(self):
        assert parse("drop:0->4@2-3").faults == (
            LinkDrop(src=0, dst=4, first=2, last=3),
        )
        assert parse("delay:1->2:2").faults == (Delay(src=1, dst=2, delay=2),)
        assert parse("dup:1->2:3@1-2").faults == (
            Duplicate(src=1, dst=2, copies=3, first=1, last=2),
        )

    def test_partition(self):
        assert parse("partition:1,2@2-3").faults == (
            Partition(group=(1, 2), first=2, last=3),
        )

    def test_seed_clause(self):
        assert parse("crash:1; seed:9").seed == 9

    def test_random_clause_expands(self):
        plan = parse("random:42:0.5")
        assert not plan.is_empty
        assert plan.seed == 42

    def test_multiple_clauses_and_whitespace(self):
        plan = parse(" crash:2@1 ; drop:0->4 ; omit-send:3:0.5 ")
        assert len(plan.faults) == 3

    def test_empty_spec_is_empty_plan(self):
        assert parse("").is_empty
        assert parse(" ; ").is_empty


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "gremlin:1",
            "crash:x",
            "drop:0-4",
            "drop:a->b",
            "omit-send:1:fast",
            "partition:@2",
            "crash:2@x-y",
        ],
    )
    def test_bad_clause_raises_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            parse(bad)

    def test_error_names_the_clause(self):
        with pytest.raises(FaultSpecError, match="drop:a->b"):
            parse("crash:1; drop:a->b")
