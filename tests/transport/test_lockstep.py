"""LockstepTransport: the perfect network, byte-identical to the inline path."""

import pytest

from repro.core.message import Envelope
from repro.core.runner import _route_merged, _route_sorted
from repro.transport import FaultPlan, FaultyTransport, LockstepTransport, Transport


def envelopes():
    """Correct-prefix traffic (src-sorted per destination) plus adversary
    sends, mirroring what the runner hands the transport."""
    correct = [
        Envelope(src=src, dst=dst, phase=1, payload=f"c{src}->{dst}")
        for src in (0, 1, 2)
        for dst in (0, 1, 2, 3)
    ]
    adversary = [
        Envelope(src=3, dst=0, phase=1, payload="a3->0"),
        Envelope(src=3, dst=2, phase=1, payload="a3->2"),
    ]
    return correct + adversary, len(correct)


class TestLockstepTransport:
    def test_satisfies_the_transport_protocol(self):
        assert isinstance(LockstepTransport(), Transport)
        assert isinstance(FaultyTransport(FaultPlan()), Transport)

    def test_merged_matches_route_merged(self):
        sent, correct_count = envelopes()
        transport = LockstepTransport()
        transport.begin_run(n=4, num_phases=2, correct=frozenset({0, 1, 2}))
        assert transport.deliver(1, list(sent), correct_count) == _route_merged(
            list(sent), correct_count
        )

    def test_sorted_matches_route_sorted(self):
        sent, correct_count = envelopes()
        transport = LockstepTransport(delivery="sorted")
        transport.begin_run(n=4, num_phases=2, correct=frozenset({0, 1, 2}))
        assert transport.deliver(1, list(sent), correct_count) == _route_sorted(
            list(sent)
        )

    def test_merged_equals_sorted(self):
        sent, correct_count = envelopes()
        assert _route_merged(list(sent), correct_count) == _route_sorted(list(sent))

    def test_unknown_delivery_rejected(self):
        with pytest.raises(ValueError, match="delivery"):
            LockstepTransport(delivery="chaotic")

    def test_stateless_lifecycle(self):
        transport = LockstepTransport()
        transport.begin_run(n=3, num_phases=1, correct=frozenset({0, 1, 2}))
        assert transport.drain_faults() == []
        assert transport.end_run(1) == []
