"""FaultPlan data model: coins, JSON/pickle round-trips, excuse mapping."""

import pickle

import pytest

from repro.transport.faults import (
    BENIGN_KINDS,
    FAULT_SCHEMA,
    CrashFault,
    Delay,
    Duplicate,
    FaultPlan,
    LinkDrop,
    Partition,
    ReceiveOmission,
    SendOmission,
    excused_processors,
    fault_from_json,
    fault_to_json,
    random_plan,
    unit_coin,
)

ALL_KINDS_PLAN = FaultPlan(
    faults=(
        CrashFault(pid=2, phase=1, recovery_phase=3),
        SendOmission(pid=3, rate=0.5, first=2),
        ReceiveOmission(pid=4, rate=0.25, first=1, last=2),
        LinkDrop(src=0, dst=5, first=1),
        Delay(src=1, dst=2, delay=2),
        Duplicate(src=2, dst=3, copies=3),
        Partition(group=(1, 2), first=2, last=3),
    ),
    seed=7,
)


class TestUnitCoin:
    def test_deterministic_and_order_independent(self):
        a = unit_coin(7, "omission_send", 2, 1, 3, 2)
        b = unit_coin(7, "omission_send", 2, 1, 3, 2)
        assert a == b

    def test_in_unit_interval(self):
        coins = [unit_coin(s, "k", i) for s in range(5) for i in range(50)]
        assert all(0.0 <= c < 1.0 for c in coins)

    def test_key_sensitivity(self):
        assert unit_coin(0, "a", 1) != unit_coin(0, "a", 2)
        assert unit_coin(0, "a", 1) != unit_coin(1, "a", 1)


class TestWindows:
    def test_crash_window_open_ended(self):
        crash = CrashFault(pid=1, phase=2)
        assert not crash.active(1)
        assert crash.active(2) and crash.active(99)

    def test_crash_recovery_closes_the_window(self):
        crash = CrashFault(pid=1, phase=2, recovery_phase=4)
        assert crash.active(2) and crash.active(3)
        assert not crash.active(4)

    def test_bounded_window(self):
        drop = LinkDrop(src=0, dst=1, first=2, last=3)
        assert [drop.active(p) for p in (1, 2, 3, 4)] == [False, True, True, False]

    def test_partition_severs_only_the_cut(self):
        cut = Partition(group=(1, 2))
        assert cut.severs(1, 3) and cut.severs(3, 2)
        assert not cut.severs(1, 2) and not cut.severs(3, 4)


class TestSerialisation:
    def test_fault_json_round_trip_every_kind(self):
        for fault in ALL_KINDS_PLAN.faults:
            data = fault_to_json(fault)
            assert data["kind"] == fault.kind
            assert fault_from_json(data) == fault

    def test_plan_json_round_trip(self):
        data = ALL_KINDS_PLAN.to_json_dict()
        assert data["schema"] == FAULT_SCHEMA
        assert FaultPlan.from_json_dict(data) == ALL_KINDS_PLAN

    def test_plan_pickles(self):
        assert pickle.loads(pickle.dumps(ALL_KINDS_PLAN)) == ALL_KINDS_PLAN

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_json({"kind": "gremlin"})

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_json_dict({"schema": "repro-fault/99", "faults": []})

    def test_describe_mentions_every_kind(self):
        text = ALL_KINDS_PLAN.describe()
        for fault in ALL_KINDS_PLAN.faults:
            assert fault.kind in text
        assert FaultPlan().describe() == "no faults"


class TestExcusedProcessors:
    def test_mapping_per_kind(self):
        events = [
            {"kind": "crash", "pid": 2, "src": 2, "dst": 0},
            {"kind": "omission_send", "src": 3, "dst": 1},
            {"kind": "omission_recv", "src": 0, "dst": 4},
            {"kind": "drop", "src": 5, "dst": 0},
            {"kind": "partition", "src": 6, "dst": 1},
            {"kind": "duplicate", "src": 7, "dst": 1},
        ]
        assert excused_processors(events) == frozenset({2, 3, 4, 5, 6, 7})

    def test_delay_and_lost_excuse_both_endpoints(self):
        assert excused_processors([{"kind": "delay", "src": 1, "dst": 2}]) == (
            frozenset({1, 2})
        )
        assert excused_processors([{"kind": "lost", "src": 3, "dst": 4}]) == (
            frozenset({3, 4})
        )

    def test_empty(self):
        assert excused_processors([]) == frozenset()


class TestRandomPlan:
    def test_deterministic(self):
        kwargs = dict(n=7, t=2, num_phases=3, rate=0.5)
        assert random_plan(42, **kwargs) == random_plan(42, **kwargs)
        assert random_plan(42, **kwargs) != random_plan(43, **kwargs)

    def test_budget_stays_within_t(self):
        for seed in range(30):
            plan = random_plan(seed, n=9, t=2, num_phases=4, rate=1.0)
            carriers = set()
            for fault in plan.faults:
                carriers.add(getattr(fault, "pid", getattr(fault, "src", None)))
                if fault.kind == "partition":
                    carriers.update(fault.group)
            carriers.discard(None)
            assert len(carriers) <= 2, plan.describe()

    def test_only_benign_kinds(self):
        kinds = {
            fault.kind
            for seed in range(50)
            for fault in random_plan(
                seed, n=7, t=3, num_phases=3, rate=1.0
            ).faults
        }
        assert kinds <= set(BENIGN_KINDS)

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            random_plan(0, n=5, t=1, num_phases=2, rate=1.5)

    def test_zero_rate_is_empty(self):
        assert random_plan(0, n=5, t=1, num_phases=2, rate=0.0).is_empty
