"""Seeded ensemble statistics for the randomized workloads.

Every test here is deterministic: samples come from
:class:`~repro.approx.coins.CoinSource` streams keyed by fixed seeds,
never from ``random``.  The suite has two halves:

* **positive checks** — with honest parameters the ensembles pass their
  KS / chi-square gates at the documented significance levels;
* **negative controls** — a deliberately biased coin must be *detected*,
  both directly (exact binomial test on the flip stream) and through the
  protocol (the Ben-Or round histogram rejects the fair-coin geometric
  model).  A harness that cannot flag a rigged coin is not verifying
  anything.

Select or skip the whole suite with ``-m statistical``.
"""

import pytest

from repro.approx.coins import CoinSource
from repro.approx.stats import (
    benor_success_probability,
    bin_round_counts,
    binomial_tail_ge,
    chi_square_pvalue,
    geometric_bin_probabilities,
    ks_critical,
    ks_statistic,
    run_statistical_smoke,
    sample_benor_rounds,
)

pytestmark = pytest.mark.statistical


def _uniform_cdf(x: float) -> float:
    return min(1.0, max(0.0, x))


def _chi2_vs_geometric(samples, p, bins=3):
    count = len(samples)
    observed = bin_round_counts(samples, bins)
    expected = [count * cell for cell in geometric_bin_probabilities(p, bins)]
    return chi_square_pvalue(observed, expected)


class TestCoinUniformity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 19])
    def test_uniform_draws_pass_ks(self, seed):
        coins = CoinSource(seed)
        draws = [coins.uniform(lane, r) for lane in range(10) for r in range(100)]
        assert ks_statistic(draws, _uniform_cdf) < ks_critical(len(draws), 0.01)

    def test_fair_flips_pass_exact_binomial(self):
        coins = CoinSource(0)
        n = 1000
        ones = sum(coins.flip(0, r) for r in range(n))
        # Two-sided exact test at alpha = 0.01: neither tail is extreme.
        assert binomial_tail_ge(n, ones, 0.5) > 0.005
        assert binomial_tail_ge(n, n - ones, 0.5) > 0.005


class TestGeometricTail:
    def test_success_probability_closed_form(self):
        # thr = 4 at (6, 1); 2 * P[Bin(6, 1/2) >= 4] = 2 * 22/64.
        assert benor_success_probability(6, 1, 0.5) == pytest.approx(0.6875)

    def test_success_probability_symmetric_in_bias(self):
        assert benor_success_probability(6, 1, 0.3) == pytest.approx(
            benor_success_probability(6, 1, 0.7)
        )

    @pytest.mark.parametrize("seed", [0, 42])
    def test_fair_rounds_match_geometric_model(self, seed):
        samples = sample_benor_rounds(6, 1, 0.5, 150, seed=seed)
        p = benor_success_probability(6, 1, 0.5)
        assert _chi2_vs_geometric(samples, p) > 1e-3

    def test_biased_rounds_match_their_own_model(self):
        """A bias-0.85 coin is honest about itself: the round histogram
        fits Geom(q) for the *biased* success probability q."""
        samples = sample_benor_rounds(6, 1, 0.85, 120, seed=0)
        q = benor_success_probability(6, 1, 0.85)
        assert _chi2_vs_geometric(samples, q, bins=2) > 1e-3

    def test_heavier_bias_decides_faster(self):
        fair = sample_benor_rounds(6, 1, 0.5, 60, seed=0)
        biased = sample_benor_rounds(6, 1, 0.85, 60, seed=0)
        assert None not in fair and None not in biased
        assert sum(biased) / len(biased) < sum(fair) / len(fair)

    def test_censored_runs_land_in_tail_bin(self):
        assert bin_round_counts([1, 2, None, 5], 3) == [1, 1, 2]


class TestNegativeControls:
    """A rigged coin must not slip past the harness (acceptance gate)."""

    def test_biased_flip_stream_rejects_fairness(self):
        coins = CoinSource(0, bias=0.85)
        n = 1000
        ones = sum(coins.flip(0, r) for r in range(n))
        # ~850 ones; the exact binomial tail under H0: fair is astronomical.
        assert binomial_tail_ge(n, ones, 0.5) < 1e-9

    def test_biased_benor_rounds_reject_fair_model(self):
        """The bias leaks through the protocol: biased-coin round counts
        are far too concentrated for the fair-coin geometric model."""
        samples = sample_benor_rounds(6, 1, 0.85, 120, seed=0)
        fair_p = benor_success_probability(6, 1, 0.5)
        assert _chi2_vs_geometric(samples, fair_p) < 1e-6


class TestSmokeGate:
    def test_smoke_passes_and_reports(self):
        report = run_statistical_smoke(seed=0)
        assert report["coin_ks"] < report["coin_ks_critical"]
        assert report["benor_chi2_pvalue"] > 1e-3
