"""Cross-module integration tests.

These exercise whole pipelines rather than single modules: Lemma 4's
activation accounting inside Algorithm 5, determinism of complete runs,
rushing-adversary mode, and the bounds-verification harness over the full
algorithm registry.
"""

import pytest

from repro.adversary.standard import (
    RandomizedAdversary,
    SilentAdversary,
    SimulatingAdversary,
)
from repro.algorithms.algorithm5 import Algorithm5, Algorithm5Passive
from repro.algorithms.registry import ALGORITHMS
from repro.bounds.verification import check_grid, no_adversary
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestLemma4ActivationBound:
    """Lemma 4: in each tree C with b(C) faulty members, at most
    2·b(C) + 1 processors get activated or are faulty."""

    def activated_or_faulty_per_tree(self, algorithm, result):
        counts = {}
        for index, tree in enumerate(algorithm.forest.trees):
            total = 0
            for pid in tree.members:
                if pid in result.faulty:
                    total += 1
                    continue
                processor = result.processors[pid]
                assert isinstance(processor, Algorithm5Passive)
                if processor.activated_block is not None:
                    total += 1
            counts[index] = total
        return counts

    def faulty_per_tree(self, algorithm, faulty):
        return {
            index: sum(1 for pid in tree.members if pid in faulty)
            for index, tree in enumerate(algorithm.forest.trees)
        }

    def check(self, n, t, s, faulty):
        algorithm = Algorithm5(n, t, s=s)
        result = run(algorithm, 1, SilentAdversary(faulty) if faulty else None)
        assert check_byzantine_agreement(result).ok
        activated = self.activated_or_faulty_per_tree(algorithm, result)
        b = self.faulty_per_tree(algorithm, frozenset(faulty))
        for index in activated:
            assert activated[index] <= 2 * b[index] + 1, (
                index,
                activated[index],
                b[index],
            )

    def test_fault_free_only_roots_activate(self):
        self.check(40, 2, 7, faulty=[])

    def test_one_faulty_root(self):
        algorithm = Algorithm5(40, 2, s=7)
        root = algorithm.forest.trees[0].root()
        self.check(40, 2, 7, faulty=[root])

    def test_faulty_root_and_internal_node(self):
        algorithm = Algorithm5(40, 2, s=7)
        tree = algorithm.forest.trees[0]
        self.check(40, 2, 7, faulty=[tree.root(), tree.processor_at(2)])

    def test_two_faulty_leaves(self):
        algorithm = Algorithm5(46, 2, s=7)
        tree = algorithm.forest.trees[0]
        self.check(46, 2, 7, faulty=[tree.processor_at(4), tree.processor_at(6)])


class TestDeterminism:
    """Identical configurations produce identical executions — essential
    for the replay-based lower-bound proofs."""

    @pytest.mark.parametrize(
        "name,n,t",
        [("dolev-strong", 7, 2), ("algorithm-3", 16, 2), ("algorithm-5", 24, 2)],
    )
    def test_fault_free_runs_are_identical(self, name, n, t):
        info = ALGORITHMS[name]
        first = run(info(n, t), 1)
        second = run(info(n, t), 1)
        assert first.decisions == second.decisions
        assert first.metrics.summary() == second.metrics.summary()
        for pid in range(n):
            assert first.history.individual(pid) == second.history.individual(pid)

    def test_seeded_adversaries_are_deterministic(self):
        info = ALGORITHMS["algorithm-1"]
        runs = [
            run(info(7, 3), 1, RandomizedAdversary([1, 4], seed=99))
            for _ in range(2)
        ]
        assert runs[0].decisions == runs[1].decisions
        assert (
            runs[0].metrics.messages_by_faulty == runs[1].metrics.messages_by_faulty
        )


class TestRushingMode:
    """The algorithms remain correct when the adversary sees the current
    phase's correct traffic before choosing its own messages."""

    @pytest.mark.parametrize(
        "name,n,t",
        [("dolev-strong", 7, 2), ("algorithm-1", 7, 3), ("algorithm-2", 7, 3)],
    )
    def test_simulating_adversary_under_rushing(self, name, n, t):
        info = ALGORITHMS[name]
        result = run(info(n, t), 1, SimulatingAdversary([1, 2]), rushing=True)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1


class TestFullRegistryGrid:
    """Every registered algorithm × several adversaries × both values."""

    def test_registry_wide_bounds_check(self):
        sizing = {
            "algorithm-1": (7, 3),
            "algorithm-2": (7, 3),
            "oral-messages": (7, 2),
            "phase-king": (9, 2),
        }
        factories = []
        for name, info in ALGORITHMS.items():
            n, t = sizing.get(name, (18, 2))
            factories.append(lambda info=info, n=n, t=t: info(n, t))
        records = check_grid(
            factories,
            values=(0, 1),
            adversaries=(
                ("fault-free", no_adversary),
                ("silent-1", lambda alg: SilentAdversary([1])),
                ("shadow", lambda alg: SimulatingAdversary([1, 2][: alg.t])),
            ),
        )
        bad = [r for r in records if not r.ok]
        assert not bad, [(r.algorithm, r.adversary, r.violations) for r in bad]
