"""Property suite: the batch engine is observationally equal to the runner.

``run_batch(strict=True)`` re-executes every unique run class through the
scalar runner and raises on *any* difference in decisions or metrics —
so these properties simply drive strict batches across the full algorithm
zoo, both delivery strategies, value streams that mix ``0``/``1``/``True``
(type-punning dict keys), and seeded benign fault plans.  A silent pass
means byte-identical outcomes; kernels (``phase-king``,
``oral-messages``) and the dedup/digest-sharing machinery are all under
the same gate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import ALGORITHMS
from repro.core.batch import BatchCase, run_batch
from repro.transport.faults import random_plan

#: One pinned small configuration per registry algorithm (the zoo).
ZOO = [
    ("dolev-strong", 5, 2),
    ("active-set", 5, 2),
    ("oral-messages", 7, 2),
    ("algorithm-1", 5, 2),
    ("algorithm-2", 5, 2),
    ("algorithm-3", 9, 2),
    ("algorithm-5", 9, 1),
    ("informed-algorithm-2", 9, 2),
    ("phase-king", 9, 2),
]


def build(name: str, n: int, t: int):
    return ALGORITHMS[name](n, t)


values_streams = st.lists(
    st.sampled_from([0, 1, True]), min_size=1, max_size=8
)


class TestStrictEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(values=values_streams, delivery=st.sampled_from(["merged", "sorted"]))
    def test_every_zoo_algorithm_matches_the_scalar_runner(
        self, values, delivery
    ):
        for name, n, t in ZOO:
            result = run_batch(
                build(name, n, t), values, strict=True, delivery=delivery
            )
            assert result.stats.runs == len(values)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), value=st.sampled_from([0, 1]))
    def test_fault_plan_runs_match_the_scalar_runner(self, seed, value):
        for name, n, t in (("dolev-strong", 5, 2), ("phase-king", 9, 2)):
            algorithm = build(name, n, t)
            plan = random_plan(
                seed,
                n=n,
                t=t,
                num_phases=algorithm.num_phases(),
                rate=0.3,
            )
            cases = [BatchCase(value=value, fault_plan=plan)] * 3
            result = run_batch(algorithm, cases, strict=True)
            # The plan is a frozen value object, so the class dedupes.
            assert result.stats.unique_runs == 1
            assert result.stats.replicated_runs == 2

    @settings(max_examples=6, deadline=None)
    @given(values=values_streams)
    def test_kernel_and_scalar_agree_when_both_forced(self, values):
        # Run the kernel algorithms once normally (kernel path) and once
        # with the kernel disabled (scalar path): same outcomes.
        from repro.core import batch as batch_module

        for name, n, t in (("phase-king", 9, 2), ("oral-messages", 7, 2)):
            with_kernel = run_batch(build(name, n, t), values, strict=True)
            saved = batch_module._KERNELS.pop(name)
            try:
                without = run_batch(build(name, n, t), values, strict=True)
            finally:
                batch_module._KERNELS[name] = saved
            assert [o.comparable() for o in with_kernel.outcomes] == [
                o.comparable() for o in without.outcomes
            ]
            assert with_kernel.stats.kernel_runs > 0
            assert without.stats.kernel_runs == 0
