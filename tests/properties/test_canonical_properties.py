"""Property-based tests for canonicalisation and digests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import canonical, payload_digest

# payloads built only from canonicalisable pieces.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=20),
    st.binary(max_size=20),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.frozensets(scalars, max_size=4),
        st.dictionaries(st.text(max_size=5), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalProperties:
    @given(payloads)
    def test_idempotent_under_reconstruction(self, payload):
        """Structurally equal payloads canonicalise identically."""
        import copy

        assert canonical(payload) == canonical(copy.deepcopy(payload))

    @given(payloads)
    @settings(max_examples=60)
    def test_digest_deterministic(self, payload):
        assert payload_digest(payload) == payload_digest(payload)

    @given(st.lists(payloads, min_size=2, max_size=6, unique_by=lambda p: repr(p)))
    @settings(max_examples=60)
    def test_distinct_reprs_rarely_collide(self, distinct):
        """Digests of structurally distinct payloads do not collide (at
        test scale a collision would mean a canonicalisation bug, since
        sha256 cannot realistically collide here)."""
        canonicals = {repr(canonical(p)) for p in distinct}
        digests = {payload_digest(p) for p in distinct}
        assert len(digests) == len(canonicals)

    @given(st.frozensets(st.integers(0, 100), max_size=8))
    def test_set_canonical_is_order_free(self, members):
        shuffled = frozenset(sorted(members, reverse=True))
        assert canonical(members) == canonical(shuffled)
