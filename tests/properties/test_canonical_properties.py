"""Property-based tests for canonicalisation and digests."""

import dataclasses
from enum import Enum

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import _PRIMITIVES, canonical, payload_digest
from repro.crypto.signatures import SignatureService

# payloads built only from canonicalisable pieces.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=20),
    st.binary(max_size=20),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.frozensets(scalars, max_size=4),
        st.dictionaries(st.text(max_size=5), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalProperties:
    @given(payloads)
    def test_idempotent_under_reconstruction(self, payload):
        """Structurally equal payloads canonicalise identically."""
        import copy

        assert canonical(payload) == canonical(copy.deepcopy(payload))

    @given(payloads)
    @settings(max_examples=60)
    def test_digest_deterministic(self, payload):
        assert payload_digest(payload) == payload_digest(payload)

    @given(st.lists(payloads, min_size=2, max_size=6, unique_by=lambda p: repr(p)))
    @settings(max_examples=60)
    def test_distinct_reprs_rarely_collide(self, distinct):
        """Digests of structurally distinct payloads do not collide (at
        test scale a collision would mean a canonicalisation bug, since
        sha256 cannot realistically collide here)."""
        canonicals = {repr(canonical(p)) for p in distinct}
        digests = {payload_digest(p) for p in distinct}
        assert len(digests) == len(canonicals)

    @given(st.frozensets(st.integers(0, 100), max_size=8))
    def test_set_canonical_is_order_free(self, members):
        shuffled = frozenset(sorted(members, reverse=True))
        assert canonical(members) == canonical(shuffled)


def _canonical_reference(payload):
    """``canonical()`` with no shortcuts: always recurses per item.

    The production function short-circuits tuples of primitives (the hot
    sign/verify shape); this reference spells out the general path so the
    properties below can assert the optimisation is behaviourally invisible.
    """
    if payload is None or isinstance(payload, _PRIMITIVES):
        return payload
    if isinstance(payload, Enum):
        return ("enum", type(payload).__qualname__, payload.name)
    if isinstance(payload, tuple):
        return ("tuple", *(_canonical_reference(item) for item in payload))
    if isinstance(payload, list):
        return ("list", *(_canonical_reference(item) for item in payload))
    if isinstance(payload, (frozenset, set)):
        return ("set", *sorted(repr(_canonical_reference(i)) for i in payload))
    if isinstance(payload, dict):
        items = sorted(
            (repr(_canonical_reference(k)), _canonical_reference(v))
            for k, v in payload.items()
        )
        return ("dict", *items)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        fields = tuple(
            _canonical_reference(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
        return ("dc", type(payload).__qualname__, *fields)
    raise TypeError(f"reference cannot canonicalise {type(payload)!r}")


# Tuples of primitives — exactly the shape the fast path accepts.
primitive_tuples = st.tuples(
    *[
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(2**40), 2**40),
            st.text(max_size=10),
            st.binary(max_size=10),
        )
    ]
    * 3
)


class TestFastPathEquivalence:
    """The primitive-tuple fast path and the identity-keyed digest memo are
    optimisations; on every payload they must agree with the slow path."""

    @given(payloads)
    @settings(max_examples=120)
    def test_canonical_matches_reference_on_arbitrary_payloads(self, payload):
        assert canonical(payload) == _canonical_reference(payload)

    @given(primitive_tuples)
    def test_canonical_matches_reference_on_fast_path_shape(self, payload):
        assert canonical(payload) == _canonical_reference(payload)

    @given(st.lists(payloads, min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_nested_tuple_payloads_agree(self, items):
        # mixed tuples: some trip the fast path, some recurse
        payload = tuple(items) + (("inner", 1), None)
        assert canonical(payload) == _canonical_reference(payload)

    @given(payloads)
    @settings(max_examples=80)
    def test_memoised_digest_matches_slow_path(self, payload):
        service = SignatureService()
        slow = payload_digest(payload)
        assert service._digest(payload) == slow
        # second call is the memo hit — must still agree
        assert service._digest(payload) == slow
