"""Property-based fuzzing: Byzantine Agreement must hold under *every*
randomized adversary, for every algorithm, at every tested size.

These are the library's main invariant tests: a seeded
:class:`~repro.adversary.standard.RandomizedAdversary` corrupts a random
subset of up to ``t`` processors, randomly drops their inputs and outputs
and injects garbage, and the run must still satisfy both BA conditions and
stay within the paper's message bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.standard import RandomizedAdversary
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def random_faulty(draw, n: int, t: int) -> list[int]:
    size = draw(st.integers(0, t))
    return draw(
        st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
    )


@st.composite
def fuzz_case(draw, n: int, t: int):
    return (
        random_faulty(draw, n, t),
        draw(st.integers(0, 2**31)),
        draw(st.sampled_from([0, 1])),
    )


def assert_ba(algorithm, case):
    faulty, seed, value = case
    adversary = RandomizedAdversary(faulty, seed) if faulty else None
    result = run(algorithm, value, adversary)
    report = check_byzantine_agreement(result)
    assert report.ok, f"{algorithm.name}: {report}"
    bound = algorithm.upper_bound_messages()
    if bound is not None:
        assert result.metrics.messages_by_correct <= bound
    if algorithm.transmitter in result.correct:
        assert result.unanimous_value() == value


class TestDolevStrong:
    @given(fuzz_case(n=6, t=2))
    @settings(max_examples=40, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(DolevStrong(6, 2), case)


class TestActiveSet:
    @given(fuzz_case(n=12, t=2))
    @settings(max_examples=30, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(ActiveSetBroadcast(12, 2), case)


class TestOralMessages:
    @given(fuzz_case(n=7, t=2))
    @settings(max_examples=25, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(OralMessages(7, 2), case)


class TestAlgorithm1:
    @given(fuzz_case(n=7, t=3))
    @settings(max_examples=40, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(Algorithm1(7, 3), case)


class TestAlgorithm2:
    @given(fuzz_case(n=7, t=3))
    @settings(max_examples=30, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(Algorithm2(7, 3), case)

    @given(fuzz_case(n=7, t=3))
    @settings(max_examples=20, deadline=None)
    def test_correct_processors_always_get_proofs(self, case):
        faulty, seed, value = case
        adversary = RandomizedAdversary(faulty, seed) if faulty else None
        result = run(Algorithm2(7, 3), value, adversary)
        if check_byzantine_agreement(result).ok:
            for pid, processor in result.processors.items():
                assert processor.has_agreement_proof(), pid


class TestAlgorithm3:
    @given(fuzz_case(n=16, t=2))
    @settings(max_examples=25, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(Algorithm3(16, 2, s=3), case)


class TestAlgorithm5:
    @given(fuzz_case(n=24, t=2))
    @settings(max_examples=20, deadline=None)
    def test_ba_under_chaos(self, case):
        assert_ba(Algorithm5(24, 2, s=3), case)


class TestInformedAlgorithm2:
    @given(fuzz_case(n=14, t=3))
    @settings(max_examples=25, deadline=None)
    def test_ba_under_chaos(self, case):
        from repro.algorithms.informed import InformedAlgorithm2

        assert_ba(InformedAlgorithm2(14, 3), case)


class TestPhaseKing:
    @given(fuzz_case(n=9, t=2))
    @settings(max_examples=30, deadline=None)
    def test_ba_under_chaos(self, case):
        from repro.algorithms.phase_king import PhaseKing

        assert_ba(PhaseKing(9, 2), case)


class TestMultivalued:
    @given(fuzz_case(n=7, t=2), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_ba_under_chaos(self, case, value):
        from repro.adversary.standard import RandomizedAdversary
        from repro.algorithms.multivalued import MultivaluedAgreement

        faulty, seed, _ = case
        algorithm = MultivaluedAgreement(
            7, 2, width=3, inner_factory=DolevStrong
        )
        adversary = RandomizedAdversary(faulty, seed) if faulty else None
        result = run(algorithm, value, adversary)
        report = check_byzantine_agreement(result)
        assert report.ok, report
        if algorithm.transmitter in result.correct:
            assert result.unanimous_value() == value
