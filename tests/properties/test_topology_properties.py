"""Property-based tests for the logical topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import (
    BinaryTree,
    BipartiteRelayGraph,
    Grid,
    TreeForest,
    smallest_square_above,
)


class TestSquareProperties:
    @given(st.integers(0, 10**6))
    def test_result_is_a_square_strictly_above(self, x):
        import math

        square = smallest_square_above(x)
        root = math.isqrt(square)
        assert root * root == square
        assert square > x
        # minimality: the next smaller square is not above x.
        assert (root - 1) ** 2 <= x


class TestBipartiteGraphProperties:
    @given(st.integers(1, 12))
    def test_sides_partition(self, t):
        graph = BipartiteRelayGraph(t)
        side_a, side_b = set(graph.side_a), set(graph.side_b)
        assert side_a & side_b == set()
        assert side_a | side_b == set(range(1, 2 * t + 1))
        assert len(side_a) == len(side_b) == t

    @given(st.integers(1, 10), st.data())
    def test_edges_are_symmetric(self, t, data):
        graph = BipartiteRelayGraph(t)
        u = data.draw(st.integers(0, 2 * t))
        v = data.draw(st.integers(0, 2 * t))
        assert graph.has_edge(u, v) == graph.has_edge(v, u)

    @given(st.integers(1, 8), st.data())
    def test_valid_paths_alternate_sides(self, t, data):
        graph = BipartiteRelayGraph(t)
        length = data.draw(st.integers(1, min(2 * t, 6)))
        nodes = data.draw(
            st.lists(
                st.integers(1, 2 * t), min_size=length, max_size=length, unique=True
            )
        )
        path = (0, *nodes)
        if graph.is_simple_path_from_transmitter(path):
            for u, v in zip(path[1:], path[2:]):
                assert graph.side_of(u) != graph.side_of(v)


class TestBinaryTreeProperties:
    @given(st.integers(1, 64))
    def test_subtrees_partition_at_each_depth(self, size):
        tree = BinaryTree(tuple(range(size)))
        for depth in range(1, tree.levels + 1):
            covered: list[int] = []
            for root_index in tree.roots_at_depth(depth):
                covered.extend(tree.subtree_indices(root_index))
            upper_levels = [
                i
                for i in range(1, size + 1)
                if tree.level_of_index(i) < tree.levels - depth + 1
            ]
            assert sorted(covered) == sorted(
                set(range(1, size + 1)) - set(upper_levels)
            )

    @given(st.integers(1, 64))
    def test_children_consistent_with_levels(self, size):
        tree = BinaryTree(tuple(range(size)))
        for index in range(1, size + 1):
            for child in tree.children(index):
                assert tree.level_of_index(child) == tree.level_of_index(index) + 1

    @given(st.integers(1, 64))
    def test_bfs_starts_at_root_and_is_complete(self, size):
        tree = BinaryTree(tuple(range(size)))
        order = tree.subtree_indices(1)
        assert order[0] == 1
        assert sorted(order) == list(range(1, size + 1))


class TestForestProperties:
    @given(st.integers(0, 60), st.integers(1, 15))
    def test_forest_partitions_passives(self, count, s):
        passives = tuple(range(100, 100 + count))
        forest = TreeForest(passives, s)
        seen = list(forest.all_passive())
        assert seen == list(passives)
        for pid in passives:
            assert pid in forest.tree_of(pid).members

    @given(st.integers(1, 60), st.integers(1, 15))
    def test_all_trees_but_last_are_full(self, count, s):
        forest = TreeForest(tuple(range(count)), s)
        for tree in forest.trees[:-1]:
            assert tree.size == s


class TestGridProperties:
    @given(st.integers(1, 8))
    def test_rows_and_columns_cover_and_intersect_once(self, m):
        grid = Grid(tuple(range(m * m)))
        for pid in grid.members:
            row, column = grid.row_of(pid), grid.column_of(pid)
            assert len(row) == len(column) == m
            assert set(row) & set(column) == {pid}

    @given(st.integers(1, 8), st.data())
    def test_position_round_trip(self, m, data):
        grid = Grid(tuple(range(m * m)))
        pid = data.draw(st.integers(0, m * m - 1))
        row, col = grid.position(pid)
        assert grid.at(row, col) == pid
