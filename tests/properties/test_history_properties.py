"""Property-based tests for the formal history model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import History, edge_payloads
from repro.core.message import Envelope


@st.composite
def histories(draw, n=5, max_phases=4):
    """Random histories over *n* processors."""
    history = History.with_input(0, draw(st.integers(0, 1)))
    num_phases = draw(st.integers(1, max_phases))
    for phase in range(1, num_phases + 1):
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=8,
            )
        )
        envelopes = [
            Envelope(src=src, dst=dst, phase=phase, payload=(phase, src, dst, i))
            for i, (src, dst) in enumerate(pairs)
            if src != dst
        ]
        history.append_phase(envelopes)
    return history


class TestHistoryProperties:
    @given(histories())
    def test_individual_views_partition_every_edge(self, history):
        """Every non-composite payload of every edge appears in exactly the
        target's individual subhistory."""
        n = 5
        total_edges = sum(
            len(phase) for phase in history.phases
        )
        total_in_views = sum(
            len(history.individual(p).received_in_phase(k))
            for p in range(n)
            for k in range(len(history.phases))
        )
        assert total_in_views == total_edges

    @given(histories())
    def test_subhistory_views_are_prefixes(self, history):
        for p in range(5):
            full = history.individual(p)
            for k in range(len(history.phases)):
                sub = history.individual_subhistory(p, k)
                assert sub.per_phase == full.per_phase[: k + 1]

    @given(histories())
    def test_equal_histories_have_equal_views(self, history):
        for p in range(5):
            assert history.individual(p) == history.individual(p)

    @given(histories())
    @settings(max_examples=50)
    def test_edge_payload_merging_roundtrip(self, history):
        """Composite labels decompose back into individual payloads."""
        for phase in history.phases[1:]:
            for edge in phase.edges():
                payloads = edge_payloads(edge.label)
                assert len(payloads) >= 1
                for payload in payloads:
                    assert isinstance(payload, tuple) and len(payload) == 4

    @given(histories(), st.integers(0, 4))
    def test_num_phases_consistent(self, history, p):
        assert history.num_phases == len(history.phases) - 1
        assert history.individual(p).num_phases == history.num_phases
