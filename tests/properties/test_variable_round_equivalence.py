"""The variable-round runner refactor must be invisible to the exact zoo.

The runner gained a termination-by-predicate mode for the randomized
workloads (``algorithm.variable_rounds`` + ``Processor.has_terminated``).
These properties pin the refactor's no-regression contract for every
fixed-round algorithm:

* ``has_terminated`` is **never consulted** — a poisoned override that
  raises on call must not fire (the fast path pays zero per-phase cost);
* decisions, the metrics ledger, and the full ``repro-trace/1`` event
  stream are **identical** across both delivery strategies and across
  repeated runs (byte-identity via deterministic :class:`TickClock`
  traces);
* a coin-less run's ``run_start`` event carries **no** ``coin_seed`` key,
  so pre-refactor trace files and fresh ones stay byte-comparable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.standard import RandomizedAdversary
from repro.algorithms.registry import ALGORITHMS
from repro.core.protocol import Processor
from repro.core.runner import run
from repro.obs import ListSink, TickClock

#: One modest (n, t) per zoo algorithm — enough processors for every
#: resilience precondition, small enough for a hypothesis ensemble.
ZOO_SIZES = {
    "dolev-strong": (5, 2),
    "active-set": (5, 2),
    "oral-messages": (7, 2),
    "algorithm-1": (5, 2),
    "algorithm-2": (5, 2),
    "algorithm-3": (5, 2),
    "algorithm-5": (9, 1),
    "informed-algorithm-2": (5, 2),
    "phase-king": (5, 1),
}


def _zoo():
    for name, (n, t) in sorted(ZOO_SIZES.items()):
        yield name, ALGORITHMS[name](n, t)


def _traced_run(algorithm, value, adversary, delivery):
    sink = ListSink()
    result = run(
        algorithm,
        value,
        adversary,
        delivery=delivery,
        sinks=(sink,),
        collect_telemetry=True,
        clock=TickClock(),
    )
    return result, sink.events


class PoisonedTermination:
    """Patch target: any has_terminated call on the fixed-round path is a bug."""

    def __call__(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError(
            "Processor.has_terminated was consulted for a fixed-round algorithm"
        )


@pytest.mark.parametrize("name", sorted(ZOO_SIZES))
def test_fixed_round_zoo_never_consults_has_terminated(name, monkeypatch):
    monkeypatch.setattr(Processor, "has_terminated", PoisonedTermination())
    n, t = ZOO_SIZES[name]
    algorithm = ALGORITHMS[name](n, t)
    result = run(algorithm, 1)
    assert result.decisions, name


@pytest.mark.parametrize("name", sorted(ZOO_SIZES))
def test_coinless_run_start_event_has_no_coin_seed(name):
    n, t = ZOO_SIZES[name]
    algorithm = ALGORITHMS[name](n, t)
    _, events = _traced_run(algorithm, 1, None, "merged")
    run_start = events[0]
    assert run_start["event"] == "run_start"
    assert "coin_seed" not in run_start


@st.composite
def adversary_case(draw):
    seed = draw(st.integers(0, 2**31))
    value = draw(st.sampled_from([0, 1]))
    pick_faulty = draw(st.booleans())
    return seed, value, pick_faulty


@given(adversary_case())
@settings(max_examples=15, deadline=None)
def test_zoo_runs_identical_across_delivery_modes(case):
    """Decisions, ledger, and trace events agree between 'merged' and
    'sorted' delivery, and between repeated runs, for every zoo member."""
    seed, value, pick_faulty = case
    for name, _ in _zoo():
        n, t = ZOO_SIZES[name]

        def scenario(delivery):
            # Fresh algorithm and adversary per run: RandomizedAdversary
            # draws from an internal RNG, so reuse would diverge.
            algorithm = ALGORITHMS[name](n, t)
            adversary = (
                RandomizedAdversary([n - 1, n - 2][:t], seed)
                if pick_faulty
                else None
            )
            return _traced_run(algorithm, value, adversary, delivery)

        merged, merged_events = scenario("merged")
        again, again_events = scenario("merged")
        sorted_, sorted_events = scenario("sorted")

        assert merged.decisions == again.decisions == sorted_.decisions, name
        assert merged.metrics == again.metrics == sorted_.metrics, name
        assert merged_events == again_events, f"{name}: rerun trace drifted"
        assert merged_events == sorted_events, f"{name}: delivery trace drifted"
        assert merged.coin_seed is None, name
