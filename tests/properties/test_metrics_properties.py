"""Property-based tests for metrics consistency and formula monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import formulas
from repro.core.message import Envelope
from repro.core.metrics import MetricsLedger
from repro.core.types import INPUT_SOURCE


@st.composite
def send_events(draw, n=6):
    src = draw(st.integers(0, n - 1))
    dst = draw(st.integers(0, n - 1).filter(lambda d: d != src))
    phase = draw(st.integers(1, 5))
    correct = draw(st.booleans())
    return Envelope(src=src, dst=dst, phase=phase, payload=("m", src, phase)), correct


class TestLedgerInvariants:
    @given(st.lists(send_events(), max_size=40))
    def test_totals_equal_breakdown_sums(self, events):
        ledger = MetricsLedger()
        for envelope, correct in events:
            ledger.record_send(envelope, sender_correct=correct)
        assert ledger.total_messages == sum(ledger.messages_per_phase.values())
        assert ledger.total_messages == sum(ledger.sent_per_processor.values())
        assert ledger.total_messages == sum(ledger.received_per_processor.values())
        assert (
            ledger.total_messages
            == ledger.messages_by_correct + ledger.messages_by_faulty
        )

    @given(st.lists(send_events(), max_size=40))
    def test_correct_received_bounded_by_received(self, events):
        ledger = MetricsLedger()
        for envelope, correct in events:
            ledger.record_send(envelope, sender_correct=correct)
        for pid, count in ledger.correct_messages_received_by.items():
            assert count <= ledger.received_per_processor[pid]

    @given(st.lists(send_events(), max_size=40))
    def test_last_active_phase_is_max(self, events):
        ledger = MetricsLedger()
        for envelope, correct in events:
            ledger.record_send(envelope, sender_correct=correct)
        expected = max((e.phase for e, _ in events), default=0)
        assert ledger.last_active_phase == expected

    @given(st.integers(0, 4))
    def test_input_edges_never_counted(self, phase_count):
        ledger = MetricsLedger()
        for _ in range(phase_count):
            ledger.record_send(
                Envelope(INPUT_SOURCE, 0, 0, "v"), sender_correct=True
            )
        assert ledger.total_messages == 0


class TestFormulaMonotonicity:
    @given(st.integers(2, 200), st.integers(1, 50))
    def test_lower_bounds_grow_with_n(self, n, t):
        if t >= n - 1:
            return
        assert formulas.theorem2_message_lower_bound(
            n + 1, t
        ) >= formulas.theorem2_message_lower_bound(n, t)
        assert formulas.theorem1_signature_lower_bound(
            n + 1, t
        ) >= formulas.theorem1_signature_lower_bound(n, t)

    @given(st.integers(4, 200), st.integers(1, 50))
    def test_lower_bounds_grow_with_t(self, n, t):
        if t + 1 >= n - 1:
            return
        assert formulas.theorem2_message_lower_bound(
            n, t + 1
        ) >= formulas.theorem2_message_lower_bound(n, t)

    @given(st.integers(1, 60))
    def test_upper_bounds_ordered_like_the_paper(self, t):
        """Algorithm 2 costs more than Algorithm 1 (it does strictly more),
        and both are polynomial in t."""
        assert formulas.theorem4_message_upper_bound(
            t
        ) > formulas.theorem3_message_upper_bound(t)

    @given(st.integers(2, 100), st.integers(1, 20), st.integers(1, 40))
    def test_lemma1_bound_exceeds_linear_term(self, n, t, s):
        assert formulas.lemma1_message_upper_bound(n, t, s) >= 2 * n

    @given(st.integers(1, 30))
    def test_alpha_in_its_window(self, t):
        alpha = formulas.smallest_alpha(t)
        assert alpha > 6 * t
        # α is the *smallest* such square: (√α − 1)² ≤ 6t.
        import math

        root = math.isqrt(alpha)
        assert (root - 1) ** 2 <= 6 * t

    @given(st.integers(2, 300), st.integers(1, 40))
    def test_theorem7_scale_between_bounds(self, n, t):
        if t >= n - 1:
            return
        lower = formulas.theorem2_message_lower_bound(n, t)
        scale = formulas.theorem7_message_scale(n, t)
        assert scale >= lower / 8  # the constant from the formulas tests
