"""Property-based tests for the closed-form bounds in ``bounds/formulas.py``.

Two families of properties:

* **Monotonicity** — the paper's bounds are counting arguments, so each
  must grow (weakly) with the parameters it mentions: more processors or
  more tolerated faults can never *shrink* a worst-case count.
* **Dominance** — the upper-bound theorems (3, 4, 5) claim to hold for
  *every* t-faulty history, so the correct-processor message count of any
  fuzzed run of the corresponding algorithm must stay at or below the
  closed form.  Hypothesis picks the seeds; the generator turns each seed
  into an adversary script.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.formulas import (
    lemma1_message_upper_bound,
    theorem1_signature_lower_bound,
    theorem2_message_lower_bound,
    theorem3_message_upper_bound,
    theorem4_message_upper_bound,
    theorem5_message_upper_bound,
)

small_t = st.integers(min_value=1, max_value=40)
small_n = st.integers(min_value=3, max_value=200)


class TestMonotonicity:
    @given(small_n, small_t)
    def test_theorem1_monotone_in_n_and_t(self, n, t):
        assert theorem1_signature_lower_bound(n + 1, t) >= (
            theorem1_signature_lower_bound(n, t)
        )
        assert theorem1_signature_lower_bound(n, t + 1) >= (
            theorem1_signature_lower_bound(n, t)
        )

    @given(small_n, small_t)
    def test_theorem2_monotone_in_n_and_t(self, n, t):
        assert theorem2_message_lower_bound(n + 1, t) >= (
            theorem2_message_lower_bound(n, t)
        )
        assert theorem2_message_lower_bound(n, t + 1) >= (
            theorem2_message_lower_bound(n, t)
        )

    @given(small_t)
    def test_theorem3_and_4_monotone_in_t(self, t):
        assert theorem3_message_upper_bound(t + 1) > theorem3_message_upper_bound(t)
        assert theorem4_message_upper_bound(t + 1) > theorem4_message_upper_bound(t)

    @given(small_n, small_t)
    def test_theorem5_monotone_in_n(self, n, t):
        assert theorem5_message_upper_bound(n + 1, t) >= (
            theorem5_message_upper_bound(n, t)
        )

    @given(small_n, small_t, st.integers(min_value=1, max_value=20))
    def test_lemma1_monotone_in_n(self, n, t, s):
        assert lemma1_message_upper_bound(n + 1, t, s) >= (
            lemma1_message_upper_bound(n, t, s)
        )

    @given(small_t)
    def test_theorem4_dominates_theorem3(self, t):
        # Algorithm 2 trades phases for messages but its budget still
        # dominates Algorithm 1's: 5t^2+5t >= 2t^2+2t.
        assert theorem4_message_upper_bound(t) >= theorem3_message_upper_bound(t)


def _fuzzed_messages(algorithm_name, n, t, seed, value, **params):
    """Messages sent by correct processors in one generated-adversary run."""
    from repro.algorithms.registry import get
    from repro.core.runner import run
    from repro.fuzz.generator import generate_script

    algorithm = get(algorithm_name)(n, t, **params)
    script = generate_script(
        seed,
        n=n,
        t=t,
        num_phases=algorithm.num_phases(),
        transmitter=algorithm.transmitter,
        value_domain=sorted(algorithm.value_domain or {0, 1}, key=repr),
    )
    result = run(algorithm, value, script.build(), record_history=False)
    return result.metrics.messages_by_correct


seeds = st.integers(min_value=0, max_value=2**32 - 1)
binary = st.sampled_from([0, 1])


class TestBoundsDominateFuzzedRuns:
    """Measured counts from adversarial runs never exceed the theorems."""

    @given(seeds, binary)
    @settings(max_examples=25, deadline=None)
    def test_theorem3_dominates_algorithm1(self, seed, value):
        t = 2
        measured = _fuzzed_messages("algorithm-1", 2 * t + 1, t, seed, value)
        assert measured <= theorem3_message_upper_bound(t)

    @given(seeds, binary)
    @settings(max_examples=25, deadline=None)
    def test_theorem4_dominates_algorithm2(self, seed, value):
        t = 2
        measured = _fuzzed_messages("algorithm-2", 2 * t + 1, t, seed, value)
        assert measured <= theorem4_message_upper_bound(t)

    @given(seeds, binary)
    @settings(max_examples=25, deadline=None)
    def test_lemma1_dominates_algorithm3(self, seed, value):
        n, t, s = 7, 2, 2
        measured = _fuzzed_messages("algorithm-3", n, t, seed, value, s=s)
        assert measured <= lemma1_message_upper_bound(n, t, s)

    @given(seeds, binary)
    @settings(max_examples=15, deadline=None)
    def test_theorem5_dominates_algorithm3_at_default_s(self, seed, value):
        # Theorem 5 is Lemma 1 evaluated at s = 4t, Algorithm 3's default.
        n, t = 10, 2
        measured = _fuzzed_messages("algorithm-3", n, t, seed, value)
        assert measured <= theorem5_message_upper_bound(n, t)
