"""Property-based tests for signature chains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.chains import SignatureChain
from repro.crypto.signatures import Signature, SignatureService

signer_lists = st.lists(
    st.integers(0, 9), min_size=1, max_size=6, unique=True
)
values = st.one_of(st.integers(0, 5), st.text(max_size=8))


def build_chain(signers, value):
    service = SignatureService()
    chain = SignatureChain(value)
    for pid in signers:
        chain = chain.extend(service.key_for(pid), service)
    return service, chain


class TestChainProperties:
    @given(signer_lists, values)
    def test_honest_chains_always_verify(self, signers, value):
        service, chain = build_chain(signers, value)
        assert chain.verify(service)
        assert chain.signers == tuple(signers)

    @given(signer_lists, values, st.data())
    @settings(max_examples=80)
    def test_any_single_link_tamper_breaks_verification(self, signers, value, data):
        service, chain = build_chain(signers, value)
        index = data.draw(st.integers(0, len(chain) - 1))
        mode = data.draw(st.sampled_from(["drop", "resign", "redigest"]))
        sigs = list(chain.signatures)
        if mode == "drop":
            # dropping the *last* link legitimately yields a valid prefix
            # (tested separately); only interior drops must break the chain.
            if index == len(sigs) - 1:
                return
            del sigs[index]
        elif mode == "resign":
            sigs[index] = Signature(signer=sigs[index].signer + 100, digest=sigs[index].digest)
        else:
            sigs[index] = Signature(signer=sigs[index].signer, digest="0" * 16)
        tampered = SignatureChain(value, tuple(sigs))
        if tampered.signatures != chain.signatures:
            assert not tampered.verify(service)

    @given(signer_lists, values)
    def test_value_substitution_breaks_verification(self, signers, value):
        service, chain = build_chain(signers, value)
        other = ("definitely", "different")
        assert not SignatureChain(other, chain.signatures).verify(service)

    @given(signer_lists, values)
    @settings(max_examples=50)
    def test_prefixes_of_valid_chains_are_valid(self, signers, value):
        service, chain = build_chain(signers, value)
        for k in range(len(chain) + 1):
            prefix = SignatureChain(value, chain.signatures[:k])
            assert prefix.verify(service)

    @given(signer_lists, values)
    @settings(max_examples=50)
    def test_truncating_from_the_front_breaks_chains(self, signers, value):
        service, chain = build_chain(signers, value)
        if len(chain) >= 2:
            beheaded = SignatureChain(value, chain.signatures[1:])
            assert not beheaded.verify(service)

    @given(st.lists(st.integers(0, 9), min_size=2, max_size=6))
    def test_duplicate_signers_rejected_iff_present(self, signers):
        service = SignatureService()
        chain = SignatureChain("v")
        for pid in signers:
            chain = chain.extend(service.key_for(pid), service)
        has_duplicates = len(set(signers)) != len(signers)
        assert chain.verify(service) == (not has_duplicates)
        assert chain.verify(service, distinct=False)
