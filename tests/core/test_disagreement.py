"""DisagreementError: structured disagreement instead of string matching."""

import pytest

from repro.core.errors import DisagreementError, ReproError
from repro.core.runner import run
from repro.fuzz.oracle import SAFETY
from tests.fuzz.test_oracle import SplitBrainAlgorithm


class TestDisagreementError:
    def run_split_brain(self):
        return run(SplitBrainAlgorithm(4, 1), 1)

    def test_unanimous_value_raises_with_decisions(self):
        result = self.run_split_brain()
        with pytest.raises(DisagreementError) as excinfo:
            result.unanimous_value()
        assert excinfo.value.decisions == dict(result.decisions)

    def test_is_a_value_error_and_repro_error(self):
        # Existing callers catch ValueError (some match on 'disagree');
        # both must keep working.
        error = DisagreementError({0: 0, 1: 1})
        assert isinstance(error, ValueError)
        assert isinstance(error, ReproError)
        assert "disagree" in str(error)

    def test_message_lists_the_conflicting_values(self):
        error = DisagreementError({0: 0, 1: 1, 2: 0})
        assert "0" in str(error) and "1" in str(error)

    def test_decisions_are_a_defensive_copy(self):
        decisions = {0: 0, 1: 1}
        error = DisagreementError(decisions)
        decisions[0] = 99
        assert error.decisions == {0: 0, 1: 1}

    def test_agreeing_run_returns_value(self):
        from repro.algorithms.registry import get

        result = run(get("dolev-strong")(4, 1), 1)
        assert result.unanimous_value() == 1

    def test_oracle_uses_structured_comparison(self):
        # The oracle's verdict for a split brain is SAFETY whether or not
        # anyone inspects the exception message.
        from repro.fuzz.oracle import classify_run

        algorithm = SplitBrainAlgorithm(4, 1)
        outcome = classify_run(algorithm, run(algorithm, 1))
        assert outcome.verdict == SAFETY
