"""Tests for the lock-step runner (repro.core.runner)."""

from typing import Iterable, Sequence

import pytest

from repro.adversary.base import Adversary, NullAdversary, PhaseView
from repro.core.errors import (
    AdversaryError,
    ConfigurationError,
    ProtocolViolationError,
)
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.core.runner import run
from repro.core.types import ProcessorId, Value


class EchoProcessor(Processor):
    """Phase 1: transmitter broadcasts its input; everyone records inboxes."""

    def __init__(self) -> None:
        self.log: list[tuple[int, tuple]] = []
        self.final: tuple = ()
        self.value: Value | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        self.log.append((phase, tuple(inbox)))
        if phase == 1 and self.ctx.pid == self.ctx.transmitter:
            self.value = inbox[0].payload
            return [(q, self.value) for q in self.ctx.others()]
        for envelope in inbox:
            if not envelope.is_input_edge():
                self.value = envelope.payload
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self.final = tuple(inbox)
        for envelope in inbox:
            self.value = envelope.payload

    def decision(self) -> Value | None:
        return self.value


class EchoAlgorithm(AgreementAlgorithm):
    name = "echo-test"
    authenticated = False

    def __init__(self, n: int, t: int, phases: int = 2) -> None:
        super().__init__(n, t)
        self._phases = phases

    def num_phases(self) -> int:
        return self._phases

    def make_processor(self, pid: ProcessorId) -> Processor:
        return EchoProcessor()


class TestPhaseSequencing:
    def test_all_phases_executed_in_order(self):
        result = run(EchoAlgorithm(3, 1, phases=4), "v")
        assert [p for p, _ in result.processors[1].log] == [1, 2, 3, 4]

    def test_input_edge_reaches_transmitter_at_phase_one(self):
        result = run(EchoAlgorithm(3, 1), "v")
        phase1_inbox = result.processors[0].log[0][1]
        assert len(phase1_inbox) == 1 and phase1_inbox[0].is_input_edge()
        assert phase1_inbox[0].payload == "v"

    def test_messages_delivered_next_phase(self):
        result = run(EchoAlgorithm(3, 1), "v")
        # transmitter sends in phase 1; receivers see it at phase 2.
        phase2_inbox = result.processors[1].log[1][1]
        assert [e.payload for e in phase2_inbox] == ["v"]

    def test_last_phase_messages_reach_on_final(self):
        class LastPhaseSender(EchoProcessor):
            def on_phase(self, phase, inbox):
                sent = list(super().on_phase(phase, inbox))
                if phase == 2 and self.ctx.pid == 1:
                    sent.append((2, "late"))
                return sent

        class LateAlgorithm(EchoAlgorithm):
            def make_processor(self, pid):
                return LastPhaseSender()

        result = run(LateAlgorithm(3, 1, phases=2), "v")
        assert [e.payload for e in result.processors[2].final] == ["late"]

    def test_decisions_collected_for_correct_only(self):
        class OneFaulty(Adversary):
            def __init__(self):
                super().__init__([2])

            def on_phase(self, view):
                return []

        result = run(EchoAlgorithm(4, 1), "v", OneFaulty())
        assert set(result.decisions) == {0, 1, 3}


class TestModelEnforcement:
    def test_self_send_rejected(self):
        class SelfSender(EchoProcessor):
            def on_phase(self, phase, inbox):
                return [(self.ctx.pid, "loop")]

        class BadAlgorithm(EchoAlgorithm):
            def make_processor(self, pid):
                return SelfSender()

        with pytest.raises(ProtocolViolationError, match="itself"):
            run(BadAlgorithm(3, 1), "v")

    def test_invalid_destination_rejected(self):
        class WildSender(EchoProcessor):
            def on_phase(self, phase, inbox):
                return [(99, "off the map")]

        class BadAlgorithm(EchoAlgorithm):
            def make_processor(self, pid):
                return WildSender()

        with pytest.raises(ProtocolViolationError, match="non-existent"):
            run(BadAlgorithm(3, 1), "v")

    def test_adversary_cannot_exceed_fault_bound(self):
        class TooMany(NullAdversary):
            def __init__(self):
                Adversary.__init__(self, [1, 2])

        with pytest.raises(ConfigurationError, match="tolerate"):
            run(EchoAlgorithm(4, 1), "v", TooMany())

    def test_adversary_cannot_corrupt_unknown_processor(self):
        class Phantom(NullAdversary):
            def __init__(self):
                Adversary.__init__(self, [7])

        with pytest.raises(ConfigurationError, match="range"):
            run(EchoAlgorithm(4, 2), "v", Phantom())

    def test_adversary_cannot_spoof_correct_source(self):
        class Spoofer(Adversary):
            def __init__(self):
                super().__init__([1])

            def on_phase(self, view):
                return [(0, 2, "forged source")]  # 0 is correct

        with pytest.raises(AdversaryError, match="does not control"):
            run(EchoAlgorithm(4, 1), "v", Spoofer())

    def test_adversary_destination_validated(self):
        class WildAdversary(Adversary):
            def __init__(self):
                super().__init__([1])

            def on_phase(self, view):
                return [(1, 1, "to self")]

        with pytest.raises(AdversaryError, match="destination"):
            run(EchoAlgorithm(4, 1), "v", WildAdversary())


class TestAdversaryView:
    def test_faulty_inboxes_visible(self):
        seen: list[tuple[int, int]] = []

        class Observer(Adversary):
            def __init__(self):
                super().__init__([1])

            def on_phase(self, view: PhaseView):
                seen.append((view.phase, len(view.inbox(1))))
                return []

        run(EchoAlgorithm(3, 1, phases=3), "v", Observer())
        # the transmitter's broadcast reaches faulty 1 at phase 2.
        assert (2, 1) in seen

    def test_rushing_exposes_current_phase_traffic(self):
        rushing_counts: list[int] = []

        class Rusher(Adversary):
            def __init__(self):
                super().__init__([1])

            def on_phase(self, view: PhaseView):
                rushing_counts.append(len(view.rushing_outbox))
                return []

        run(EchoAlgorithm(3, 1), "v", Rusher(), rushing=True)
        assert rushing_counts[0] == 2  # transmitter's phase-1 broadcast

    def test_non_rushing_view_is_empty(self):
        counts: list[int] = []

        class Observer(Adversary):
            def __init__(self):
                super().__init__([1])

            def on_phase(self, view: PhaseView):
                counts.append(len(view.rushing_outbox))
                return []

        run(EchoAlgorithm(3, 1), "v", Observer())
        assert counts == [0, 0]


class TestValueDomain:
    def test_binary_algorithms_reject_other_values(self):
        from repro.algorithms.algorithm1 import Algorithm1

        with pytest.raises(ConfigurationError, match="MultivaluedAgreement"):
            run(Algorithm1(5, 2), "not-a-bit")

    def test_open_domain_algorithms_accept_anything(self):
        result = run(EchoAlgorithm(3, 1), ("rich", "payload"))
        assert result.unanimous_value() == ("rich", "payload")

    @pytest.mark.parametrize(
        "name", ["algorithm-1", "algorithm-2", "algorithm-3", "algorithm-5",
                 "informed-algorithm-2"]
    )
    def test_all_paper_algorithms_declare_binary_domain(self, name):
        from repro.algorithms.registry import get

        info = get(name)
        sizing = {"algorithm-1": (5, 2), "algorithm-2": (5, 2)}
        n, t = sizing.get(name, (20, 2))
        assert info(n, t).value_domain == frozenset({0, 1})


class TestResultContents:
    def test_metrics_count_correct_traffic(self):
        result = run(EchoAlgorithm(3, 1), "v")
        assert result.metrics.messages_by_correct == 2
        assert result.metrics.phases_configured == 2

    def test_history_recorded(self):
        result = run(EchoAlgorithm(3, 1), "v")
        assert result.history.num_phases == 2
        assert result.history.transmitter_value() == "v"

    def test_record_history_false_skips_phases(self):
        result = run(EchoAlgorithm(3, 1), "v", record_history=False)
        assert result.history.num_phases == 0  # only the initial phase

    def test_unanimous_value(self):
        result = run(EchoAlgorithm(3, 1), "v")
        assert result.unanimous_value() == "v"

    def test_unanimous_value_raises_on_disagreement(self):
        class Splitter(Adversary):
            def __init__(self):
                super().__init__([0])

            def on_phase(self, view):
                if view.phase == 1:
                    return [(0, 1, "a"), (0, 2, "b")]
                return []

        result = run(EchoAlgorithm(3, 1), "v", Splitter())
        with pytest.raises(ValueError, match="disagree"):
            result.unanimous_value()
