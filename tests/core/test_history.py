"""Tests for the formal model of Section 2 (repro.core.history)."""

import pytest

from repro.core.history import (
    History,
    LabeledEdge,
    PhaseGraph,
    edge_payloads,
)
from repro.core.message import Envelope
from repro.core.types import INPUT_SOURCE


def make_history() -> History:
    history = History.with_input(transmitter=0, value=1)
    history.append_phase(
        [
            Envelope(src=0, dst=1, phase=1, payload="a"),
            Envelope(src=0, dst=2, phase=1, payload="b"),
        ]
    )
    history.append_phase(
        [
            Envelope(src=1, dst=2, phase=2, payload="c"),
            Envelope(src=2, dst=1, phase=2, payload="d"),
        ]
    )
    return history


class TestPhaseGraph:
    def test_duplicate_edge_rejected(self):
        graph = PhaseGraph([LabeledEdge(0, 1, "x")])
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(LabeledEdge(0, 1, "y"))

    def test_edges_to_sorted_by_source(self):
        graph = PhaseGraph(
            [LabeledEdge(2, 0, "x"), LabeledEdge(1, 0, "y"), LabeledEdge(1, 2, "z")]
        )
        assert [e.src for e in graph.edges_to(0)] == [1, 2]

    def test_equality_compares_labels_canonically(self):
        a = PhaseGraph([LabeledEdge(0, 1, (1, 2))])
        b = PhaseGraph([LabeledEdge(0, 1, (1, 2))])
        c = PhaseGraph([LabeledEdge(0, 1, (1, 3))])
        assert a == b
        assert a != c

    def test_equality_requires_same_edge_set(self):
        a = PhaseGraph([LabeledEdge(0, 1, "x")])
        b = PhaseGraph([LabeledEdge(0, 2, "x")])
        assert a != b


class TestHistory:
    def test_initial_phase_holds_transmitter_value(self):
        history = History.with_input(0, "v")
        assert history.transmitter_value() == "v"
        (edge,) = list(history.phases[0].edges())
        assert edge.src == INPUT_SOURCE and edge.dst == 0

    def test_num_phases_excludes_initial(self):
        assert make_history().num_phases == 2

    def test_subhistory_is_prefix(self):
        history = make_history()
        sub = history.subhistory(1)
        assert sub.num_phases == 1
        assert sub.phases[1] == history.phases[1]

    def test_subhistory_out_of_range(self):
        with pytest.raises(IndexError):
            make_history().subhistory(9)

    def test_edges_sent_by(self):
        history = make_history()
        sent = history.edges_sent_by(0)
        assert [(k, e.dst) for k, e in sent] == [(1, 1), (1, 2)]

    def test_composite_label_for_multiple_sends(self):
        history = History.with_input(0, 1)
        history.append_phase(
            [
                Envelope(src=0, dst=1, phase=1, payload="x"),
                Envelope(src=0, dst=1, phase=1, payload="y"),
            ]
        )
        (edge,) = list(history.phases[1].edges())
        assert edge_payloads(edge.label) == ("x", "y")

    def test_edge_payloads_of_plain_label(self):
        assert edge_payloads("solo") == ("solo",)


class TestIndividualSubhistory:
    def test_contains_only_inedges(self):
        history = make_history()
        view = history.individual(1)
        assert view.received_in_phase(1) == ((0, "a"),)
        assert view.received_in_phase(2) == ((2, "d"),)

    def test_equality_is_view_equality(self):
        assert make_history().individual(1) == make_history().individual(1)
        assert make_history().individual(1) != make_history().individual(2)

    def test_input_edge_visible_to_transmitter_only(self):
        history = make_history()
        assert history.individual(0).received_in_phase(0) == ((INPUT_SOURCE, 1),)
        assert history.individual(1).received_in_phase(0) == ()

    def test_total_received(self):
        history = make_history()
        assert history.individual(2).total_received() == 2  # "b" and "c"
        assert history.individual(0).total_received() == 1  # the input edge

    def test_prefix_projection_commutes(self):
        history = make_history()
        assert history.individual_subhistory(1, 1) == history.subhistory(1).individual(1)
