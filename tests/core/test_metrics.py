"""Tests for the information-exchange ledger (repro.core.metrics)."""

from repro.core.message import Envelope
from repro.core.metrics import MetricsLedger, count_signatures
from repro.core.types import INPUT_SOURCE
from repro.crypto.chains import SignatureChain
from repro.crypto.signatures import SignatureService


def signed_chain(service: SignatureService, signers: list[int], value=1) -> SignatureChain:
    chain = SignatureChain(value)
    for pid in signers:
        chain = chain.extend(service.key_for(pid), service)
    return chain


class TestCountSignatures:
    def test_zero_for_plain_payloads(self):
        assert count_signatures("hello") == 0
        assert count_signatures((1, 2, [3])) == 0

    def test_counts_chain_signatures(self, service):
        chain = signed_chain(service, [0, 1, 2])
        assert count_signatures(chain) == 3

    def test_counts_nested_signatures(self, service):
        a = signed_chain(service, [0])
        b = signed_chain(service, [1, 2])
        assert count_signatures(("bundle", (a, b))) == 3


class TestMetricsLedger:
    def test_correct_and_faulty_tracked_separately(self, service):
        ledger = MetricsLedger()
        chain = signed_chain(service, [0])
        ledger.record_send(Envelope(0, 1, 1, chain), sender_correct=True)
        ledger.record_send(Envelope(2, 1, 1, chain), sender_correct=False)
        assert ledger.messages_by_correct == 1
        assert ledger.messages_by_faulty == 1
        assert ledger.signatures_by_correct == 1
        assert ledger.signatures_by_faulty == 1
        assert ledger.total_messages == 2

    def test_input_edge_not_counted(self):
        ledger = MetricsLedger()
        ledger.record_send(Envelope(INPUT_SOURCE, 0, 0, 1), sender_correct=True)
        assert ledger.total_messages == 0

    def test_unsigned_correct_messages_flagged(self):
        ledger = MetricsLedger()
        ledger.record_send(Envelope(0, 1, 1, "bare"), sender_correct=True)
        ledger.record_send(Envelope(2, 1, 1, "bare"), sender_correct=False)
        assert ledger.unsigned_correct_messages == 1

    def test_per_phase_and_per_processor_breakdowns(self, service):
        ledger = MetricsLedger()
        chain = signed_chain(service, [0, 1])
        ledger.record_send(Envelope(0, 1, 1, chain), sender_correct=True)
        ledger.record_send(Envelope(0, 2, 2, chain), sender_correct=True)
        ledger.record_send(Envelope(1, 2, 2, chain), sender_correct=True)
        assert ledger.sent_per_processor[0] == 2
        assert ledger.received_per_processor[2] == 2
        assert ledger.messages_per_phase[2] == 2
        assert ledger.signatures_per_phase[1] == 2
        assert ledger.last_active_phase == 2

    def test_correct_messages_received_by(self):
        ledger = MetricsLedger()
        ledger.record_send(Envelope(0, 3, 1, "m"), sender_correct=True)
        ledger.record_send(Envelope(1, 3, 1, "m"), sender_correct=True)
        ledger.record_send(Envelope(2, 3, 1, "m"), sender_correct=False)
        assert ledger.correct_messages_received_by[3] == 2

    def test_summary_keys(self):
        summary = MetricsLedger(phases_configured=7).summary()
        assert summary["phases_configured"] == 7
        assert set(summary) >= {
            "messages_by_correct",
            "signatures_by_correct",
            "last_active_phase",
        }
