"""Tests for repro.core.message: envelopes, canonical forms, digests."""

from dataclasses import dataclass

import pytest

from repro.core.message import (
    CanonicalisationError,
    Envelope,
    canonical,
    iter_payload_parts,
    payload_digest,
)
from repro.core.types import INPUT_SOURCE


@dataclass(frozen=True)
class Sample:
    a: int
    b: tuple


class TestEnvelope:
    def test_fields(self):
        env = Envelope(src=1, dst=2, phase=3, payload="hello")
        assert (env.src, env.dst, env.phase, env.payload) == (1, 2, 3, "hello")

    def test_is_immutable(self):
        env = Envelope(src=1, dst=2, phase=3, payload="x")
        with pytest.raises(AttributeError):
            env.src = 9  # type: ignore[misc]

    def test_input_edge_detection(self):
        assert Envelope(INPUT_SOURCE, 0, 0, 1).is_input_edge()
        assert not Envelope(0, 1, 1, 1).is_input_edge()
        assert not Envelope(INPUT_SOURCE, 0, 2, 1).is_input_edge()


class TestCanonical:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s", b"b"):
            assert canonical(value) == value

    def test_tuple_and_list_do_not_collide(self):
        assert canonical((1, 2)) != canonical([1, 2])

    def test_set_order_is_irrelevant(self):
        assert canonical(frozenset({3, 1, 2})) == canonical(frozenset({2, 3, 1}))

    def test_set_and_tuple_do_not_collide(self):
        assert canonical(frozenset({1})) != canonical((1,))

    def test_dict_key_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_dataclasses_canonicalise_by_field(self):
        assert canonical(Sample(1, (2,))) == canonical(Sample(1, (2,)))
        assert canonical(Sample(1, (2,))) != canonical(Sample(1, (3,)))

    def test_dataclass_type_is_part_of_identity(self):
        @dataclass(frozen=True)
        class Other:
            a: int
            b: tuple

        assert canonical(Sample(1, ())) != canonical(Other(1, ()))

    def test_nested_structures(self):
        payload = ("tag", [1, {2: (3, 4)}], Sample(5, (6,)))
        assert canonical(payload) == canonical(("tag", [1, {2: (3, 4)}], Sample(5, (6,))))

    def test_uncanonicalisable_object_raises(self):
        with pytest.raises(CanonicalisationError):
            canonical(object())

    def test_primitive_tuple_fast_path_matches_general_form(self):
        """The fast path for tuples of primitives must produce exactly the
        form the general per-item recursion would."""
        payload = ("vote", 3, None, True, 2.5, b"sig", "p")
        assert canonical(payload) == ("tuple", *(canonical(item) for item in payload))
        assert canonical(payload) == ("tuple", *payload)

    def test_mixed_tuple_takes_general_path(self):
        payload = ("vote", (1, 2), [3])
        assert canonical(payload) == (
            "tuple",
            "vote",
            ("tuple", 1, 2),
            ("list", 3),
        )

    def test_fast_path_digest_stability(self):
        """Digests over primitive tuples are unchanged by the fast path —
        pinned value so a future refactor cannot silently re-key every
        signature registry."""
        assert payload_digest(("msg", 1, "x")) == "1c7c6b7a42a0fc9e"
        assert payload_digest(("msg", 1, "x")) != payload_digest(("msg", 1, "y"))


class TestPayloadDigest:
    def test_deterministic(self):
        assert payload_digest((1, "a")) == payload_digest((1, "a"))

    def test_distinguishes_payloads(self):
        assert payload_digest((1, "a")) != payload_digest((1, "b"))

    def test_fixed_length_hex(self):
        digest = payload_digest("anything")
        assert len(digest) == 16
        int(digest, 16)  # parses as hex


class TestIterPayloadParts:
    def test_yields_self_first(self):
        assert next(iter_payload_parts(42)) == 42

    def test_walks_tuples_and_dicts(self):
        parts = list(iter_payload_parts(("a", {"k": "v"})))
        assert "a" in parts and "k" in parts and "v" in parts

    def test_walks_dataclasses(self):
        sample = Sample(7, (8, 9))
        parts = list(iter_payload_parts(sample))
        assert sample in parts and 7 in parts and 8 in parts and 9 in parts
