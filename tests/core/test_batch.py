"""Unit tests for the batch execution engine (repro.core.batch)."""

import dataclasses

import pytest

from repro.adversary.standard import RandomizedAdversary
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages
from repro.algorithms.phase_king import PhaseKing
from repro.algorithms.registry import get
from repro.core.batch import (
    BatchCase,
    BatchEquivalenceError,
    batch_kernel_for,
    kernel_value_table,
    run_batch,
)
from repro.core.errors import ConfigurationError
from repro.core.message import UninternableError
from repro.crypto.chains import SignatureChain, forge_chain
from repro.crypto.signatures import (
    InternedSignatureService,
    SharedDigestTable,
    SignatureService,
)
from repro.transport.faults import CrashFault, FaultPlan


class TestDeduplication:
    def test_repeated_values_execute_once_per_class(self):
        result = run_batch(DolevStrong(5, 1), [0, 1] * 8, strict=True)
        assert result.stats.runs == 16
        assert result.stats.unique_runs == 2
        assert result.stats.replicated_runs == 14
        assert result.stats.scalar_runs == 2
        # Replicas carry the representative's outcome, flagged.
        assert [o.replicated for o in result.outcomes].count(True) == 14
        first_zero, first_one = result.outcomes[0], result.outcomes[1]
        assert result.outcomes[2].comparable() == first_zero.comparable()
        assert result.outcomes[3].comparable() == first_one.comparable()

    def test_one_and_true_are_distinct_classes(self):
        result = run_batch(get("algorithm-3")(9, 2), [1, True, 1, True], strict=True)
        assert result.stats.unique_runs == 2
        assert result.stats.replicated_runs == 2

    def test_one_and_true_keep_their_types_through_the_kernel(self):
        # Phase King decides the transmitter's raw value, so 1-vs-True
        # confusion in the kernel's value table would be visible here.
        result = run_batch(PhaseKing(9, 2), [1, True], strict=True)
        assert result.stats.kernel_runs == 2
        assert repr(dict(result.outcomes[0].decisions)[1]) == "1"
        assert repr(dict(result.outcomes[1].decisions)[1]) == "True"

    def test_uninternable_values_fall_back_to_singletons(self):
        # complex is not internable: equal cases still run separately.
        result = run_batch(PhaseKing(5, 1), [1j, 1j, 0])
        assert result.stats.unique_runs == 3
        assert result.stats.replicated_runs == 0
        assert dict(result.outcomes[0].decisions)[2] == 1j

    def test_adversary_cases_never_dedupe(self):
        def adversary(algorithm):
            return RandomizedAdversary([1], seed=7)

        case = BatchCase(value=1, adversary_name="rand", adversary_factory=adversary)
        result = run_batch(DolevStrong(5, 1), [case, case], strict=True)
        assert result.stats.unique_runs == 2
        assert result.stats.scalar_runs == 2
        assert result.stats.replicated_runs == 0

    def test_fault_plan_cases_dedupe_and_match_scalar(self):
        plan = FaultPlan(faults=(CrashFault(pid=1, phase=1),))
        cases = [BatchCase(value=1, fault_plan=plan)] * 3
        result = run_batch(DolevStrong(5, 1), cases, strict=True)
        assert result.stats.unique_runs == 1
        assert result.stats.replicated_runs == 2
        # The crash is visible in the outcome (fewer messages than clean).
        clean = run_batch(DolevStrong(5, 1), [1]).outcomes[0]
        assert result.outcomes[0].messages_by_correct < clean.messages_by_correct

    def test_value_domain_is_validated_upfront(self):
        with pytest.raises(ConfigurationError, match="values in"):
            run_batch(get("algorithm-3")(9, 2), [0, 2])


class TestKernels:
    @pytest.mark.parametrize("name,n,t", [("phase-king", 9, 2), ("oral-messages", 7, 2)])
    def test_kernel_matches_scalar_runner(self, name, n, t):
        result = run_batch(get(name)(n, t), [0, 1, 1, 0], strict=True)
        assert result.stats.kernel_runs == 2
        assert result.stats.scalar_runs == 0
        assert all(o.kernel for o in result.outcomes)
        assert all(o.agreement_ok for o in result.outcomes)

    def test_kernel_registered_for_known_algorithms(self):
        assert batch_kernel_for("phase-king") is not None
        assert batch_kernel_for("oral-messages") is not None
        assert batch_kernel_for("dolev-strong") is None

    def test_kernel_declines_subclasses(self):
        class TweakedPhaseKing(PhaseKing):
            pass

        kernel = batch_kernel_for("phase-king")
        assert kernel(TweakedPhaseKing(9, 2), [0, 1]) is None

    def test_kernel_declines_none_values(self):
        kernel = batch_kernel_for("phase-king")
        assert kernel(PhaseKing(9, 2), [0, None]) is None

    def test_kernel_decline_falls_back_to_scalar(self, monkeypatch):
        from repro.core import batch as batch_module

        monkeypatch.setitem(
            batch_module._KERNELS, "phase-king", lambda algorithm, values: None
        )
        result = run_batch(PhaseKing(9, 2), [0, 1, 0], strict=True)
        assert result.stats.kernel_runs == 0
        assert result.stats.scalar_runs == 2

    def test_strict_mode_catches_a_lying_kernel(self, monkeypatch):
        from repro.core import batch as batch_module

        real = batch_module._KERNELS["phase-king"]

        def lying(algorithm, values):
            outcomes = real(algorithm, values)
            return [
                dataclasses.replace(o, messages_by_correct=o.messages_by_correct + 1)
                for o in outcomes
            ]

        monkeypatch.setitem(batch_module._KERNELS, "phase-king", lying)
        with pytest.raises(BatchEquivalenceError, match="messages_by_correct"):
            run_batch(PhaseKing(9, 2), [0, 1], strict=True)

    def test_oral_messages_kernel_message_counts_hit_the_bound(self):
        algorithm = OralMessages(7, 2)
        outcome = run_batch(algorithm, [1]).outcomes[0]
        assert outcome.kernel
        assert outcome.messages_by_correct == algorithm.upper_bound_messages()

    def test_value_table_orders_by_repr_and_tags_types(self):
        table, indices, default_index = kernel_value_table([1, True, 0], 0)
        assert table == [0, 1, True]
        assert indices == [1, 2, 0]
        assert default_index == 0
        with pytest.raises(UninternableError):
            kernel_value_table([object()], 0)


class TestSharedDigestTable:
    def test_digests_match_the_plain_service(self):
        table = SharedDigestTable()
        plain = SignatureService()
        interned = InternedSignatureService(table)
        payload = ("chain-link", 1, ())
        key_a = plain.key_for(0)
        key_b = interned.key_for(0)
        assert plain.sign(key_a, payload).digest == interned.sign(key_b, payload).digest

    def test_table_hits_accumulate_across_services(self):
        table = SharedDigestTable()
        payload = ("chain-link", 1, ())
        for _ in range(3):
            service = InternedSignatureService(table)
            service.sign(service.key_for(0), payload)
        assert table.hits == 2
        assert table.misses == 1
        assert table.hit_rate == pytest.approx(2 / 3)

    def test_uninternable_payloads_still_digest(self):
        table = SharedDigestTable()
        service = InternedSignatureService(table)
        signature = service.sign(service.key_for(0), (1, 2, 3))
        assert service.verify(signature, (1, 2, 3))


class TestChainVerdictCache:
    def test_issued_signatures_stay_per_run(self):
        # A chain signed under one run's service must not verify in another
        # run, even though both share the digest table.
        table = SharedDigestTable()
        run_one = InternedSignatureService(table)
        keys = {pid: run_one.key_for(pid) for pid in range(3)}
        chain = SignatureChain.initial(1, keys[0], run_one)
        chain = chain.extend(keys[1], run_one)
        assert chain.verify(run_one)
        run_two = InternedSignatureService(table)
        assert not chain.verify(run_two)

    def test_cached_verdict_answers_repeat_verifications(self):
        table = SharedDigestTable()
        service = InternedSignatureService(table)
        keys = {pid: service.key_for(pid) for pid in range(3)}
        chain = SignatureChain.initial(1, keys[0], service).extend(keys[1], service)
        assert chain.verify(service)
        hits_before = service.digest_memo_hits + table.hits
        assert chain.verify(service)  # cached: no further digest work
        assert service.digest_memo_hits + table.hits == hits_before

    def test_forged_chains_are_rejected_despite_the_cache(self):
        table = SharedDigestTable()
        service = InternedSignatureService(table)
        keys = {0: service.key_for(0)}
        # An equal-valued *valid* chain first, to prime the cache with a
        # True verdict for a different signature tuple.
        valid = SignatureChain.initial(1, keys[0], service)
        assert valid.verify(service)
        forged = forge_chain(1, (0, 1), keys, service)
        assert not forged.verify(service)
        assert not forged.verify(service)  # still False on the second ask

    def test_false_verdicts_may_flip_to_true_after_signing(self):
        # Only True verdicts are cached: a chain that failed because the
        # signature was not yet issued must verify once it is.
        service = InternedSignatureService(SharedDigestTable())
        key = service.key_for(0)
        probe = SignatureChain.initial(1, key, service)
        impostor = SignatureChain(5, probe.signatures)
        assert not impostor.verify(service)
        real = SignatureChain.initial(5, key, service)
        assert real.verify(service)

    def test_default_service_does_not_cache(self):
        assert SignatureService.caches_chain_verdicts is False
        assert InternedSignatureService.caches_chain_verdicts is True


class TestFactories:
    def test_factory_argument_builds_one_arena(self):
        result = run_batch(lambda: DolevStrong(5, 1), [0, 1, 0], strict=True)
        assert result.stats.runs == 3
        assert result.stats.unique_runs == 2

    def test_digest_table_can_be_shared_across_batches(self):
        table = SharedDigestTable()
        run_batch(DolevStrong(5, 1), [0, 1], table=table)
        first_misses = table.misses
        run_batch(DolevStrong(5, 1), [0, 1], table=table)
        # The second batch re-uses the first batch's digests.
        assert table.misses == first_misses
