"""Tests for the BA condition checker (repro.core.validation)."""

import pytest

from repro.core.errors import ValidationError
from repro.core.history import History
from repro.core.metrics import MetricsLedger
from repro.core.runner import RunResult
from repro.core.validation import check_byzantine_agreement, require_agreement


def make_result(
    decisions: dict[int, object],
    *,
    n: int = 4,
    faulty: frozenset[int] = frozenset(),
    input_value=1,
) -> RunResult:
    return RunResult(
        algorithm_name="stub",
        n=n,
        t=1,
        transmitter=0,
        input_value=input_value,
        correct=frozenset(range(n)) - faulty,
        faulty=faulty,
        decisions=decisions,
        metrics=MetricsLedger(),
        history=History.with_input(0, input_value),
    )


class TestAgreementCondition:
    def test_unanimous_is_ok(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: 1, 2: 1, 3: 1}))
        assert report.ok and report.agreement and report.validity

    def test_split_decisions_violate_agreement(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: 1, 2: 0, 3: 1}))
        assert not report.agreement
        assert any("agreement" in v for v in report.violations)

    def test_undecided_processor_flagged(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: None, 2: 1, 3: 1}))
        assert not report.all_decided
        assert not report.ok


class TestValidityCondition:
    def test_correct_transmitter_imposes_its_value(self):
        report = check_byzantine_agreement(make_result({0: 0, 1: 0, 2: 0, 3: 0}))
        assert not report.validity  # input was 1

    def test_faulty_transmitter_lifts_validity(self):
        result = make_result({1: 0, 2: 0, 3: 0}, faulty=frozenset({0}))
        report = check_byzantine_agreement(result)
        assert report.validity and report.ok

    def test_validity_naming_is_informative(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: 0, 2: 0, 3: 0}))
        assert any("validity" in v for v in report.violations)


class TestRequireAgreement:
    def test_passes_silently_when_ok(self):
        require_agreement(make_result({0: 1, 1: 1, 2: 1, 3: 1}))

    def test_raises_with_details(self):
        with pytest.raises(ValidationError, match="agreement"):
            require_agreement(make_result({0: 1, 1: 0, 2: 1, 3: 1}))


class TestReportRendering:
    def test_ok_report_str(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: 1, 2: 1, 3: 1}))
        assert "holds" in str(report)

    def test_violation_report_str_lists_everything(self):
        report = check_byzantine_agreement(make_result({0: 1, 1: 0, 2: None, 3: 1}))
        text = str(report)
        assert "agreement" in text and "never decided" in text
