"""Tests for repro.core.types."""

import pytest

from repro.core.types import (
    BINARY_VALUES,
    INPUT_SOURCE,
    TRANSMITTER,
    all_processors,
    check_population,
    check_processor_id,
    other_processors,
)


class TestCheckPopulation:
    def test_accepts_valid_configurations(self):
        check_population(1, 0)
        check_population(4, 1)
        check_population(100, 99)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError, match="at least one"):
            check_population(0, 0)

    def test_rejects_negative_fault_bound(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_population(5, -1)

    def test_rejects_fault_bound_equal_to_n(self):
        with pytest.raises(ValueError, match="smaller than"):
            check_population(5, 5)

    def test_rejects_fault_bound_above_n(self):
        with pytest.raises(ValueError):
            check_population(3, 7)


class TestCheckProcessorId:
    def test_accepts_boundary_ids(self):
        check_processor_id(0, 5)
        check_processor_id(4, 5)

    @pytest.mark.parametrize("pid", [-1, 5, 100])
    def test_rejects_out_of_range(self, pid):
        with pytest.raises(ValueError, match="out of range"):
            check_processor_id(pid, 5)


class TestConstants:
    def test_transmitter_is_processor_zero(self):
        assert TRANSMITTER == 0

    def test_input_source_is_not_a_processor(self):
        assert INPUT_SOURCE < 0

    def test_binary_value_domain(self):
        assert BINARY_VALUES == (0, 1)


class TestEnumerations:
    def test_all_processors(self):
        assert list(all_processors(3)) == [0, 1, 2]

    def test_other_processors_excludes_self(self):
        assert other_processors(4, 2) == [0, 1, 3]

    def test_other_processors_of_singleton_system(self):
        assert other_processors(1, 0) == []
