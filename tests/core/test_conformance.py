"""Tests for the Section 2 correctness predicate (repro.core.conformance)."""

import pytest

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    SelectiveSilenceAdversary,
    SilentAdversary,
    SimulatingAdversary,
)
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages
from repro.core.conformance import (
    behaviourally_faulty,
    check_conformance,
    conformance_of,
)
from repro.core.errors import ConfigurationError
from repro.core.runner import run


class TestCorrectProcessorsConform:
    """Self-check: the runner's correct processors must be correct-in-H."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DolevStrong(6, 2),
            lambda: OralMessages(7, 2),
            lambda: Algorithm1(7, 3),
            lambda: Algorithm2(5, 2),
            lambda: Algorithm3(14, 2, s=3),
        ],
        ids=["ds", "om", "a1", "a2", "a3"],
    )
    @pytest.mark.parametrize("value", [0, 1])
    def test_fault_free_everyone_conforms(self, factory, value):
        algorithm = factory()
        result = run(algorithm, value)
        verdicts = check_conformance(result, factory())
        for pid, verdict in verdicts.items():
            assert verdict.correct_in_history, (pid, verdict.deviations)

    def test_correct_processors_conform_despite_faulty_peers(self):
        algorithm = DolevStrong(7, 2)
        result = run(algorithm, 1, GarbageAdversary([1, 5]))
        verdicts = check_conformance(result, DolevStrong(7, 2))
        for pid in result.correct:
            assert verdicts[pid].correct_in_history, pid


class TestFaultLocalisation:
    def test_silent_processor_deviates_when_it_should_speak(self):
        algorithm = DolevStrong(6, 2)
        result = run(algorithm, 1, SilentAdversary([2]))
        verdict = conformance_of(result, DolevStrong(6, 2), 2)
        assert not verdict.correct_in_history
        # in Dolev-Strong, 2's duty was the phase-2 relay.
        assert verdict.first_deviation_phase == 2
        assert verdict.deviations[0].missing

    def test_crash_deviation_phase_matches_crash(self):
        algorithm = Algorithm1(7, 3)
        result = run(algorithm, 1, CrashAdversary({1: 2}))
        verdict = conformance_of(result, Algorithm1(7, 3), 1)
        assert verdict.first_deviation_phase == 2

    def test_selective_silence_shows_missing_sends_only(self):
        algorithm = DolevStrong(6, 2)
        result = run(algorithm, 1, SelectiveSilenceAdversary([2], muted=[4]))
        verdict = conformance_of(result, DolevStrong(6, 2), 2)
        assert not verdict.correct_in_history
        deviation = verdict.deviations[0]
        assert deviation.missing and not deviation.extra

    def test_garbage_shows_extra_sends(self):
        algorithm = DolevStrong(6, 2)
        result = run(algorithm, 1, GarbageAdversary([2]))
        verdict = conformance_of(result, DolevStrong(6, 2), 2)
        assert any(d.extra for d in verdict.deviations)

    def test_equivocating_transmitter_is_behaviourally_faulty(self):
        algorithm = DolevStrong(6, 1)
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 6)})
        result = run(algorithm, 0, adversary)
        assert 0 in behaviourally_faulty(result, DolevStrong(6, 1))


class TestBehaviouralCorrectness:
    """The paper's point: correctness is about behaviour, not allegiance."""

    def test_identity_simulated_faulty_are_correct_in_history(self):
        algorithm = DolevStrong(7, 2)
        result = run(algorithm, 1, SimulatingAdversary([2, 3]))
        assert behaviourally_faulty(result, DolevStrong(7, 2)) == frozenset()

    def test_behavioural_set_is_subset_of_corrupted_set(self):
        """Corrupting a processor does not make it incorrect-in-H until it
        actually deviates: 1 crashes before its phase-2 relay duty and is
        caught; 4's crash phase lies beyond the run, and a late-crash 2
        whose only duty already passed stays correct-in-H."""
        algorithm = Algorithm1(7, 3)
        result = run(algorithm, 1, CrashAdversary({1: 2, 2: 3, 4: 99}))
        behavioural = behaviourally_faulty(result, Algorithm1(7, 3))
        assert behavioural <= result.faulty
        # 1 missed its relay; 2 relayed at phase 2 and owed nothing more;
        # 4 never reached its crash phase.
        assert behavioural == frozenset({1})


class TestPreconditions:
    def test_requires_recorded_history(self):
        algorithm = DolevStrong(5, 1)
        result = run(algorithm, 1, record_history=False)
        with pytest.raises(ConfigurationError, match="history"):
            check_conformance(result, DolevStrong(5, 1))

    def test_deviation_description(self):
        algorithm = DolevStrong(6, 2)
        result = run(algorithm, 1, SilentAdversary([2]))
        verdict = conformance_of(result, DolevStrong(6, 2), 2)
        assert "phase 2" in verdict.deviations[0].describe()
