"""Equivalence of the optimized inbox routing against the sorted reference.

The runner's merge-based delivery (``delivery="merged"``, the default)
must be observationally identical to the straightforward per-inbox sort it
replaced (``delivery="sorted"``): same inboxes, hence same decisions, same
:class:`~repro.core.history.History` and same
:class:`~repro.core.metrics.MetricsLedger`.  The adversaries here are the
ones that stress source ordering hardest: a replay adversary re-sending
recorded traffic (arbitrary source interleavings), the two-faced
equivocating transmitter, and a scripted adversary that deliberately emits
its sends in descending source order.
"""

import pytest

from repro.adversary.lowerbound import ReplayAdversary, build_split_plan
from repro.adversary.standard import EquivocatingTransmitter, ScriptedAdversary
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope
from repro.core.runner import _merge_by_src, _route_merged, _route_sorted, run


def assert_equivalent(algorithm_factory, value, adversary_factory):
    """Run the same scenario under both delivery strategies and compare
    everything observable."""
    merged = run(algorithm_factory(), value, adversary_factory(), delivery="merged")
    reference = run(algorithm_factory(), value, adversary_factory(), delivery="sorted")
    assert merged.decisions == reference.decisions
    assert merged.history == reference.history
    assert merged.metrics == reference.metrics
    return merged, reference


class TestDeliveryEquivalence:
    def test_fault_free(self):
        assert_equivalent(lambda: DolevStrong(6, 2), 1, lambda: None)

    def test_replay_adversary(self):
        """Theorem 1's splitting replay: faulty traffic recorded from two
        source histories, re-sent phase by phase."""
        result_h = run(DolevStrong(6, 1), 1)
        result_g = run(DolevStrong(6, 1), 0)
        plan = build_split_plan(
            result_h.history, result_g.history, target=2, faulty=frozenset({0})
        )
        assert_equivalent(
            lambda: DolevStrong(6, 1),
            1,
            lambda: ReplayAdversary(frozenset({0}), plan),
        )

    def test_two_faced_transmitter(self):
        def adversary():
            return EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 6)})

        assert_equivalent(lambda: DolevStrong(6, 1), 1, adversary)

    def test_two_faced_transmitter_unauthenticated(self):
        def adversary():
            return EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 7)})

        assert_equivalent(lambda: OralMessages(7, 2), 1, adversary)

    def test_scripted_descending_sources(self):
        """Adversary sends arrive in descending src order — the stress case
        for the merge (the reference sort must agree)."""

        def script(view, env):
            return [
                (src, dst, ("noise", view.phase, src))
                for src in (4, 3)
                for dst in (0, 1, 2)
            ]

        assert_equivalent(
            lambda: DolevStrong(5, 2),
            1,
            lambda: ScriptedAdversary([3, 4], script),
        )

    def test_unknown_delivery_rejected(self):
        with pytest.raises(ConfigurationError, match="delivery"):
            run(DolevStrong(4, 1), 1, delivery="bogus")


class TestFuzzScriptEquivalence:
    """Generated adversary scripts through both delivery modes.

    The fuzzer composes every mutation primitive (drops, garbling, replays,
    forged chains, equivocation), producing far messier source interleavings
    than the hand-written adversaries above — each seed is a fresh stress
    case for the merge-vs-sort equivalence."""

    @pytest.mark.parametrize("seed", [1, 7, 23, 41, 97, 131])
    def test_generated_scripts_dolev_strong(self, seed):
        from repro.fuzz.generator import generate_script

        factory = lambda: DolevStrong(6, 2)  # noqa: E731
        num_phases = factory().num_phases()
        script = generate_script(seed, n=6, t=2, num_phases=num_phases)
        assert_equivalent(factory, seed % 2, script.build)

    @pytest.mark.parametrize("seed", [3, 11, 59, 101])
    def test_generated_scripts_oral_messages(self, seed):
        from repro.fuzz.generator import generate_script

        factory = lambda: OralMessages(7, 2)  # noqa: E731
        num_phases = factory().num_phases()
        script = generate_script(seed, n=7, t=2, num_phases=num_phases)
        assert_equivalent(factory, 1, script.build)


class TestRoutingHelpers:
    def envelope(self, src, dst, phase=1, payload="x"):
        return Envelope(src=src, dst=dst, phase=phase, payload=payload)

    def test_merge_by_src_interleaves(self):
        base = [self.envelope(0, 9), self.envelope(2, 9), self.envelope(5, 9)]
        extra = [self.envelope(1, 9), self.envelope(3, 9), self.envelope(6, 9)]
        merged = _merge_by_src(base, extra)
        assert [e.src for e in merged] == [0, 1, 2, 3, 5, 6]

    def test_merge_preserves_same_source_order(self):
        first = self.envelope(1, 9, payload="first")
        second = self.envelope(1, 9, payload="second")
        merged = _merge_by_src([], [first, second])
        assert [e.payload for e in merged] == ["first", "second"]

    def test_routes_agree_on_mixed_traffic(self):
        # correct senders 0..2 (ascending per dst), adversary sends shuffled
        sent = [
            self.envelope(0, 1),
            self.envelope(0, 2),
            self.envelope(1, 2),
            self.envelope(2, 1),
            # adversary tail, deliberately out of order:
            self.envelope(4, 1, payload="a"),
            self.envelope(3, 1),
            self.envelope(4, 1, payload="b"),
            self.envelope(3, 2),
        ]
        merged = _route_merged(sent, correct_count=4)
        reference = _route_sorted(sent)
        assert merged == reference
        # stable within the same adversary source:
        assert [e.payload for e in merged[1] if e.src == 4] == ["a", "b"]

    def test_route_merged_pure_adversary_inbox(self):
        sent = [self.envelope(3, 0), self.envelope(2, 0)]
        assert _route_merged(sent, correct_count=0) == _route_sorted(sent)
