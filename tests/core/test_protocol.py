"""Tests for contexts and the algorithm base class (repro.core.protocol)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.crypto.signatures import SignatureService
from tests.conftest import make_context


class TestContext:
    def test_sign_and_verify_roundtrip(self):
        ctx = make_context(pid=2)
        signature = ctx.sign("payload")
        assert signature.signer == 2
        assert ctx.verify(signature, "payload")

    def test_verify_other_processors_signatures(self):
        service = SignatureService()
        alice = make_context(pid=1, service=service)
        bob = make_context(pid=2, service=service)
        signature = alice.sign("hello")
        assert bob.verify(signature, "hello")

    def test_verify_rejects_wrong_payload(self):
        ctx = make_context()
        signature = ctx.sign("a")
        assert not ctx.verify(signature, "b")

    def test_others_excludes_self(self):
        ctx = make_context(pid=1, n=4)
        assert ctx.others() == [0, 2, 3]


class MinimalAlgorithm(AgreementAlgorithm):
    name = "minimal"

    def num_phases(self) -> int:
        return 1

    def make_processor(self, pid):  # pragma: no cover - never run
        raise NotImplementedError


class TestAgreementAlgorithmBase:
    def test_population_validated(self):
        with pytest.raises(ValueError):
            MinimalAlgorithm(3, 3)

    def test_transmitter_fixed_at_zero(self):
        with pytest.raises(ConfigurationError, match="transmitter"):
            MinimalAlgorithm(5, 1, transmitter=2)

    def test_describe_contains_bounds(self):
        desc = MinimalAlgorithm(5, 1).describe()
        assert desc["name"] == "minimal"
        assert desc["n"] == 5 and desc["t"] == 1
        assert desc["phases"] == 1
        assert "message_bound" in desc and "signature_bound" in desc

    def test_default_bounds_are_none(self):
        algorithm = MinimalAlgorithm(5, 1)
        assert algorithm.upper_bound_messages() is None
        assert algorithm.upper_bound_signatures() is None


class TestProcessorDefaults:
    def test_on_final_default_is_noop(self):
        class Simple(Processor):
            def on_phase(self, phase, inbox):
                return []

            def decision(self):
                return None

        processor = Simple()
        processor.bind(make_context())
        processor.on_final(())  # must not raise

    def test_on_bind_hook_called(self):
        calls = []

        class Hooked(Processor):
            def on_bind(self):
                calls.append(self.ctx.pid)

            def on_phase(self, phase, inbox):
                return []

            def decision(self):
                return None

        Hooked().bind(make_context(pid=3))
        assert calls == [3]
