"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; a refactor that breaks
them must fail the suite.  Each runs in-process (fast) with stdout
captured and a few key phrases checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Fault-free run" in out
        assert "correct processors still agree on: 1" in out

    def test_lower_bound_attack(self, capsys):
        out = run_example("lower_bound_attack.py", [], capsys)
        assert "agreement violated: True" in out
        assert "no processor is splittable" in out
        assert "not starvable" in out

    def test_tradeoff_exploration(self, capsys):
        out = run_example("tradeoff_exploration.py", ["60", "2"], capsys)
        assert "Phases vs messages at n=60, t=2" in out
        assert "algorithm-5" in out and "active-set" in out

    def test_fault_forensics(self, capsys):
        out = run_example("fault_forensics.py", [], capsys)
        assert "behaviourally faulty: [2, 5]" in out
        assert "corrupted, but behaved" in out
        assert "DEVIATES" in out

    def test_cluster_broadcast(self, capsys):
        out = run_example("cluster_broadcast.py", [], capsys)
        assert "Byzantine Agreement holds" in out
        assert "cluster decision" in out
        assert "committed epoch     : 7" in out
        assert "verifiable by an outsider with the public keys alone: True" in out
