"""Tests for the registry-oracle signature scheme."""

import pytest

from repro.core.errors import ForgeryError
from repro.crypto.signatures import Signature, SignatureService, SigningKey


class TestSigning:
    def test_sign_verify_roundtrip(self, service):
        key = service.key_for(3)
        signature = service.sign(key, ("msg", 1))
        assert signature.signer == 3
        assert service.verify(signature, ("msg", 1))

    def test_verify_rejects_other_payload(self, service):
        key = service.key_for(0)
        signature = service.sign(key, "a")
        assert not service.verify(signature, "b")

    def test_same_key_returned_per_processor(self, service):
        assert service.key_for(1) is service.key_for(1)

    def test_sign_operations_counted(self, service):
        key = service.key_for(0)
        service.sign(key, "x")
        service.sign(key, "y")
        assert service.sign_operations == 2


class TestUnforgeability:
    def test_hand_built_key_rejected(self, service):
        fake = SigningKey(0, service)
        with pytest.raises(ForgeryError):
            service.sign(fake, "anything")

    def test_key_from_other_service_rejected(self, service):
        other = SignatureService()
        foreign_key = other.key_for(0)
        with pytest.raises(ForgeryError):
            service.sign(foreign_key, "anything")

    def test_forge_produces_non_verifying_signature(self, service):
        fake = service.forge(5, "payload")
        assert fake.signer == 5
        assert not service.verify(fake, "payload")

    def test_hand_built_signature_object_rejected(self, service):
        # Signature is plain data — building one names a signer but does
        # not make it valid.
        from repro.core.message import payload_digest

        fake = Signature(signer=2, digest=payload_digest("x"))
        assert not service.verify(fake, "x")

    def test_signature_valid_only_within_its_service(self, service):
        other = SignatureService()
        signature = service.sign(service.key_for(0), "x")
        assert not other.verify(signature, "x")


class TestEndorse:
    def test_endorse_registers_a_raw_digest(self, service):
        from repro.core.message import payload_digest

        digest = payload_digest(("anything", 42))
        signature = service.endorse(service.key_for(1), digest)
        assert service.verify(signature, ("anything", 42))

    def test_endorse_requires_the_real_key(self, service):
        with pytest.raises(ForgeryError):
            service.endorse(SigningKey(1, service), "00" * 8)

    def test_endorsed_signature_bound_to_digest(self, service):
        from repro.core.message import payload_digest

        signature = service.endorse(service.key_for(1), payload_digest("x"))
        assert not service.verify(signature, "y")


class TestSealing:
    """After ``seal()`` the registry stops minting keys: an adversary that
    reaches the shared service mid-run must not be able to acquire a
    *correct* processor's signing capability (the forge-attempt hole the
    fuzzer's :class:`~repro.fuzz.mutations.ForgeAttempt` probes)."""

    def test_sealed_key_for_raises_typed_error(self, service):
        service.key_for(0)
        service.seal()
        with pytest.raises(ForgeryError):
            service.key_for(1)

    def test_seal_is_idempotent(self, service):
        service.seal()
        service.seal()
        with pytest.raises(ForgeryError):
            service.key_for(0)

    def test_preminted_keys_still_sign_after_seal(self, service):
        key = service.key_for(4)
        service.seal()
        signature = service.sign(key, "late message")
        assert service.verify(signature, "late message")

    def test_forge_still_works_after_seal(self, service):
        # forge() needs no key — sealing must not break the tests and
        # adversaries that *attempt* forgeries to assert rejection.
        service.seal()
        fake = service.forge(2, "payload")
        assert not service.verify(fake, "payload")

    def test_clone_is_unsealed(self, service):
        # The conformance checker replays protocol logic against a clone
        # and needs fresh keys there.
        service.seal()
        clone = service.clone()
        key = clone.key_for(0)
        signature = clone.sign(key, "replayed")
        assert clone.verify(signature, "replayed")

    def test_runner_seals_the_run_service(self):
        from repro.algorithms.dolev_strong import DolevStrong
        from repro.core.runner import run

        result = run(DolevStrong(4, 1), 1)
        with pytest.raises(ForgeryError):
            result.service.key_for(0)

    def test_adversary_cannot_mint_correct_key_mid_run(self):
        # An adversary that tries key_for() on the shared service during the
        # phase loop gets ForgeryError, which the runner surfaces instead of
        # letting the forgery through.
        from repro.adversary.base import Adversary
        from repro.algorithms.dolev_strong import DolevStrong
        from repro.core.runner import run

        class KeyThief(Adversary):
            def on_phase(self, view):
                stolen = self.env.service.key_for(2)  # 2 is correct
                chain = self.env.service.sign(stolen, "forged")
                return [(1, 3, chain)]

        with pytest.raises(ForgeryError):
            run(DolevStrong(4, 1), 1, KeyThief([1]))


class TestDigestMemo:
    """The identity-keyed digest memo must be invisible behaviourally —
    same digests, same verdicts — and actually skip recomputation."""

    def test_memo_matches_payload_digest(self, service):
        from repro.core.message import payload_digest

        payload = ("relay", 3, ("inner", 1, 2))
        assert service._digest(payload) == payload_digest(payload)
        # second call hits the memo and must return the identical digest
        assert service._digest(payload) == payload_digest(payload)

    def test_repeated_verify_skips_canonical_walk(self, service, monkeypatch):
        import repro.crypto.signatures as signatures_module

        payload = ("forwarded", 1, 2, 3)
        signature = service.sign(service.key_for(0), payload)

        calls = {"count": 0}
        real = signatures_module.payload_digest

        def counting(p):
            calls["count"] += 1
            return real(p)

        monkeypatch.setattr(signatures_module, "payload_digest", counting)
        for _ in range(5):
            assert service.verify(signature, payload)
        # the same payload object was memoised at sign time: zero recomputes
        assert calls["count"] == 0

    def test_equal_but_distinct_objects_still_agree(self, service):
        first = ("msg", 1, ("a", "b"))
        second = ("msg", 1, ("a", "b"))
        key = service.key_for(2)
        signature = service.sign(key, first)
        assert service.verify(signature, second)

    def test_memo_works_for_unhashable_payloads(self, service):
        payload = ["list", {"k": 1}]
        key = service.key_for(0)
        signature = service.sign(key, payload)
        assert service.verify(signature, payload)
        assert service.verify(signature, ["list", {"k": 1}])

    def test_memo_is_bounded(self, service):
        service._DIGEST_MEMO_MAX = 4  # shrink the backstop for the test
        for i in range(20):
            service._digest(("payload", i))
        assert len(service._digest_memo) <= 4

    def test_clone_does_not_share_memo(self, service):
        payload = ("p", 1)
        service.sign(service.key_for(0), payload)
        clone = service.clone()
        assert clone._digest_memo == {}
        # but issued signatures still verify in the clone
        signature = Signature(signer=0, digest=service._digest(payload))
        assert clone.verify(signature, payload)
