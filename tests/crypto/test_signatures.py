"""Tests for the registry-oracle signature scheme."""

import pytest

from repro.core.errors import ForgeryError
from repro.crypto.signatures import Signature, SignatureService, SigningKey


class TestSigning:
    def test_sign_verify_roundtrip(self, service):
        key = service.key_for(3)
        signature = service.sign(key, ("msg", 1))
        assert signature.signer == 3
        assert service.verify(signature, ("msg", 1))

    def test_verify_rejects_other_payload(self, service):
        key = service.key_for(0)
        signature = service.sign(key, "a")
        assert not service.verify(signature, "b")

    def test_same_key_returned_per_processor(self, service):
        assert service.key_for(1) is service.key_for(1)

    def test_sign_operations_counted(self, service):
        key = service.key_for(0)
        service.sign(key, "x")
        service.sign(key, "y")
        assert service.sign_operations == 2


class TestUnforgeability:
    def test_hand_built_key_rejected(self, service):
        fake = SigningKey(0, service)
        with pytest.raises(ForgeryError):
            service.sign(fake, "anything")

    def test_key_from_other_service_rejected(self, service):
        other = SignatureService()
        foreign_key = other.key_for(0)
        with pytest.raises(ForgeryError):
            service.sign(foreign_key, "anything")

    def test_forge_produces_non_verifying_signature(self, service):
        fake = service.forge(5, "payload")
        assert fake.signer == 5
        assert not service.verify(fake, "payload")

    def test_hand_built_signature_object_rejected(self, service):
        # Signature is plain data — building one names a signer but does
        # not make it valid.
        from repro.core.message import payload_digest

        fake = Signature(signer=2, digest=payload_digest("x"))
        assert not service.verify(fake, "x")

    def test_signature_valid_only_within_its_service(self, service):
        other = SignatureService()
        signature = service.sign(service.key_for(0), "x")
        assert not other.verify(signature, "x")


class TestEndorse:
    def test_endorse_registers_a_raw_digest(self, service):
        from repro.core.message import payload_digest

        digest = payload_digest(("anything", 42))
        signature = service.endorse(service.key_for(1), digest)
        assert service.verify(signature, ("anything", 42))

    def test_endorse_requires_the_real_key(self, service):
        with pytest.raises(ForgeryError):
            service.endorse(SigningKey(1, service), "00" * 8)

    def test_endorsed_signature_bound_to_digest(self, service):
        from repro.core.message import payload_digest

        signature = service.endorse(service.key_for(1), payload_digest("x"))
        assert not service.verify(signature, "y")
