"""Tests for multi-signature chains."""

from repro.crypto.chains import SignatureChain, chain_body, forge_chain
from repro.crypto.signatures import SignatureService


def build(service: SignatureService, signers: list[int], value=1) -> SignatureChain:
    chain = SignatureChain(value)
    for pid in signers:
        chain = chain.extend(service.key_for(pid), service)
    return chain


class TestConstruction:
    def test_initial_has_one_signature(self, service):
        chain = SignatureChain.initial("v", service.key_for(0), service)
        assert len(chain) == 1
        assert chain.signers == (0,)
        assert chain.value == "v"

    def test_extend_appends_in_order(self, service):
        chain = build(service, [0, 1, 2])
        assert chain.signers == (0, 1, 2)

    def test_extend_is_persistent(self, service):
        base = build(service, [0])
        extended = base.extend(service.key_for(1), service)
        assert len(base) == 1 and len(extended) == 2

    def test_has_signed(self, service):
        chain = build(service, [0, 2])
        assert chain.has_signed(0) and chain.has_signed(2)
        assert not chain.has_signed(1)


class TestVerification:
    def test_valid_chain_verifies(self, service):
        assert build(service, [0, 1, 2]).verify(service)

    def test_empty_chain_verifies_trivially(self, service):
        assert SignatureChain("v").verify(service)

    def test_value_tamper_detected(self, service):
        chain = build(service, [0, 1])
        tampered = SignatureChain("other", chain.signatures)
        assert not tampered.verify(service)

    def test_signature_removal_detected(self, service):
        chain = build(service, [0, 1, 2])
        spliced = SignatureChain(chain.value, chain.signatures[:1] + chain.signatures[2:])
        assert not spliced.verify(service)

    def test_signature_reorder_detected(self, service):
        chain = build(service, [0, 1])
        swapped = SignatureChain(chain.value, chain.signatures[::-1])
        assert not swapped.verify(service)

    def test_duplicate_signer_rejected_by_default(self, service):
        chain = build(service, [0, 1])
        duplicated = chain.extend(service.key_for(0), service)
        assert not duplicated.verify(service)
        assert duplicated.verify(service, distinct=False)

    def test_prefix_signers_restriction(self, service):
        chain = build(service, [0, 1])
        assert chain.verify_prefix_signers(service, {0, 1, 2})
        assert not chain.verify_prefix_signers(service, {0, 2})


class TestForgeChain:
    def test_full_collusion_verifies(self, service):
        keys = {0: service.key_for(0), 1: service.key_for(1)}
        chain = forge_chain("v", (0, 1), keys, service)
        assert chain.verify(service)

    def test_missing_key_breaks_the_chain(self, service):
        keys = {1: service.key_for(1)}  # no key for 0
        chain = forge_chain("v", (0, 1), keys, service)
        assert not chain.verify(service)

    def test_chain_body_is_prefix_sensitive(self, service):
        chain = build(service, [0])
        assert chain_body("v", ()) != chain_body("v", chain.signatures)
