"""Tests for the closed-form bounds (repro.bounds.formulas)."""

from fractions import Fraction

import pytest

from repro.bounds import formulas


class TestLowerBounds:
    def test_theorem1_value(self):
        assert formulas.theorem1_signature_lower_bound(8, 3) == Fraction(8 * 4, 4)
        assert formulas.corollary1_message_lower_bound(8, 3) == Fraction(8)

    def test_theorem1_per_processor(self):
        assert formulas.theorem1_per_processor_exchange(3) == 4

    @pytest.mark.parametrize(
        "n,t,expected",
        [
            (9, 1, 4),  # max{4, 1·2} = 4
            (5, 4, 9),  # max{2, 3·3} = 9
            (100, 2, 50),  # linear term dominates
            (10, 6, 16),  # quadratic term: 4·4
        ],
    )
    def test_theorem2_value(self, n, t, expected):
        assert formulas.theorem2_message_lower_bound(n, t) == expected

    @pytest.mark.parametrize("t,b,ignore,per", [(1, 1, 1, 2), (2, 2, 1, 2), (3, 2, 2, 3), (4, 3, 2, 3)])
    def test_theorem2_construction_sizes(self, t, b, ignore, per):
        assert formulas.theorem2_b_set_size(t) == b
        assert formulas.theorem2_ignore_count(t) == ignore
        assert formulas.theorem2_per_b_member_messages(t) == per

    def test_b_set_fits_fault_budget(self):
        for t in range(1, 50):
            assert formulas.theorem2_b_set_size(t) <= t
            # the switch history corrupts B - 1 + ⌈t/2⌉ processors — also ≤ t.
            assert (
                formulas.theorem2_b_set_size(t) - 1 + formulas.theorem2_ignore_count(t)
                <= t
            )


class TestUpperBounds:
    def test_theorem3(self):
        assert formulas.theorem3_message_upper_bound(4) == 40
        assert formulas.theorem3_phases(4) == 6

    def test_theorem4(self):
        assert formulas.theorem4_message_upper_bound(4) == 100
        assert formulas.theorem4_phases(4) == 15

    def test_lemma1(self):
        assert formulas.lemma1_message_upper_bound(20, 2, 4) == 40 + 40 + 48
        assert formulas.lemma1_phases(2, 4) == 13

    def test_theorem5_is_lemma1_at_4t(self):
        assert formulas.theorem5_message_upper_bound(50, 2) == (
            formulas.lemma1_message_upper_bound(50, 2, 8)
        )

    def test_theorem6(self):
        assert formulas.theorem6_message_upper_bound(4) == 144

    def test_lemma2(self):
        assert formulas.lemma2_success_set_size(16, 3) == 10

    def test_lemma5_and_theorem7_scales(self):
        # t² + ⌈t^1.5⌉·(bit_length(s)+1) + ⌈nt/s⌉ = 9 + 6·3 + 100.
        assert formulas.lemma5_message_scale(100, 3, 3) == 9 + 18 + 100
        assert formulas.theorem7_message_scale(100, 3) == 109
        assert formulas.lemma5_phase_upper_bound(3, 3) == 23

    def test_our_phase_bound_close_to_papers(self):
        for t in (1, 2, 3):
            for s in (1, 3, 7, 15):
                ours = formulas.our_algorithm5_phase_bound(t, s)
                papers = formulas.lemma5_phase_upper_bound(t, s)
                assert ours <= papers + s.bit_length() + 4

    def test_alpha(self):
        assert formulas.smallest_alpha(1) == 9
        assert formulas.smallest_alpha(2) == 16
        assert formulas.smallest_alpha(4) == 25
        assert formulas.smallest_alpha(6) == 49

    def test_tradeoff(self):
        assert formulas.tradeoff_phases(8, 2) == 15
        assert formulas.tradeoff_message_scale(100, 2) == 200


class TestCrossRelations:
    def test_theorem7_matches_theorem2_shape(self):
        """The headline: the O(n + t²) upper bound meets the Ω(n + t²)
        lower bound — their ratio is bounded across the whole range."""
        ratios = []
        for n, t in [(10, 1), (50, 3), (200, 5), (1000, 10), (100, 7)]:
            upper = formulas.theorem7_message_scale(n, t)
            lower = formulas.theorem2_message_lower_bound(n, t)
            ratios.append(upper / lower)
        assert max(ratios) <= 8  # fixed constant, independent of n and t

    def test_signature_bound_exceeds_message_bound_for_large_t(self):
        # Ω(nt) signatures vs Ω(n + t²) messages: for t ≪ n signatures win.
        assert formulas.theorem1_signature_lower_bound(1000, 10) > (
            formulas.theorem2_message_lower_bound(1000, 10)
        )
