"""Tests for the executable Theorem 1 (signature lower bound)."""

import pytest

from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.theorem1 import (
    exchange_sets,
    signature_flows,
    theorem1_experiment,
)
from repro.core.runner import run


class TestSignatureFlows:
    def test_flows_extracted_from_history(self):
        result = run(DolevStrong(4, 1), 1)
        flows = signature_flows(result.history)
        # phase 1: the transmitter's signature reaches everyone.
        assert {(0, q) for q in (1, 2, 3)} <= flows

    def test_exchange_sets_are_symmetric(self):
        h = run(DolevStrong(5, 1), 0)
        g = run(DolevStrong(5, 1), 1)
        sets = exchange_sets(h.history, g.history, 5)
        for p, partners in sets.items():
            for q in partners:
                assert p in sets[q]


class TestCorrectAlgorithmsRespectTheBound:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DolevStrong(5, 1),
            lambda: DolevStrong(8, 3),
            lambda: ActiveSetBroadcast(12, 2),
            lambda: Algorithm1(5, 2),
            lambda: Algorithm1(9, 4),
            lambda: Algorithm2(7, 3),
            lambda: Algorithm3(20, 2, s=3),
        ],
        ids=["ds-5-1", "ds-8-3", "as-12-2", "a1-5-2", "a1-9-4", "a2-7-3", "a3-20-2"],
    )
    def test_no_weak_processor_and_budget_met(self, factory):
        report = theorem1_experiment(factory)
        assert not report.weak_processors
        assert report.min_exchange >= report.t + 1
        assert report.bound_respected
        assert report.attack is None


class TestStrawmanIsBroken:
    @pytest.mark.parametrize("n,t", [(4, 1), (6, 2), (8, 3)])
    def test_split_attack_succeeds(self, n, t):
        report = theorem1_experiment(lambda: UnderSigningBroadcast(n, t))
        assert report.algorithm_is_breakable
        attack = report.attack
        assert attack is not None
        # the proof's indistinguishability step holds exactly:
        assert attack.target_view_matches_h
        # the target decides H's value while the rest decide G's.
        assert attack.target_decision == 0
        assert set(attack.other_decisions.values()) == {1}
        assert attack.agreement_violated

    def test_faulty_set_is_within_budget(self):
        report = theorem1_experiment(lambda: UnderSigningBroadcast(6, 2))
        assert len(report.attack.faulty) <= 2

    def test_weak_processors_are_all_non_transmitters(self):
        report = theorem1_experiment(lambda: UnderSigningBroadcast(6, 2))
        assert report.weak_processors == list(range(1, 6))


class TestReportContents:
    def test_bound_is_n_t_plus_one_quarter(self):
        report = theorem1_experiment(lambda: DolevStrong(8, 3))
        assert float(report.bound) == 8 * 4 / 4

    def test_signature_totals_recorded(self):
        report = theorem1_experiment(lambda: DolevStrong(5, 1))
        h = run(DolevStrong(5, 1), 0)
        assert report.signatures_h == h.metrics.signatures_by_correct
