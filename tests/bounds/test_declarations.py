"""The declared-bound discipline, checked at runtime.

BA002 verifies the declarations statically; these tests verify they mean
what they say when an algorithm is actually configured and run: every
registered algorithm declares all three budgets, the expressions evaluate
with the instance's own parameters, and the evaluated numbers really do
bound fault-free executions.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import ALGORITHMS, STRAWMEN
from repro.bounds.expressions import SENTINELS
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement

ALL_INFOS = list(ALGORITHMS.values()) + list(STRAWMEN.values())


def configured(info):
    # Population constraints differ (Algorithm 1 wants n = 2t + 1 exactly,
    # Algorithm 5 wants n at least the smallest square above 6t, ...), so
    # probe small sizes at t = 2 and take the first the algorithm accepts.
    last_error = None
    for n in (5, 7, 9, 12, 16, 20, 25):
        try:
            return info(n, 2)
        except Exception as error:
            last_error = error
    raise AssertionError(f"no working population for {info.name}: {last_error}")


@pytest.mark.parametrize("info", ALL_INFOS, ids=lambda info: info.name)
def test_every_algorithm_declares_its_budgets(info):
    algorithm = configured(info)
    cls = type(algorithm)
    assert cls.phase_bound is not None, "phase_bound undeclared"
    assert cls.message_bound is not None, "message_bound undeclared"
    if cls.authenticated:
        assert cls.signature_bound is not None, "signature_bound undeclared"


@pytest.mark.parametrize("info", ALL_INFOS, ids=lambda info: info.name)
def test_declared_expressions_evaluate_for_the_instance(info):
    algorithm = configured(info)
    for declaration in (
        type(algorithm).phase_bound,
        type(algorithm).message_bound,
        type(algorithm).signature_bound,
    ):
        if declaration is None or declaration in SENTINELS:
            continue
        value = algorithm.declared_bound(declaration)
        assert isinstance(value, int) and value > 0


@pytest.mark.parametrize("info", ALL_INFOS, ids=lambda info: info.name)
def test_num_phases_within_declared_phase_bound(info):
    algorithm = configured(info)
    bound = algorithm.upper_bound_phases()
    if bound is not None:
        assert algorithm.num_phases() <= bound


@pytest.mark.parametrize(
    "info", list(ALGORITHMS.values()), ids=lambda info: info.name
)
def test_fault_free_run_within_declared_budgets(info):
    algorithm = configured(info)
    result = run(algorithm, 1, record_history=False)
    assert check_byzantine_agreement(result).ok
    message_bound = algorithm.upper_bound_messages()
    if message_bound is not None:
        assert result.metrics.messages_by_correct <= message_bound
    signature_bound = algorithm.upper_bound_signatures()
    if signature_bound is not None:
        assert result.metrics.signatures_by_correct <= signature_bound
