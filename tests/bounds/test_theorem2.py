"""Tests for the executable Theorem 2 (message lower bound)."""

import pytest

from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.formulas import theorem2_ignore_count
from repro.bounds.theorem2 import (
    empty_view_decision,
    pick_starved_value,
    sensitivity_set,
    theorem2_experiment,
)


class TestSensitivity:
    def test_empty_view_decision_is_the_default(self):
        assert empty_view_decision(DolevStrong(5, 1), 2) == 0
        assert empty_view_decision(Algorithm1(5, 2), 3) == 0

    def test_sensitivity_set_for_value_one_is_everyone(self):
        algorithm = DolevStrong(6, 2)
        assert sensitivity_set(algorithm, 1) == list(range(1, 6))

    def test_sensitivity_set_for_the_default_is_empty(self):
        algorithm = DolevStrong(6, 2)
        assert sensitivity_set(algorithm, 0) == []

    def test_pigeonhole_guarantee(self):
        """One of the two values always has |Q| ≥ ⌈(n−1)/2⌉."""
        for factory in (lambda: DolevStrong(7, 2), lambda: Algorithm1(5, 2)):
            algorithm = factory()
            _, q = pick_starved_value(algorithm)
            assert len(q) >= (algorithm.n - 1 + 1) // 2


class TestCorrectAlgorithmsRespectTheBound:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DolevStrong(8, 2),
            lambda: ActiveSetBroadcast(14, 2),
            lambda: Algorithm1(5, 2),
            lambda: Algorithm1(9, 4),
            lambda: Algorithm3(20, 2, s=3),
            lambda: Algorithm5(20, 2, s=3),
        ],
        ids=["ds", "as", "a1-small", "a1-large", "a3", "a5"],
    )
    def test_b_members_are_fed_enough(self, factory):
        report = theorem2_experiment(factory)
        assert report.min_received >= report.per_member_requirement
        assert not report.starvable
        assert report.hprime_agreement_ok
        assert report.attack is None

    def test_fault_free_messages_exceed_combined_bound(self):
        report = theorem2_experiment(lambda: Algorithm1(9, 4))
        assert report.fault_free_messages >= report.bound


class TestStrawmanIsBroken:
    @pytest.mark.parametrize("n,t", [(8, 2), (10, 3), (12, 4)])
    def test_switch_attack_succeeds(self, n, t):
        report = theorem2_experiment(lambda: UnderSigningBroadcast(n, t))
        assert report.starvable
        attack = report.attack
        assert attack is not None
        # the target saw literally nothing.
        assert attack.target_messages_received == 0
        assert attack.agreement_violated
        # the faulty set respects the budget: |B| - 1 + |A(p)| ≤ t.
        assert len(attack.faulty) <= t

    def test_t1_strawman_not_starvable_by_this_construction(self):
        """For t = 1 the ignore count is 1 and B = {one processor}: the
        strawman feeds it exactly 1 ≥ ⌈1 + t/2⌉ − 1 message... the switch
        precondition (received ≤ ⌈t/2⌉ = 1) still triggers."""
        report = theorem2_experiment(lambda: UnderSigningBroadcast(6, 1))
        assert report.min_received <= theorem2_ignore_count(1)
        assert report.attack is not None


class TestCustomBSet:
    def test_explicit_b_set_respected(self):
        report = theorem2_experiment(lambda: DolevStrong(8, 2), b_set=(3, 5))
        assert report.b_set == (3, 5)
        assert set(report.received_by_b) == {3, 5}
