"""Tests for the bound-verification harness."""

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.verification import (
    check_grid,
    check_scenario,
    check_signature_budget,
)


class TestCheckScenario:
    def test_fault_free_record(self):
        record = check_scenario(lambda: DolevStrong(6, 2), 1)
        assert record.ok
        assert record.algorithm == "dolev-strong"
        assert record.adversary == "fault-free"
        assert record.messages > 0
        assert record.within_upper_bound

    def test_adversarial_record(self):
        record = check_scenario(
            lambda: Algorithm1(5, 2),
            1,
            lambda alg: SilentAdversary([1]),
            adversary_name="silent-1",
        )
        assert record.ok and record.adversary == "silent-1"

    def test_phase_overrun_detected(self):
        record = check_scenario(lambda: DolevStrong(6, 2), 1)
        assert record.phases_used <= record.phases_configured


class TestCheckGrid:
    def test_grid_covers_product(self):
        records = check_grid(
            [lambda: DolevStrong(5, 1), lambda: Algorithm1(5, 2)],
            values=(0, 1),
            adversaries=(
                ("fault-free", lambda alg: None),
                ("silent-1", lambda alg: SilentAdversary([1])),
            ),
        )
        assert len(records) == 2 * 2 * 2
        assert all(r.ok for r in records), [r.violations for r in records if not r.ok]


class TestSignatureBudget:
    def test_correct_algorithm_passes(self):
        ok, reason = check_signature_budget(lambda: DolevStrong(6, 2))
        assert ok, reason

    def test_strawman_fails(self):
        from repro.algorithms.cheap_strawman import UnderSigningBroadcast

        ok, reason = check_signature_budget(lambda: UnderSigningBroadcast(6, 2))
        assert not ok
        assert "splittable" in reason
