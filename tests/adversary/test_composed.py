"""Tests for ComposedAdversary."""

import pytest

from repro.adversary.standard import (
    ComposedAdversary,
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    SilentAdversary,
)
from repro.algorithms.dolev_strong import DolevStrong
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestComposedAdversary:
    def test_faulty_set_is_the_union(self):
        composed = ComposedAdversary(
            [SilentAdversary([1]), GarbageAdversary([2, 3])]
        )
        assert composed.faulty == frozenset({1, 2, 3})

    def test_overlapping_parts_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            ComposedAdversary([SilentAdversary([1]), GarbageAdversary([1])])

    def test_empty_composition_is_fault_free(self):
        composed = ComposedAdversary([])
        result = run(DolevStrong(5, 1), 1, composed)
        assert check_byzantine_agreement(result).ok
        assert result.metrics.messages_by_faulty == 0

    def test_each_part_acts_with_its_own_strategy(self):
        composed = ComposedAdversary(
            [
                EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 8)}),
                SilentAdversary([3]),
                GarbageAdversary([5], forge=False),
            ]
        )
        result = run(DolevStrong(8, 3), 0, composed)
        assert check_byzantine_agreement(result).ok
        # the transmitter equivocated (sent something), 3 stayed silent,
        # 5 sprayed garbage at everyone every phase.
        sent = result.metrics.sent_per_processor
        assert sent[0] > 0
        assert sent[3] == 0
        assert sent[5] == 7 * DolevStrong(8, 3).num_phases()

    def test_agreement_under_mixed_faults(self):
        composed = ComposedAdversary(
            [CrashAdversary({1: 2}), GarbageAdversary([2])]
        )
        result = run(DolevStrong(8, 2), 1, composed)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1
