"""Tests for the stock adversaries (repro.adversary.standard)."""

from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    ScriptedAdversary,
    SelectiveSilenceAdversary,
    SilentAdversary,
    SimulatingAdversary,
)
from repro.algorithms.dolev_strong import DolevStrong
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestSimulatingAdversary:
    def test_identity_hooks_behave_correctly(self):
        """Faulty processors driven by unmodified protocol instances are
        behaviourally correct — agreement must look exactly fault-free."""
        baseline = run(DolevStrong(7, 2), 1)
        shadowed = run(DolevStrong(7, 2), 1, SimulatingAdversary([2, 5]))
        assert check_byzantine_agreement(shadowed).ok
        assert shadowed.unanimous_value() == 1
        # total traffic (correct + faulty) matches the fault-free run.
        assert (
            shadowed.metrics.total_messages == baseline.metrics.messages_by_correct
        )

    def test_simulated_accessor(self):
        adversary = SimulatingAdversary([1])
        run(DolevStrong(5, 1), 0, adversary)
        assert adversary.simulated(1) is not None


class TestCrashFamilies:
    def test_silent_processors_send_nothing(self):
        result = run(DolevStrong(7, 2), 1, SilentAdversary([1, 2]))
        assert result.metrics.messages_by_faulty == 0
        assert check_byzantine_agreement(result).ok

    def test_crash_phase_respected(self):
        adversary = CrashAdversary({1: 2})
        result = run(DolevStrong(7, 2), 1, adversary)
        faulty_phases = [
            phase
            for phase, count in result.metrics.messages_per_phase.items()
            if any(e.src == 1 for p in result.history.phases[phase:phase+1] for e in p.edges())
        ]
        # processor 1 relays at phase 2 in Dolev-Strong; crashed at 2 → nothing.
        assert result.metrics.messages_by_faulty == 0

    def test_crash_after_start_allows_early_sends(self):
        # crash the transmitter after phase 1: its broadcast still happens.
        adversary = CrashAdversary({0: 2})
        result = run(DolevStrong(5, 1), 1, adversary)
        assert result.metrics.messages_by_faulty == 4
        assert check_byzantine_agreement(result).ok


class TestSelectiveSilence:
    def test_muted_targets_receive_nothing_from_faulty(self):
        adversary = SelectiveSilenceAdversary([1], muted=[3])
        result = run(DolevStrong(7, 2), 1, adversary)
        got_from_1 = [
            edge
            for phase in result.history.phases
            for edge in phase.edges()
            if edge.src == 1 and edge.dst == 3
        ]
        assert got_from_1 == []
        assert check_byzantine_agreement(result).ok


class TestEquivocatingTransmitter:
    def test_destinations_see_assigned_values(self):
        adversary = EquivocatingTransmitter(0, {1: 0, 2: 1, 3: 0, 4: 1})
        result = run(DolevStrong(5, 1), 0, adversary)
        phase1 = result.history.phases[1]
        by_dst = {e.dst: e.label.value for e in phase1.edges() if e.src == 0}
        assert by_dst == {1: 0, 2: 1, 3: 0, 4: 1}

    def test_agreement_survives_equivocation(self):
        adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, 7)})
        result = run(DolevStrong(7, 1), 0, adversary)
        assert check_byzantine_agreement(result).ok


class TestScriptedAdversary:
    def test_script_controls_every_send(self):
        def script(view, env):
            if view.phase == 1:
                return [(1, 2, "custom")]
            return []

        result = run(DolevStrong(5, 1), 1, ScriptedAdversary([1], script))
        phase1_sends = [e for e in result.history.phases[1].edges() if e.src == 1]
        assert [(e.dst, e.label) for e in phase1_sends] == [(2, "custom")]


class TestGarbageAdversary:
    def test_forged_signatures_never_verify(self):
        adversary = GarbageAdversary([1])
        result = run(DolevStrong(7, 2), 1, adversary)
        assert check_byzantine_agreement(result).ok
        assert result.unanimous_value() == 1

    def test_garbage_floods_every_phase(self):
        adversary = GarbageAdversary([1], forge=False)
        result = run(DolevStrong(5, 1), 1, adversary)
        # n-1 targets × num_phases.
        assert result.metrics.messages_by_faulty == 4 * 2
