"""Tests for the lower-bound proof adversaries (repro.adversary.lowerbound)."""

import pytest

from repro.adversary.lowerbound import (
    IgnoreFirstAdversary,
    ReplayAdversary,
    Theorem2SwitchAdversary,
    build_split_plan,
)
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


class TestBuildSplitPlan:
    def test_routes_h_to_target_and_g_to_rest(self):
        result_h = run(DolevStrong(5, 1), 0)
        result_g = run(DolevStrong(5, 1), 1)
        plan = build_split_plan(
            result_h.history, result_g.history, target=1, faulty=frozenset({0})
        )
        phase1 = plan[1]
        to_target = [(src, dst) for src, dst, _ in phase1 if dst == 1]
        to_rest = [(src, dst) for src, dst, _ in phase1 if dst != 1]
        assert to_target == [(0, 1)]
        assert sorted(dst for _, dst in to_rest) == [2, 3, 4]
        # payload toward the target carries H's value, the rest carry G's.
        target_payloads = [p for _, dst, p in phase1 if dst == 1]
        rest_payloads = [p for _, dst, p in phase1 if dst != 1]
        assert all(p.value == 0 for p in target_payloads)
        assert all(p.value == 1 for p in rest_payloads)

    def test_faulty_to_faulty_traffic_skipped(self):
        result_h = run(DolevStrong(5, 1), 0)
        result_g = run(DolevStrong(5, 1), 1)
        plan = build_split_plan(
            result_h.history, result_g.history, target=1, faulty=frozenset({0, 2})
        )
        for sends in plan.values():
            assert all(dst not in {0, 2} for _, dst, _ in sends)


class TestReplayAdversary:
    def test_replayed_signatures_verify_in_new_run(self):
        result_h = run(DolevStrong(5, 1), 0)
        result_g = run(DolevStrong(5, 1), 1)
        plan = build_split_plan(
            result_h.history, result_g.history, target=1, faulty=frozenset({0})
        )
        result = run(DolevStrong(5, 1), 1, ReplayAdversary({0}, plan))
        # the replayed chains were accepted by the verifiers: processor 2
        # extracted G's value 1 from a replayed chain, and (because
        # Dolev-Strong cross-relays) also heard H's value 0 — proof that
        # both replayed signature sets verified in the new execution.
        assert set(result.processors[2].extracted) == {0, 1}
        assert check_byzantine_agreement(result).ok

    def test_target_view_indistinguishable_from_h(self):
        result_h = run(DolevStrong(5, 1), 0)
        result_g = run(DolevStrong(5, 1), 1)
        plan = build_split_plan(
            result_h.history, result_g.history, target=1, faulty=frozenset({0})
        )
        result = run(DolevStrong(5, 1), 1, ReplayAdversary({0}, plan))
        # Dolev-Strong relays everything everywhere, so processor 1 also
        # hears G-values from other correct processors: its view is NOT H's
        # (|A(p)| > t — that is exactly why Dolev-Strong is not splittable).
        assert result.history.individual(1) != result_h.history.individual(1)


class TestIgnoreFirstAdversary:
    def test_counts_ignored_messages(self):
        adversary = IgnoreFirstAdversary([3, 4], ignore_count=1)
        run(Algorithm1(5, 2), 1, adversary)
        assert all(count == 1 for count in adversary.messages_ignored().values())

    def test_never_sends_within_b(self):
        adversary = IgnoreFirstAdversary([3, 4], ignore_count=1)
        result = run(Algorithm1(5, 2), 1, adversary)
        internal = [
            e
            for phase in result.history.phases
            for e in phase.edges()
            if e.src in {3, 4} and e.dst in {3, 4}
        ]
        assert internal == []

    def test_agreement_holds_under_the_proofs_hprime(self):
        adversary = IgnoreFirstAdversary([3, 4], ignore_count=1)
        result = run(Algorithm1(5, 2), 1, adversary)
        assert check_byzantine_agreement(result).ok

    def test_ignores_at_most_the_requested_count(self):
        adversary = IgnoreFirstAdversary([4], ignore_count=2)
        result = run(Algorithm1(5, 2), 1, adversary)
        assert adversary.messages_ignored()[4] == 2


class TestTheorem2SwitchAdversary:
    def test_b_and_starvers_must_be_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            Theorem2SwitchAdversary(
                b_rest=[3], starvers=[3], target=4, ignore_count=1
            )

    def test_starvers_never_reach_target(self):
        adversary = Theorem2SwitchAdversary(
            b_rest=[3], starvers=[1], target=4, ignore_count=1
        )
        result = run(Algorithm1(5, 2), 1, adversary)
        from_starver = [
            e
            for phase in result.history.phases
            for e in phase.edges()
            if e.src == 1 and e.dst == 4
        ]
        assert from_starver == []

    def test_faulty_set_is_union(self):
        adversary = Theorem2SwitchAdversary(
            b_rest=[3], starvers=[1], target=4, ignore_count=1
        )
        assert adversary.faulty == frozenset({1, 3})
