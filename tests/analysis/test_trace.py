"""Tests for the trace renderer."""

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.trace import (
    describe_payload,
    phase_summary,
    processor_summary,
    render_trace,
    trace_lines,
)
from repro.core.runner import run


class TestDescribePayload:
    def test_short_payloads_verbatim(self):
        assert describe_payload(42) == "42"

    def test_long_payloads_truncated(self):
        text = describe_payload("x" * 200, max_length=20)
        assert len(text) == 20 and text.endswith("...")

    def test_truncation_never_splits_an_escape_sequence(self):
        # repr of a control-character payload is a run of \xHH escapes; a
        # naive slice lands mid-escape ('...\x0" + "...").  The cut must
        # always fall on an escape boundary.
        payload = "\x00" * 50
        for max_length in range(10, 30):
            text = describe_payload(payload, max_length=max_length)
            assert text.endswith("...")
            body = text[:-3]
            # Strip whole escapes from the front; nothing may remain.
            assert body.startswith("'")
            rest = body[1:]
            while rest:
                assert rest.startswith("\\x00"), text
                rest = rest[4:]

    def test_truncation_handles_unicode_escapes(self):
        text = describe_payload("￿" * 40, max_length=21)
        assert text.endswith("...")
        assert len(text) <= 21
        body = text[1:-3]
        while body:
            assert body.startswith("\\uffff"), text
            body = body[6:]
        # Printable non-ASCII is not escaped by repr: plain character cut.
        payload = "☃" * 80
        assert describe_payload(payload) == repr(payload)[:57] + "..."

    def test_truncated_text_is_never_longer_than_the_limit(self):
        for payload in ("x" * 100, "\x01" * 100, "\U0001f600" * 40, b"\xff" * 80):
            for max_length in range(8, 40):
                assert len(describe_payload(payload, max_length)) <= max_length


class TestTraceLines:
    def test_all_messages_present(self):
        result = run(DolevStrong(4, 1), 1)
        lines = trace_lines(result.history)
        # input edge + every sent message.
        assert len(lines) == 1 + result.metrics.total_messages

    def test_processor_filter(self):
        result = run(DolevStrong(4, 1), 1)
        lines = trace_lines(result.history, processors={2})
        assert all(line.src == 2 or line.dst == 2 for line in lines)

    def test_phase_filter(self):
        result = run(DolevStrong(4, 1), 1)
        lines = trace_lines(result.history, phases=range(1, 2))
        assert {line.phase for line in lines} == {1}

    def test_signature_counts(self):
        result = run(DolevStrong(4, 1), 1)
        phase1 = [l for l in trace_lines(result.history) if l.phase == 1]
        assert all(line.signatures == 1 for line in phase1)


class TestRenderTrace:
    def test_contains_phases_and_decisions(self):
        result = run(Algorithm1(5, 2), 1)
        text = render_trace(result)
        assert "phase 0" in text and "phase 4" in text
        assert "decisions:" in text
        assert "input" in text

    def test_faulty_senders_marked(self):
        result = run(DolevStrong(5, 1), 1, SilentAdversary([0]))
        text = render_trace(result)
        assert "faulty=[0]" in text

    def test_elision_of_busy_phases(self):
        result = run(DolevStrong(8, 2), 1)
        text = render_trace(result, max_messages_per_phase=3)
        assert "more" in text

    def test_silent_phases_marked(self):
        result = run(DolevStrong(5, 1), 0, SilentAdversary([0]))
        assert "(silent)" in render_trace(result)

    def test_phase_headers_carry_signature_totals(self):
        result = run(DolevStrong(4, 1), 1)
        text = render_trace(result)
        expected = result.metrics.signatures_per_phase[1]
        assert f"--- phase 1 (3 messages, {expected} signatures) ---" in text


class TestSummaries:
    def test_phase_summary_rows(self):
        result = run(DolevStrong(5, 1), 1)
        rows = phase_summary(result)
        assert [row["phase"] for row in rows] == [1, 2]
        assert sum(row["messages"] for row in rows) == result.metrics.total_messages

    def test_processor_summary_roles(self):
        result = run(DolevStrong(5, 1), 1, SilentAdversary([2]))
        rows = processor_summary(result)
        assert rows[0]["role"] == "transmitter/correct"
        assert rows[2]["role"] == "faulty"
        assert rows[2]["decision"] == "-"
        assert rows[1]["decision"] == 1
