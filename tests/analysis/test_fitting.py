"""Tests for the numeric fitting and graph-export helpers."""

import math

import pytest

from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm4 import Algorithm4
from repro.analysis.fitting import (
    crossover_point,
    fit_linear,
    fit_power,
    history_to_networkx,
)
from repro.core.runner import run


class TestLinearFit:
    def test_exact_line_recovered(self):
        fit = fit_linear([1, 2, 3, 4], [5, 7, 9, 11])
        assert math.isclose(fit.slope, 2.0)
        assert math.isclose(fit.intercept, 3.0)
        assert math.isclose(fit.r_squared, 1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3])
        assert math.isclose(fit.predict(10), 21.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_constant_data(self):
        fit = fit_linear([1, 2, 3], [5, 5, 5])
        assert math.isclose(fit.slope, 0.0, abs_tol=1e-9)
        assert fit.r_squared == 1.0


class TestPowerFit:
    def test_exact_power_law_recovered(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power(xs, ys)
        assert math.isclose(fit.exponent, 1.5, rel_tol=1e-9)
        assert math.isclose(fit.coefficient, 3.0, rel_tol=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power([0, 1], [1, 2])

    def test_algorithm4_grows_like_n_to_the_1_5(self):
        """Theorem 6 as a fitted exponent.

        Exactly 3(m−1)m² = 3N^1.5 − 3N: the −3N term makes the local
        log-log slope approach 1.5 *from above* ((4.5√N − 3)/(3√N − 3) is
        1.75 at N = 9, 1.56 at N = 100), so at simulation sizes the fitted
        exponent sits a little above 1.5 — and well below 2.
        """
        points = []
        for m in (3, 4, 5, 6, 7):
            n = m * m
            result = run(
                Algorithm4(m, 1, {pid: pid for pid in range(n)}),
                0,
                record_history=False,
            )
            points.append((n, result.metrics.messages_by_correct))
        fit = fit_power([p[0] for p in points], [p[1] for p in points])
        assert 1.5 <= fit.exponent <= 1.8, fit
        assert fit.r_squared > 0.99


class TestCrossover:
    def test_intersection(self):
        a = fit_linear([0, 1], [0, 1])  # y = x
        b = fit_linear([0, 1], [4, 4.5])  # y = 0.5x + 4
        assert math.isclose(crossover_point(a, b), 8.0)

    def test_parallel_lines(self):
        a = fit_linear([0, 1], [0, 1])
        b = fit_linear([0, 1], [2, 3])
        assert crossover_point(a, b) is None


class TestHistoryExport:
    def test_multigraph_has_one_edge_per_message(self):
        result = run(Algorithm1(5, 2), 1)
        graph = history_to_networkx(result.history)
        assert graph.number_of_edges() == result.metrics.total_messages

    def test_collapsed_graph_weights(self):
        result = run(Algorithm1(5, 2), 1)
        graph = history_to_networkx(result.history, collapse_phases=True)
        total = sum(data["weight"] for _, _, data in graph.edges(data=True))
        assert total == result.metrics.total_messages

    def test_relay_structure_is_bipartite_plus_transmitter(self):
        """Algorithm 1's fault-free communication pattern: the transmitter
        fans out, and all relays cross sides."""
        result = run(Algorithm1(7, 3), 1)
        graph = history_to_networkx(result.history, collapse_phases=True)
        relay_graph = result.processors[1].graph
        for src, dst in graph.edges():
            assert relay_graph.has_edge(src, dst), (src, dst)

    def test_edge_attributes(self):
        result = run(Algorithm1(5, 2), 1)
        graph = history_to_networkx(result.history)
        phases = {data["phase"] for _, _, data in graph.edges(data=True)}
        assert phases == {1, 2}
        assert all(
            data["signatures"] >= 1 for _, _, data in graph.edges(data=True)
        )
