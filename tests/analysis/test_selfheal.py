"""The self-healing executor: timeouts, retries, pool rebuilds, checkpoints.

The crash/hang tasks coordinate through marker files so that the *first*
execution misbehaves and every retry succeeds — which is exactly the
transient-fault shape the engine exists to absorb.  All task classes are
module-level so they pickle across the pool.
"""

import os
import pickle
import time
from pathlib import Path

import pytest

from repro.analysis.parallel import (
    CHECKPOINT_MAGIC,
    SweepCheckpoint,
    _fingerprint,
    run_tasks,
)

pytestmark = pytest.mark.parallel


class Square:
    def __init__(self, x):
        self.x = x

    def run(self):
        return self.x * self.x


class KillWorkerOnce:
    """``os._exit`` (bypassing cleanup) the first time any process runs it —
    the pool sees a dead worker and raises BrokenProcessPool."""

    def __init__(self, marker):
        self.marker = str(marker)

    def run(self):
        marker = Path(self.marker)
        if not marker.exists():
            marker.write_text("died")
            os._exit(1)
        return "recovered"


class HangOnce:
    """Blocks far past any test deadline on first execution only."""

    def __init__(self, marker):
        self.marker = str(marker)

    def run(self):
        marker = Path(self.marker)
        if not marker.exists():
            marker.write_text("hung")
            time.sleep(600)
        return "recovered"


class AlwaysRaises:
    def run(self):
        raise RuntimeError("deterministic task bug")


class RecordRun:
    """Appends its id to a shared log file — proves skipped vs executed."""

    def __init__(self, log, x):
        self.log = str(log)
        self.x = x

    def run(self):
        with open(self.log, "a", encoding="utf-8") as handle:
            handle.write(f"{self.x}\n")
        return self.x


def expected(n):
    return [i * i for i in range(n)]


class TestSelfHealing:
    def test_broken_pool_is_rebuilt_and_chunk_retried(self, tmp_path):
        tasks = [KillWorkerOnce(tmp_path / "died")] + [Square(i) for i in range(3)]
        out = run_tasks(tasks, workers=2, chunk_size=1, backoff=0.01)
        assert out == ["recovered", 0, 1, 4]

    def test_wedged_worker_is_timed_out_and_chunk_retried(self, tmp_path):
        tasks = [HangOnce(tmp_path / "hung")] + [Square(i) for i in range(3)]
        started = time.monotonic()
        out = run_tasks(
            tasks, workers=2, chunk_size=1, task_timeout=2.0, backoff=0.01
        )
        assert out == ["recovered", 0, 1, 4]
        # Well under the 600s the wedged worker would have taken.
        assert time.monotonic() - started < 60

    def test_deterministic_bug_surfaces_with_its_own_traceback(self):
        with pytest.raises(RuntimeError, match="deterministic task bug"):
            run_tasks(
                [AlwaysRaises(), Square(1)],
                workers=2,
                chunk_size=1,
                max_retries=1,
                backoff=0.01,
            )


class TestCheckpoint:
    def test_completed_run_deletes_the_file(self, tmp_path):
        ckpt = tmp_path / "progress.ckpt"
        out = run_tasks(
            [Square(i) for i in range(8)], workers=1, checkpoint=ckpt
        )
        assert out == expected(8)
        assert not ckpt.exists()

    def test_resume_skips_finished_chunks(self, tmp_path):
        ckpt = tmp_path / "progress.ckpt"
        log = tmp_path / "ran.log"
        tasks = [RecordRun(log, i) for i in range(6)]
        ledger = SweepCheckpoint(ckpt, _fingerprint(tasks, 1))
        ledger.open()
        ledger.record(0, [0])
        ledger.record(1, [1])
        ledger.close()

        out = run_tasks(tasks, workers=1, chunk_size=1, checkpoint=ckpt)
        assert out == list(range(6))
        # Tasks 0 and 1 were restored from the checkpoint, never re-run.
        ran = sorted(int(line) for line in log.read_text().split())
        assert ran == [2, 3, 4, 5]

    def test_corrupt_tail_costs_only_the_partial_frame(self, tmp_path):
        ckpt = tmp_path / "progress.ckpt"
        tasks = [Square(i) for i in range(6)]
        ledger = SweepCheckpoint(ckpt, _fingerprint(tasks, 1))
        ledger.open()
        ledger.record(0, [0])
        ledger._handle.write(b"\x80\x05 torn frame")
        ledger.close()

        out = run_tasks(tasks, workers=1, chunk_size=1, checkpoint=ckpt)
        assert out == expected(6)

    def test_stale_fingerprint_discards_the_file(self, tmp_path):
        ckpt = tmp_path / "progress.ckpt"
        log = tmp_path / "ran.log"
        tasks = [RecordRun(log, i) for i in range(3)]
        ledger = SweepCheckpoint(ckpt, "not-the-right-fingerprint")
        ledger.open()
        ledger.record(0, ["poison"])
        ledger.close()

        out = run_tasks(tasks, workers=1, chunk_size=1, checkpoint=ckpt)
        assert out == [0, 1, 2]
        assert sorted(int(line) for line in log.read_text().split()) == [0, 1, 2]

    def test_parallel_run_with_checkpoint_matches_serial(self, tmp_path):
        tasks = [Square(i) for i in range(20)]
        out = run_tasks(
            tasks, workers=4, chunk_size=3, checkpoint=tmp_path / "p.ckpt"
        )
        assert out == expected(20)

    def test_header_is_schema_tagged(self, tmp_path):
        ckpt = tmp_path / "progress.ckpt"
        ledger = SweepCheckpoint(ckpt, "fp")
        ledger.open()
        ledger.close()
        with open(ckpt, "rb") as handle:
            header = pickle.load(handle)
        assert header["magic"] == CHECKPOINT_MAGIC
        assert header["fingerprint"] == "fp"

    def test_checkpoint_with_unpicklable_tasks_is_rejected(self, tmp_path):
        unpicklable = [type("Local", (), {"run": lambda self: 1})()]
        with pytest.raises(ValueError, match="picklable"):
            run_tasks(unpicklable * 2, workers=1, checkpoint=tmp_path / "c.ckpt")
