"""Tests for the parallel sweep executor.

The load-bearing property is determinism: for the same grid, the parallel
executor must produce the *identical* ordered ``SweepPoint`` list as the
serial :func:`repro.analysis.sweep.sweep` — regardless of worker count or
chunking.  The grids below mirror experiments E7 (Algorithm 3 over n) and
E10 (Algorithm 5 over s).
"""

import pickle
from functools import partial

import pytest

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.analysis.parallel import (
    ScenarioSpec,
    default_workers,
    expand,
    run_specs,
    sweep_parallel,
)
from repro.analysis.sweep import sweep


def e7_grid():
    """A small cut of the E7 Theorem 5 grid: Algorithm 3 over n at fixed t."""
    return [({"n": n}, partial(Algorithm3, n, 2)) for n in (20, 40, 60)]


def e10_grid():
    """A small cut of the E10 trade-off grid: Algorithm 5 over s."""
    return [({"s": s}, partial(Algorithm5, 80, 2, s=s)) for s in (1, 7)]


def silent_one(algorithm):
    return SilentAdversary([1])


class TestExpand:
    def test_matches_sweep_order(self):
        """expand() flattens in the exact nesting order sweep() iterates."""
        configurations = [({"t": t}, partial(Algorithm1, 2 * t + 1, t)) for t in (1, 2)]
        adversaries = [("fault-free", None), ("silent-1", silent_one)]
        specs = expand(configurations, values=(0, 1), adversaries=adversaries)
        assert len(specs) == 2 * 2 * 2
        observed = [(s.params, s.adversary_name, s.value) for s in specs]
        expected = [
            (tuple(sorted(params.items())), name, value)
            for params, _ in configurations
            for name, _ in adversaries
            for value in (0, 1)
        ]
        assert observed == expected

    def test_specs_are_picklable(self):
        specs = expand(e7_grid(), values=(1,))
        restored = pickle.loads(pickle.dumps(specs))
        assert [(s.params, s.adversary_name, s.value) for s in restored] == [
            (s.params, s.adversary_name, s.value) for s in specs
        ]
        # a restored spec produces the same point as the original
        assert restored[0].run() == specs[0].run()


class TestDeterminism:
    def test_e7_grid_parallel_equals_serial(self):
        grid = e7_grid()
        serial = sweep_parallel(grid, values=(0, 1), workers=1)
        parallel = sweep_parallel(grid, values=(0, 1), workers=2)
        assert parallel == serial
        # byte-identical points, not merely == (whole-list dumps differ only
        # in pickle memo references when serial points share param tuples):
        assert [pickle.dumps(p) for p in parallel] == [pickle.dumps(p) for p in serial]

    def test_e7_grid_matches_sweep(self):
        grid = e7_grid()
        reference = sweep(grid, values=(1,), adversaries=(("fault-free", lambda _: None),))
        assert sweep_parallel(grid, values=(1,), workers=2) == reference

    def test_e10_grid_parallel_equals_serial(self):
        grid = e10_grid()
        serial = sweep_parallel(grid, values=(1,), workers=1)
        parallel = sweep_parallel(grid, values=(1,), workers=2)
        assert parallel == serial
        assert [pickle.dumps(p) for p in parallel] == [pickle.dumps(p) for p in serial]

    def test_chunk_size_does_not_change_order(self):
        specs = expand(e7_grid(), values=(0, 1))
        reference = run_specs(specs, workers=1)
        for chunk_size in (1, 2, 5):
            assert run_specs(specs, workers=2, chunk_size=chunk_size) == reference

    def test_adversary_axis(self):
        grid = [({"t": 2}, partial(Algorithm1, 5, 2))]
        adversaries = [("fault-free", None), ("silent-1", silent_one)]
        serial = sweep_parallel(grid, values=(1,), adversaries=adversaries, workers=1)
        parallel = sweep_parallel(grid, values=(1,), adversaries=adversaries, workers=2)
        assert parallel == serial
        assert [p.adversary for p in parallel] == ["fault-free", "silent-1"]


class TestFallbacksAndErrors:
    def test_workers_1_accepts_lambdas(self):
        """The serial fallback never pickles, so sweep()-style lambdas work."""
        points = sweep_parallel(
            [({}, lambda: Algorithm1(5, 2))],
            values=(1,),
            adversaries=(("fault-free", lambda _: None),),
            workers=1,
        )
        assert len(points) == 1 and points[0].agreement_ok

    def test_unpicklable_factory_rejected_with_clear_error(self):
        grid = [({"n": n}, (lambda n=n: Algorithm1(5, 2))) for n in (5, 6, 7)]
        with pytest.raises(ValueError, match="picklable"):
            sweep_parallel(grid, values=(0, 1), workers=2)

    def test_empty_grid(self):
        assert sweep_parallel([], values=(0, 1), workers=4) == []

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert default_workers() == 1

    def test_trace_dir_writes_one_trace_per_scenario(self, tmp_path):
        from repro.obs import summarize_trace

        grid = e7_grid()
        points = sweep_parallel(
            grid, values=(0, 1), workers=1, trace_dir=str(tmp_path)
        )
        traces = sorted(tmp_path.glob("*.jsonl"))
        assert len(traces) == len(points) == 6
        summary = summarize_trace(traces[0])
        assert summary.consistency_errors() == []

    def test_trace_file_set_independent_of_worker_count(self, tmp_path):
        grid = e7_grid()
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        sweep_parallel(grid, values=(1,), workers=1, trace_dir=str(serial_dir))
        sweep_parallel(grid, values=(1,), workers=2, trace_dir=str(parallel_dir))
        serial_names = sorted(p.name for p in serial_dir.glob("*.jsonl"))
        parallel_names = sorted(p.name for p in parallel_dir.glob("*.jsonl"))
        assert serial_names == parallel_names
        for name in serial_names:
            assert (serial_dir / name).read_bytes() != b""

    def test_fresh_algorithm_per_point(self):
        """Like sweep(): every measurement builds a fresh instance."""
        spec = ScenarioSpec(
            params=(),
            factory=partial(Algorithm1, 5, 2),
            adversary_name="fault-free",
            adversary_factory=None,
            value=1,
        )
        first, second = spec.run(), spec.run()
        assert first == second
