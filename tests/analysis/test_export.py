"""Tests for the JSON exporters."""

import json

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.experiments import run_all_experiments
from repro.analysis.export import (
    read_json,
    report_to_dict,
    run_to_dict,
    sweep_to_dicts,
    write_json,
)
from repro.analysis.sweep import measure
from repro.core.runner import run


class TestRunExport:
    def test_round_trips_through_json(self):
        result = run(DolevStrong(5, 1), 1, SilentAdversary([2]))
        data = run_to_dict(result)
        restored = json.loads(json.dumps(data))
        assert restored["algorithm"] == "dolev-strong"
        assert restored["faulty"] == [2]
        assert restored["decisions"]["1"] == "1"
        assert restored["metrics"]["messages_by_correct"] == (
            result.metrics.messages_by_correct
        )

    def test_per_phase_breakdowns_serialised(self):
        result = run(Algorithm1(5, 2), 1)
        data = run_to_dict(result)
        per_phase = data["metrics"]["messages_per_phase"]
        assert sum(per_phase.values()) == result.metrics.total_messages


class TestSweepExport:
    def test_rows_are_json_safe(self):
        points = [measure(DolevStrong(5, 1), v) for v in (0, 1)]
        rows = sweep_to_dicts(points)
        json.dumps(rows)  # must not raise
        assert rows[0]["algorithm"] == "dolev-strong"
        assert rows[0]["value"] == "0"


class TestReportExport:
    def test_report_serialises(self):
        report = run_all_experiments()
        data = report_to_dict(report)
        json.dumps(data)
        assert data["all_hold"] is True
        assert len(data["records"]) == len(report.records)


class TestFileIO:
    def test_write_and_read(self, tmp_path):
        path = write_json({"x": [1, 2]}, tmp_path / "out.json")
        assert read_json(path) == {"x": [1, 2]}
        assert path.read_text().endswith("\n")
