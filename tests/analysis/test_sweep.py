"""Tests for the sweep harness."""

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.sweep import measure, sweep, worst_case

import pytest


class TestMeasure:
    def test_point_fields(self):
        point = measure(DolevStrong(5, 1), 1, params={"n": 5})
        assert point.algorithm == "dolev-strong"
        assert point.messages > 0
        assert point.agreement_ok
        assert point.param("n") == 5
        assert point.param("missing", "x") == "x"

    def test_as_row_merges_params(self):
        point = measure(Algorithm1(5, 2), 1, params={"t": 2})
        row = point.as_row()
        assert row["algorithm"] == "algorithm-1"
        assert row["t"] == 2
        assert "messages" in row and "bound" in row


class TestSweep:
    def test_cartesian_product(self):
        configurations = [
            ({"t": t}, (lambda t=t: Algorithm1(2 * t + 1, t))) for t in (1, 2)
        ]
        points = sweep(
            configurations,
            values=(0, 1),
            adversaries=(
                ("fault-free", lambda alg: None),
                ("silent-1", lambda alg: SilentAdversary([1])),
            ),
        )
        assert len(points) == 2 * 2 * 2
        assert all(p.agreement_ok for p in points)

    def test_fresh_algorithm_per_point(self):
        """Each measurement must use a fresh instance (state isolation)."""
        counter = {"built": 0}

        def factory():
            counter["built"] += 1
            return DolevStrong(4, 1)

        sweep([({}, factory)], values=(0, 1))
        assert counter["built"] == 2


class TestWorstCase:
    def test_maximises_messages(self):
        points = sweep(
            [({"t": t}, (lambda t=t: Algorithm1(2 * t + 1, t))) for t in (1, 2, 3)],
            values=(1,),
        )
        worst = worst_case(points)
        assert worst.param("t") == 3

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            worst_case([])
