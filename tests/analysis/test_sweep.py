"""Tests for the sweep harness."""

from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.sweep import measure, sweep, worst_case

import pytest


class TestMeasure:
    def test_point_fields(self):
        point = measure(DolevStrong(5, 1), 1, params={"n": 5})
        assert point.algorithm == "dolev-strong"
        assert point.messages > 0
        assert point.agreement_ok
        assert point.param("n") == 5
        assert point.param("missing", "x") == "x"

    def test_as_row_merges_params(self):
        point = measure(Algorithm1(5, 2), 1, params={"t": 2})
        row = point.as_row()
        assert row["algorithm"] == "algorithm-1"
        assert row["t"] == 2
        assert "messages" in row and "bound" in row

    def test_as_row_params_cannot_overwrite_base_columns(self):
        """A sweep param named like a base column must not clobber the
        measured value — it gets a ``param_`` prefix instead."""
        point = measure(
            Algorithm1(5, 2), 1, params={"n": "grid-n", "messages": -1, "s": 4}
        )
        row = point.as_row()
        assert row["n"] == 5  # the measured system size, not the param
        assert row["messages"] == point.messages
        assert row["param_n"] == "grid-n"
        assert row["param_messages"] == -1
        assert row["s"] == 4  # non-colliding params keep their names


class TestSweep:
    def test_cartesian_product(self):
        configurations = [
            ({"t": t}, (lambda t=t: Algorithm1(2 * t + 1, t))) for t in (1, 2)
        ]
        points = sweep(
            configurations,
            values=(0, 1),
            adversaries=(
                ("fault-free", lambda alg: None),
                ("silent-1", lambda alg: SilentAdversary([1])),
            ),
        )
        assert len(points) == 2 * 2 * 2
        assert all(p.agreement_ok for p in points)

    def test_fresh_algorithm_per_point(self):
        """Each measurement must use a fresh instance (state isolation)."""
        counter = {"built": 0}

        def factory():
            counter["built"] += 1
            return DolevStrong(4, 1)

        sweep([({}, factory)], values=(0, 1))
        assert counter["built"] == 2


class TestWorstCase:
    def test_maximises_messages(self):
        points = sweep(
            [({"t": t}, (lambda t=t: Algorithm1(2 * t + 1, t))) for t in (1, 2, 3)],
            values=(1,),
        )
        worst = worst_case(points)
        assert worst.param("t") == 3

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            worst_case([])

    def test_accepts_other_cost_measures(self):
        points = sweep(
            [({"t": t}, (lambda t=t: Algorithm1(2 * t + 1, t))) for t in (1, 2)],
            values=(1,),
        )
        assert worst_case(points, key="signatures").param("t") == 2
        # phases_used ties across this grid (both settle in 2 phases), so
        # assert the maximum is attained rather than which point wins the tie.
        worst_phases = worst_case(points, key="phases_used")
        assert worst_phases.phases_used == max(p.phases_used for p in points)

    def test_unknown_key_raises_value_error(self):
        points = sweep([({}, lambda: Algorithm1(5, 2))], values=(1,))
        with pytest.raises(ValueError, match="unknown worst_case key"):
            worst_case(points, key="message")  # typo for "messages"
        with pytest.raises(ValueError, match="params"):
            worst_case(points, key="params")  # real field, not maximisable
