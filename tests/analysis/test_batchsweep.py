"""Tests for the batched sweep executor (repro.analysis.batchsweep)."""

from functools import partial

import pytest

from repro.algorithms.registry import get
from repro.analysis.batchsweep import (
    MIN_STRIPE,
    BatchStripe,
    batch_specs,
    run_specs_batched,
)
from repro.analysis.parallel import expand, run_specs, sweep_parallel


def grid(ns=(5, 7), t=1, name="dolev-strong", values=(0, 1, 0, 1)):
    configs = [
        ({"n": n, "t": t}, partial(get(name).build, n, t)) for n in ns
    ]
    return expand(configs, values=values)


class TestEquality:
    def test_points_equal_scalar_run_specs_in_order(self):
        specs = grid()
        assert run_specs_batched(specs, workers=1) == run_specs(specs, workers=1)

    def test_mixed_algorithm_grids_group_by_factory(self):
        specs = grid(name="dolev-strong") + grid(name="phase-king", ns=(9,), t=2)
        result = batch_specs(specs, workers=1, strict=True)
        assert result.points == run_specs(specs, workers=1)
        # dedup worked within each factory group: 2 values x 3 configs.
        assert result.stats.runs == len(specs)
        assert result.stats.unique_runs == 6

    def test_parallel_workers_preserve_order(self):
        specs = grid(ns=(5, 6, 7), values=(0, 1) * 4)
        assert run_specs_batched(specs, workers=2) == run_specs(specs, workers=1)

    def test_shared_memory_results_match(self):
        specs = grid(ns=(5, 6, 7), values=(0, 1) * 4)
        assert run_specs_batched(
            specs, workers=2, shared_results=True
        ) == run_specs(specs, workers=1)

    def test_large_groups_are_striped(self):
        specs = grid(ns=(5,), values=tuple([0, 1] * MIN_STRIPE))
        result = batch_specs(specs, workers=2)
        assert result.points == run_specs(specs, workers=1)
        # Striping splits one group into several batches, so each stripe
        # re-runs its own class representatives.
        assert result.stats.unique_runs >= 2


class TestStripe:
    def test_stripe_runs_standalone(self):
        specs = tuple(grid(ns=(5,), values=(0, 1, 0)))
        points, stats = BatchStripe(specs=specs).run()
        assert points == run_specs(list(specs), workers=1)
        assert stats["runs"] == 3
        assert stats["replicated_runs"] == 1


class TestTraceFallback:
    def test_traced_specs_keep_their_scalar_trace_files(self, tmp_path):
        trace_dir = tmp_path / "traces"
        configs = [({"n": 5, "t": 1}, partial(get("dolev-strong").build, 5, 1))]
        specs = expand(configs, values=(0, 1), trace_dir=str(trace_dir))
        result = batch_specs(specs, workers=1)
        assert result.points == run_specs(specs, workers=1)
        produced = sorted(p.name for p in trace_dir.glob("*.jsonl"))
        assert len(produced) == 2
        # Traced specs bypass the batch engine entirely.
        assert result.stats.scalar_runs == len(specs)


class TestSweepParallelWiring:
    def test_batch_flag_matches_scalar_sweep(self):
        configs = [
            ({"n": n}, partial(get("algorithm-3").build, n, 2)) for n in (9, 12)
        ]
        scalar = sweep_parallel(configs, values=(0, 1, 1), workers=1)
        batched = sweep_parallel(configs, values=(0, 1, 1), workers=1, batch=True)
        assert batched == scalar

    def test_batch_strict_flag_passes_through(self):
        configs = [({"n": 9}, partial(get("phase-king").build, 9, 2))]
        points = sweep_parallel(
            configs, values=(0, 1), workers=1, batch=True, batch_strict=True
        )
        assert len(points) == 2

    def test_checkpoint_with_batch_is_rejected(self, tmp_path):
        configs = [({"n": 5}, partial(get("dolev-strong").build, 5, 1))]
        with pytest.raises(ValueError, match="checkpoint"):
            sweep_parallel(
                configs, workers=1, batch=True,
                checkpoint=str(tmp_path / "ck.bin"),
            )

    def test_shared_results_requires_batch(self):
        configs = [({"n": 5}, partial(get("dolev-strong").build, 5, 1))]
        with pytest.raises(ValueError, match="batch=True"):
            sweep_parallel(configs, workers=1, shared_results=True)

    def test_unpicklable_factories_still_work_serially(self):
        configs = [({"n": 5}, lambda: get("dolev-strong").build(5, 1))]
        specs = expand(configs, values=(0, 1))
        assert run_specs_batched(specs, workers=1) == run_specs(specs, workers=1)
