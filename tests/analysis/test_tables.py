"""Tests for the table renderers."""

from repro.analysis.tables import format_markdown_table, format_table, ratio_series


ROWS = [
    {"name": "a", "messages": 10, "bound": 12},
    {"name": "bb", "messages": 7, "bound": None},
]


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "10" in lines[2] and "bb" in lines[3]

    def test_none_renders_as_dash(self):
        assert "-" in format_table(ROWS).splitlines()[3]

    def test_column_selection_and_order(self):
        text = format_table(ROWS, columns=["messages", "name"])
        assert text.splitlines()[0].startswith("messages")

    def test_title(self):
        assert format_table(ROWS, title="T1").startswith("T1\n")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_floats_rounded(self):
        text = format_table([{"r": 1.23456}])
        assert "1.23" in text and "1.2345" not in text


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(ROWS)
        lines = text.splitlines()
        assert lines[0] == "| name | messages | bound |"
        assert lines[1] == "|---|---|---|"
        assert lines[2] == "| a | 10 | 12 |"
        assert lines[3] == "| bb | 7 | - |"

    def test_empty(self):
        assert format_markdown_table([]) == "(no rows)"


class TestRatioSeries:
    def test_ratios(self):
        rows = [{"m": 10, "s": 5}, {"m": 9, "s": 3}]
        assert ratio_series(rows, "m", "s") == [2.0, 3.0]

    def test_zero_denominator_is_infinite(self):
        assert ratio_series([{"m": 1, "s": 0}], "m", "s") == [float("inf")]
