"""Tests for the worst-case probing harness."""

import random

import pytest

from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.search import (
    adversary_family,
    fault_placements,
    probe,
    worst_case_probe,
)


class TestFaultPlacements:
    def test_all_within_budget_and_range(self):
        placements = list(
            fault_placements(10, 3, samples=20, rng=random.Random(1))
        )
        assert placements
        for placement in placements:
            assert 1 <= len(placement) <= 3
            assert all(0 <= pid < 10 for pid in placement)

    def test_no_duplicates(self):
        placements = list(
            fault_placements(8, 2, samples=30, rng=random.Random(2))
        )
        assert len(placements) == len(set(placements))

    def test_systematic_placements_present(self):
        placements = set(fault_placements(10, 2, samples=0, rng=random.Random(0)))
        assert (0,) in placements  # the transmitter
        assert (9,) in placements  # the last (passive/leaf) processor
        assert (0, 1) in placements


class TestAdversaryFamily:
    def test_four_behaviours_per_placement(self):
        family = list(adversary_family((1, 2), random.Random(0)))
        names = [name.split("[")[0].split("{")[0] for name, _ in family]
        assert names == ["silent", "crash", "garbage", "random"]
        for _, adversary in family:
            assert adversary.faulty == frozenset({1, 2})


class TestProbe:
    def test_probe_includes_fault_free(self):
        results = probe(lambda: DolevStrong(5, 1), samples=2)
        assert any(r.adversary == "fault-free" for r in results)

    def test_probe_never_breaks_dolev_strong(self):
        worst, results = worst_case_probe(lambda: DolevStrong(6, 2), samples=5)
        assert all(r.agreement_ok for r in results)
        assert worst.messages == max(r.messages for r in results)

    def test_probe_respects_algorithm1_bound(self):
        worst, _ = worst_case_probe(lambda: Algorithm1(7, 3), samples=8)
        assert worst.messages <= Algorithm1(7, 3).upper_bound_messages()
        # the fault-free value-1 run IS the worst case for Algorithm 1.
        assert worst.messages == Algorithm1(7, 3).upper_bound_messages()
        assert worst.adversary == "fault-free"

    def test_probe_finds_algorithm3s_faulty_root_surcharge(self):
        """For Algorithm 3 some adversarial scenario must cost more than
        fault-free (the 3t²s term of Lemma 1 exists for a reason)."""
        factory = lambda: Algorithm3(16, 2, s=3)
        worst, results = worst_case_probe(factory, samples=10)
        fault_free = max(
            r.messages for r in results if r.adversary == "fault-free"
        )
        assert worst.messages > fault_free
        assert worst.messages <= factory().upper_bound_messages()

    def test_deterministic_given_seed(self):
        a = probe(lambda: DolevStrong(5, 1), samples=3, seed=7)
        b = probe(lambda: DolevStrong(5, 1), samples=3, seed=7)
        assert [(r.adversary, r.messages) for r in a] == [
            (r.adversary, r.messages) for r in b
        ]
