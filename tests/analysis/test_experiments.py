"""Tests for the programmatic experiment runner."""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    experiment_e4,
    experiment_e5,
    run_all_experiments,
)
from repro.analysis.report import ExperimentReport


class TestIndividualExperiments:
    def test_e4_standalone(self):
        report = ExperimentReport()
        experiment_e4(report)
        assert len(report.records) == 1
        assert report.records[0].holds
        assert "Theorem 3" in report.records[0].experiment

    def test_e5_standalone(self):
        report = ExperimentReport()
        experiment_e5(report)
        assert report.all_hold


class TestFullPass:
    @pytest.fixture(scope="class")
    def full_report(self):
        return run_all_experiments()

    def test_every_experiment_contributes(self, full_report):
        assert len(full_report.records) >= len(ALL_EXPERIMENTS)

    def test_all_claims_hold(self, full_report):
        assert full_report.all_hold, [
            r.experiment for r in full_report.failing()
        ]

    def test_coverage_of_all_paper_results(self, full_report):
        text = full_report.to_markdown()
        for needle in (
            "Theorem 1",
            "Corollary 1",
            "Theorem 2",
            "Theorem 3",
            "Theorem 4",
            "Lemma 1",
            "Theorem 5",
            "Theorem 6",
            "Theorem 7",
            "trade-off",
            "comparison",
            "ablation",
        ):
            assert needle in text, needle

    def test_attacks_included(self, full_report):
        attacks = [r for r in full_report.records if "attack" in r.experiment]
        assert len(attacks) == 2
        assert all(r.holds for r in attacks)
