"""Tests for experiment records and reports."""

from repro.analysis.report import ExperimentReport


class TestExperimentReport:
    def test_add_and_all_hold(self):
        report = ExperimentReport()
        report.add("E4 / Theorem 3", "≤ 2t²+2t msgs", "t=3", "24 ≤ 24", True)
        report.add("E5 / Theorem 4", "≤ 5t²+5t msgs", "t=3", "60 ≤ 60", True)
        assert report.all_hold
        assert report.failing() == []

    def test_failing_records_surface(self):
        report = ExperimentReport()
        report.add("E1", "claim", "setup", "violated", False)
        assert not report.all_hold
        assert len(report.failing()) == 1

    def test_markdown_rendering(self):
        report = ExperimentReport()
        report.add("E4", "claim text", "t=2", "12 ≤ 12", True)
        text = report.to_markdown()
        assert "| experiment |" in text
        assert "| E4 | claim text | t=2 | 12 ≤ 12 | yes |" in text
        assert str(report) == text

    def test_failures_render_loudly(self):
        report = ExperimentReport()
        report.add("E9", "c", "s", "m", False)
        assert "| NO |" in report.to_markdown()
