"""Parse ``repro run --faults`` / ``repro fuzz`` fault specs into plans.

The spec grammar (clauses separated by ``;``):

* ``crash:PID@PHASE`` or ``crash:PID@PHASE-RECOVERY`` — crash-stop at
  PHASE, optionally recovering at RECOVERY.
* ``omit-send:PID:RATE[@FIRST[-LAST]]`` — drop each of PID's sends with
  probability RATE during the window.
* ``omit-recv:PID:RATE[@FIRST[-LAST]]`` — drop each message to PID.
* ``drop:SRC->DST[@FIRST[-LAST]]`` — sever one directed link.
* ``delay:SRC->DST:K[@FIRST[-LAST]]`` — deliver K phases late.
* ``dup:SRC->DST[:COPIES][@FIRST[-LAST]]`` — duplicate deliveries.
* ``partition:P1,P2,...[@FIRST[-LAST]]`` — cut the listed group off from
  the rest of the network.
* ``random:SEED:RATE`` — a seeded benign plan from
  :func:`~repro.transport.faults.random_plan` (needs the system shape,
  which the CLI supplies from the algorithm under test).
* ``seed:N`` — the seed for the probabilistic clauses (default 0).

Example: ``--faults "crash:2@1;drop:0->4@2-3;omit-send:3:0.5"``.
"""

from __future__ import annotations

from repro.transport.faults import (
    CrashFault,
    Delay,
    Duplicate,
    Fault,
    FaultPlan,
    LinkDrop,
    Partition,
    ReceiveOmission,
    SendOmission,
    random_plan,
)


class FaultSpecError(ValueError):
    """The spec string does not parse; the message names the bad clause."""


def _window(text: str) -> tuple[str, int, int | None]:
    """Split a trailing ``@FIRST[-LAST]`` window off *text*."""
    body, sep, window = text.partition("@")
    if not sep:
        return text, 1, None
    first_text, dash, last_text = window.partition("-")
    try:
        first = int(first_text)
        last = int(last_text) if dash else None
    except ValueError as error:
        raise FaultSpecError(f"bad phase window {window!r}") from error
    return body, first, last


def _link(text: str, clause: str) -> tuple[int, int]:
    src_text, arrow, dst_text = text.partition("->")
    if not arrow:
        raise FaultSpecError(f"{clause!r}: expected SRC->DST, got {text!r}")
    try:
        return int(src_text), int(dst_text)
    except ValueError as error:
        raise FaultSpecError(f"{clause!r}: non-numeric link {text!r}") from error


def parse_fault_plan(
    spec: str, *, n: int, t: int, num_phases: int
) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI *spec* (see module docstring).

    *n*, *t* and *num_phases* describe the system under test; only the
    ``random:`` clause consumes them.

    Raises:
        FaultSpecError: on any clause that does not parse.
    """
    faults: list[Fault] = []
    seed = 0
    for clause in (c.strip() for c in spec.split(";")):
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        try:
            if kind == "crash":
                body, first, last = _window(rest)
                if "@" in rest:
                    faults.append(
                        CrashFault(
                            pid=int(body),
                            phase=first,
                            recovery_phase=None if last is None else last + 1,
                        )
                    )
                else:
                    faults.append(CrashFault(pid=int(body)))
            elif kind in ("omit-send", "omit-recv"):
                body, first, last = _window(rest)
                pid_text, _, rate_text = body.partition(":")
                cls = SendOmission if kind == "omit-send" else ReceiveOmission
                faults.append(
                    cls(
                        pid=int(pid_text),
                        rate=float(rate_text) if rate_text else 1.0,
                        first=first,
                        last=last,
                    )
                )
            elif kind == "drop":
                body, first, last = _window(rest)
                src, dst = _link(body, clause)
                faults.append(LinkDrop(src=src, dst=dst, first=first, last=last))
            elif kind == "delay":
                body, first, last = _window(rest)
                link_text, _, delay_text = body.partition(":")
                src, dst = _link(link_text, clause)
                faults.append(
                    Delay(
                        src=src,
                        dst=dst,
                        delay=int(delay_text) if delay_text else 1,
                        first=first,
                        last=last,
                    )
                )
            elif kind == "dup":
                body, first, last = _window(rest)
                link_text, _, copies_text = body.partition(":")
                src, dst = _link(link_text, clause)
                faults.append(
                    Duplicate(
                        src=src,
                        dst=dst,
                        copies=int(copies_text) if copies_text else 2,
                        first=first,
                        last=last,
                    )
                )
            elif kind == "partition":
                body, first, last = _window(rest)
                group = tuple(int(p) for p in body.split(",") if p)
                if not group:
                    raise FaultSpecError(f"{clause!r}: empty partition group")
                faults.append(Partition(group=group, first=first, last=last))
            elif kind == "random":
                seed_text, _, rate_text = rest.partition(":")
                seed = int(seed_text)
                generated = random_plan(
                    seed,
                    n=n,
                    t=t,
                    num_phases=num_phases,
                    rate=float(rate_text) if rate_text else 0.2,
                )
                faults.extend(generated.faults)
            elif kind == "seed":
                seed = int(rest)
            else:
                raise FaultSpecError(
                    f"unknown fault clause {clause!r}; kinds: crash, omit-send, "
                    f"omit-recv, drop, delay, dup, partition, random, seed"
                )
        except FaultSpecError:
            raise
        except ValueError as error:
            raise FaultSpecError(f"bad fault clause {clause!r}: {error}") from error
    return FaultPlan(faults=tuple(faults), seed=seed)
