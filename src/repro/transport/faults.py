"""Fault plans: seeded, picklable descriptions of delivery faults.

A :class:`FaultPlan` is plain data — a tuple of fault records plus a seed
for the probabilistic ones — so it pickles across the sweep worker pool
and round-trips through JSON (schema ``repro-fault/1``) for the corpus
and the CLI.  The :class:`~repro.transport.faulty.FaultyTransport`
interprets the plan during delivery; nothing here touches the runner.

Every fault kind except ``delay`` is *Byzantine-expressible*: its visible
effect is confined to the messages of one processor, so a Byzantine
adversary corrupting that processor could have produced the same
histories.  That processor is the fault's :func:`excused <excused_processors>`
party, and the crash-tolerant oracle (:mod:`repro.fuzz.oracle`) demands
Byzantine Agreement among everyone else.  ``delay`` breaks lock-step
itself (a phase-``k`` envelope landing at ``k + 1 + d``) and therefore
excuses the receiver too; plans containing delays are outside the
benign-classification guarantee, which is why :func:`random_plan` never
generates them.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Iterable, Mapping, Union

from repro.core.types import ProcessorId

#: Version tag carried by every serialised plan and every ``fault`` trace
#: event.  Bump on any field change; consumers must reject unknown majors.
FAULT_SCHEMA = "repro-fault/1"


def unit_coin(seed: int, *key: object) -> float:
    """A deterministic coin in ``[0, 1)`` keyed by *seed* and *key*.

    Unlike ``random.Random``, the value depends only on the arguments —
    not on how many coins were flipped before — so omission decisions are
    identical whatever order the transport inspects envelopes in.
    """
    text = ":".join(str(part) for part in (seed, *key)).encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


class _Window:
    """Mixin: a fault active on phases ``first <= phase <= last``."""

    first: int
    last: int | None

    def active(self, phase: int) -> bool:
        """Whether this fault applies to messages of *phase*."""
        if phase < self.first:
            return False
        return self.last is None or phase <= self.last


@dataclass(frozen=True)
class CrashFault(_Window):
    """Crash-stop of *pid*: from *phase* on it neither sends nor receives.

    With a *recovery_phase* the processor comes back (a crash-recovery
    fault): sends and receives resume at that phase.  The processor's
    protocol instance keeps running locally either way — the crash is a
    property of the network's view of it, which is exactly the
    omission-failure reading of a crash in a lock-step model.
    """

    kind: ClassVar[str] = "crash"
    pid: ProcessorId
    phase: int = 1
    recovery_phase: int | None = None

    @property
    def first(self) -> int:  # type: ignore[override]
        return self.phase

    @property
    def last(self) -> int | None:  # type: ignore[override]
        return None if self.recovery_phase is None else self.recovery_phase - 1


@dataclass(frozen=True)
class SendOmission(_Window):
    """Each message *pid* sends is dropped with probability *rate*."""

    kind: ClassVar[str] = "omission_send"
    pid: ProcessorId
    rate: float = 1.0
    first: int = 1
    last: int | None = None


@dataclass(frozen=True)
class ReceiveOmission(_Window):
    """Each message addressed to *pid* is dropped with probability *rate*."""

    kind: ClassVar[str] = "omission_recv"
    pid: ProcessorId
    rate: float = 1.0
    first: int = 1
    last: int | None = None


@dataclass(frozen=True)
class LinkDrop(_Window):
    """Every message on the directed link *src* → *dst* is dropped."""

    kind: ClassVar[str] = "drop"
    src: ProcessorId
    dst: ProcessorId
    first: int = 1
    last: int | None = None


@dataclass(frozen=True)
class Delay(_Window):
    """Messages on *src* → *dst* arrive *delay* phases late.

    A phase-``k`` send is delivered at ``k + 1 + delay`` instead of
    ``k + 1``; a message due past the final phase is lost (recorded as a
    ``lost`` fault event at the end of the run).
    """

    kind: ClassVar[str] = "delay"
    src: ProcessorId
    dst: ProcessorId
    delay: int = 1
    first: int = 1
    last: int | None = None


@dataclass(frozen=True)
class Duplicate(_Window):
    """Messages on *src* → *dst* are delivered *copies* times."""

    kind: ClassVar[str] = "duplicate"
    src: ProcessorId
    dst: ProcessorId
    copies: int = 2
    first: int = 1
    last: int | None = None


@dataclass(frozen=True)
class Partition(_Window):
    """A network partition: messages crossing the cut between *group* and
    its complement are dropped while the partition is active."""

    kind: ClassVar[str] = "partition"
    group: tuple[ProcessorId, ...]
    first: int = 1
    last: int | None = None

    def severs(self, src: ProcessorId, dst: ProcessorId) -> bool:
        """Whether the *src* → *dst* edge crosses the cut."""
        return (src in self.group) != (dst in self.group)


Fault = Union[
    CrashFault,
    SendOmission,
    ReceiveOmission,
    LinkDrop,
    Delay,
    Duplicate,
    Partition,
]

#: JSON ``kind`` → fault class, for :func:`fault_from_json`.
FAULT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        CrashFault,
        SendOmission,
        ReceiveOmission,
        LinkDrop,
        Delay,
        Duplicate,
        Partition,
    )
}


def fault_to_json(fault: Fault) -> dict[str, Any]:
    """One fault as a flat JSON object tagged with its ``kind``."""
    data: dict[str, Any] = {"kind": fault.kind}
    for field in fields(fault):
        value = getattr(fault, field.name)
        data[field.name] = list(value) if isinstance(value, tuple) else value
    return data


def fault_from_json(data: Mapping[str, Any]) -> Fault:
    """Rebuild a fault from :func:`fault_to_json` output."""
    kind = data.get("kind")
    cls = FAULT_KINDS.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}")
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    if cls is Partition and "group" in kwargs:
        kwargs["group"] = tuple(kwargs["group"])
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ValueError(f"malformed {kind!r} fault: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable set of delivery faults (plain picklable data)."""

    faults: tuple[Fault, ...] = ()
    #: Seed for the probabilistic faults' :func:`unit_coin` flips.
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (behaviourally fault-free)."""
        return not self.faults

    def of_kind(self, kind: str) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == kind)

    def describe(self) -> str:
        if self.is_empty:
            return "no faults"
        parts = []
        for fault in self.faults:
            data = fault_to_json(fault)
            data.pop("kind")
            inner = ", ".join(f"{k}={v}" for k, v in data.items() if v is not None)
            parts.append(f"{fault.kind}({inner})")
        return ", ".join(parts)

    # ------------------------------------------------------------------ JSON

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": FAULT_SCHEMA,
            "seed": self.seed,
            "faults": [fault_to_json(f) for f in self.faults],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        schema = data.get("schema", FAULT_SCHEMA)
        if schema != FAULT_SCHEMA:
            raise ValueError(f"unsupported fault-plan schema {schema!r}")
        return cls(
            faults=tuple(fault_from_json(f) for f in data.get("faults", ())),
            seed=int(data.get("seed", 0)),
        )


#: The fault kinds :func:`random_plan` draws from — the Byzantine-
#: expressible, omission-class kinds only (no delays, no duplicates), so
#: a generated plan is *benign*: the crash-tolerant oracle can soundly
#: demand agreement among the unexcused processors.
BENIGN_KINDS = ("crash", "omission_send", "omission_recv", "drop", "partition")


def random_plan(
    seed: int,
    *,
    n: int,
    t: int,
    num_phases: int,
    rate: float,
    kinds: Iterable[str] = BENIGN_KINDS,
) -> FaultPlan:
    """A seeded benign fault plan for chaos campaigns.

    Deterministic in its arguments.  At most ``t`` processors carry
    faults, so the faulty-plus-excused budget of the crash-tolerant
    oracle is respected by construction: any disagreement among the
    *other* processors is a genuine safety finding, never an artifact of
    over-faulting.  *rate* scales both how many processors are faulted
    and the per-message omission probabilities.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be within [0, 1], got {rate}")
    rng = random.Random(seed)
    kinds = tuple(kinds)
    budget = max(1, min(t, round(t * rate))) if rate > 0 else 0
    pids = rng.sample(range(n), min(budget, n))
    faults: list[Fault] = []
    for pid in pids:
        kind = rng.choice(kinds)
        first = rng.randint(1, max(1, num_phases))
        if kind == "crash":
            recovery = None
            if num_phases - first >= 2 and rng.random() < 0.3:
                recovery = rng.randint(first + 1, num_phases)
            faults.append(CrashFault(pid=pid, phase=first, recovery_phase=recovery))
        elif kind == "omission_send":
            faults.append(SendOmission(pid=pid, rate=min(1.0, rate * 2), first=first))
        elif kind == "omission_recv":
            faults.append(ReceiveOmission(pid=pid, rate=min(1.0, rate * 2), first=first))
        elif kind == "drop":
            dst = rng.choice([q for q in range(n) if q != pid])
            faults.append(LinkDrop(src=pid, dst=dst, first=first))
        elif kind == "partition":
            # The faulted pid is alone on its side of the cut, so only its
            # links are severed — the excused budget stays at one pid.
            faults.append(
                Partition(group=(pid,), first=first, last=min(num_phases, first + 1))
            )
        else:
            raise ValueError(f"unknown random-plan fault kind {kind!r}")
    return FaultPlan(faults=tuple(faults), seed=seed)


def excused_processors(fault_events: Iterable[Mapping[str, Any]]) -> frozenset[int]:
    """The processors a fault-aware oracle must excuse, from trace events.

    The mapping implements the Byzantine-projection argument from the
    module docstring: for every fault kind whose effect a Byzantine
    adversary could reproduce by corrupting one processor, that processor
    is excused; ``delay``/``lost`` events are not expressible and excuse
    both endpoints.
    """
    excused: set[int] = set()
    for event in fault_events:
        kind = event.get("kind")
        if kind == "crash":
            excused.add(int(event["pid"]))
        elif kind in ("omission_send", "drop", "partition", "duplicate"):
            excused.add(int(event["src"]))
        elif kind == "omission_recv":
            excused.add(int(event["dst"]))
        elif kind in ("delay", "lost"):
            excused.add(int(event["src"]))
            excused.add(int(event["dst"]))
    return frozenset(excused)
