"""Pluggable transport layer: who owns message delivery.

The lock-step runner used to hard-code perfect delivery; this package
makes delivery a :class:`~repro.transport.base.Transport` seam:

* :class:`~repro.transport.base.LockstepTransport` — the perfect
  synchronous network, byte-identical to the seed routing (pinned by the
  equivalence tests in ``tests/transport``);
* :class:`~repro.transport.faulty.FaultyTransport` — a decorator driven
  by a seeded, picklable :class:`~repro.transport.faults.FaultPlan`
  injecting crash-stop (with optional recovery), send/receive omissions,
  link drops, delays, duplicates, and partitions, each recorded as a
  schema-versioned ``fault`` event in the ``repro-trace/1`` stream.

The fault vocabulary and the benign/Byzantine classification rationale
live in :mod:`repro.transport.faults`; ``docs/architecture.md`` has the
life-of-a-message walk-through and ``docs/telemetry.md`` the event
schema.
"""

from repro.transport.base import LockstepTransport, Transport
from repro.transport.faults import (
    BENIGN_KINDS,
    FAULT_SCHEMA,
    CrashFault,
    Delay,
    Duplicate,
    Fault,
    FaultPlan,
    LinkDrop,
    Partition,
    ReceiveOmission,
    SendOmission,
    excused_processors,
    random_plan,
    unit_coin,
)
from repro.transport.faulty import FaultyTransport
from repro.transport.spec import FaultSpecError, parse_fault_plan

__all__ = [
    "BENIGN_KINDS",
    "FAULT_SCHEMA",
    "CrashFault",
    "Delay",
    "Duplicate",
    "Fault",
    "FaultPlan",
    "FaultSpecError",
    "FaultyTransport",
    "LinkDrop",
    "LockstepTransport",
    "Partition",
    "ReceiveOmission",
    "SendOmission",
    "Transport",
    "excused_processors",
    "parse_fault_plan",
    "random_plan",
    "unit_coin",
]
