"""The Transport protocol: who owns phase delivery, and the lockstep backend.

The runner's synchronous model says *what* is delivered (everything sent
in phase ``k`` arrives at the beginning of ``k + 1``); a
:class:`Transport` decides *whether and when*.  The runner collects every
phase's envelopes — correct traffic first, in ascending pid order, then
the adversary's — and hands the batch to the transport, which returns the
next phase's inboxes and may record ``fault`` events for anything it did
to the traffic along the way.

:class:`LockstepTransport` is the perfect network: it reproduces the
seed routing byte for byte (the equivalence tests in ``tests/transport``
pin this against both ``_route_sorted`` and ``_route_merged``).
:class:`~repro.transport.faulty.FaultyTransport` decorates any base
transport with a :class:`~repro.transport.faults.FaultPlan`.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.core.message import Envelope
from repro.core.types import ProcessorId


@runtime_checkable
class Transport(Protocol):
    """Owns message delivery for one run at a time.

    The runner drives the lifecycle: one :meth:`begin_run`, then one
    :meth:`deliver` per phase (with :meth:`drain_faults` after each),
    then one :meth:`end_run`.  Implementations may keep per-run state
    (delayed messages, fault counters); ``begin_run`` must reset it so a
    transport instance can be reused across sequential runs.
    """

    def begin_run(
        self, *, n: int, num_phases: int, correct: frozenset[ProcessorId]
    ) -> None:
        """Reset per-run state; called once before phase 1."""
        ...

    def deliver(
        self, phase: int, sent: list[Envelope], correct_count: int
    ) -> dict[ProcessorId, list[Envelope]]:
        """Route the envelopes sent in *phase* into phase ``phase + 1``
        inboxes (each inbox sorted by source).

        The first *correct_count* envelopes of *sent* were produced by
        iterating correct processors in ascending pid order — the
        precondition the merge-based routing exploits.
        """
        ...

    def drain_faults(self) -> list[dict[str, Any]]:
        """Fault events recorded since the last drain (empty when clean)."""
        ...

    def end_run(self, final_phase: int) -> list[dict[str, Any]]:
        """Close the run; returns events for anything still in flight."""
        ...


class LockstepTransport:
    """The perfect synchronous network — byte-identical to the seed routing.

    *delivery* selects the routing strategy exactly like the runner's
    ``delivery=`` keyword: ``"merged"`` (linear merge, the optimised
    default) or ``"sorted"`` (the reference per-inbox sort).  Both produce
    identical inboxes; the transport exists so faulty decorators and
    future asynchronous backends have a seam to plug into.

    Stateless, so one instance is safely shared across runs (and across
    threads, for what the lock-step runner cares).
    """

    __slots__ = ("_route_sorted",)

    def __init__(self, delivery: str = "merged") -> None:
        if delivery not in ("merged", "sorted"):
            raise ValueError(
                f"unknown delivery strategy {delivery!r}; expected 'merged' or 'sorted'"
            )
        self._route_sorted = delivery == "sorted"

    def begin_run(
        self, *, n: int, num_phases: int, correct: frozenset[ProcessorId]
    ) -> None:
        """Nothing to reset — the perfect network is stateless."""

    def deliver(
        self, phase: int, sent: list[Envelope], correct_count: int
    ) -> dict[ProcessorId, list[Envelope]]:
        """Route everything, losing nothing: the paper's synchronous model."""
        from repro.core.runner import _route_merged, _route_sorted

        if self._route_sorted:
            return _route_sorted(sent)
        return _route_merged(sent, correct_count)

    def drain_faults(self) -> list[dict[str, Any]]:
        """A perfect network records no faults."""
        return []

    def end_run(self, final_phase: int) -> list[dict[str, Any]]:
        """Nothing in flight: lock-step delivery never buffers."""
        return []
