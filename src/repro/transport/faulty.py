"""FaultyTransport: a fault-injecting decorator over any base transport.

Wraps a base :class:`~repro.transport.base.Transport` (the perfect
lockstep network by default) and applies a seeded
:class:`~repro.transport.faults.FaultPlan` to every phase's traffic:
crash-stop processors (with optional recovery), send/receive omissions,
per-link drops, k-phase delays, duplicates, and network partitions.

Every intervention is recorded as a schema-versioned ``fault`` event
(``repro-fault/1``) which the runner forwards into the ``repro-trace/1``
sinks — ``repro inspect`` can attribute any divergence from the
fault-free run to the exact injected faults.  The phase-0 input edge is
exempt: a processor always knows its own private value; withholding the
input is an adversary strategy, not a network fault.

With an empty plan the decorator is behaviourally transparent: the
equivalence tests pin that traces and metrics are byte-identical to the
undecorated base transport.
"""

from __future__ import annotations

from typing import Any

from repro.core.message import Envelope
from repro.core.types import ProcessorId
from repro.transport.base import LockstepTransport, Transport
from repro.transport.faults import FAULT_SCHEMA, FaultPlan, unit_coin


class FaultyTransport:
    """Applies a :class:`FaultPlan` around a base transport's routing.

    Per-run state (delayed envelopes, recorded events) is reset by
    :meth:`begin_run`, so one instance can be reused across sequential
    runs — each run replays the same plan, which is what a seeded chaos
    campaign wants.
    """

    def __init__(self, plan: FaultPlan, base: Transport | None = None) -> None:
        self.plan = plan
        self.base: Transport = base if base is not None else LockstepTransport()
        self._delayed: dict[int, list[Envelope]] = {}
        self._events: list[dict[str, Any]] = []
        self._num_phases = 0

    # ------------------------------------------------------------- lifecycle

    def begin_run(
        self, *, n: int, num_phases: int, correct: frozenset[ProcessorId]
    ) -> None:
        self._delayed = {}
        self._events = []
        self._num_phases = num_phases
        self.base.begin_run(n=n, num_phases=num_phases, correct=correct)

    def deliver(
        self, phase: int, sent: list[Envelope], correct_count: int
    ) -> dict[ProcessorId, list[Envelope]]:
        """Filter *sent* through the plan, then route the survivors.

        Send-side faults (sender crash, send omission, link drop,
        partition, delay capture, duplication) are judged at the sending
        phase; receive-side faults (receiver crash, receive omission) at
        the delivery phase ``phase + 1`` — including for envelopes that
        were delayed into this delivery round.
        """
        survivors: list[Envelope] = []
        extras: list[Envelope] = []
        surviving_correct = 0
        for index, envelope in enumerate(sent):
            copies = self._send_side(phase, envelope)
            if copies == 0:
                continue
            if not self._receivable(phase + 1, envelope):
                continue
            survivors.append(envelope)
            if index < correct_count:
                surviving_correct += 1
            extras.extend([envelope] * (copies - 1))
        # Envelopes delayed from earlier phases that are due now; their
        # receive side is judged against *this* delivery phase.
        for envelope in self._delayed.pop(phase + 1, []):
            if self._receivable(phase + 1, envelope):
                extras.append(envelope)
        # Survivors keep the runner's ordering invariant (a filtered
        # subsequence of correct-then-adversary traffic); duplicates and
        # late arrivals are routed as adversary-style extras, so the
        # base transport's merge stays valid.
        return self.base.deliver(phase, survivors + extras, surviving_correct)

    def drain_faults(self) -> list[dict[str, Any]]:
        events, self._events = self._events, []
        return events

    def end_run(self, final_phase: int) -> list[dict[str, Any]]:
        """Report delayed envelopes that never made it before the end."""
        for due_phase in sorted(self._delayed):
            for envelope in self._delayed[due_phase]:
                self._record(
                    "lost",
                    phase=envelope.phase,
                    src=envelope.src,
                    dst=envelope.dst,
                    detail=f"delayed past the final phase (due {due_phase})",
                )
        self._delayed = {}
        leftovers = self.base.end_run(final_phase)
        return self.drain_faults() + list(leftovers)

    # ------------------------------------------------------------ fault logic

    def _send_side(self, phase: int, envelope: Envelope) -> int:
        """Judge sender-side faults; returns how many copies to deliver
        (0 = dropped or captured for later delivery)."""
        if envelope.is_input_edge():
            return 1
        src, dst = envelope.src, envelope.dst
        for fault in self.plan.faults:
            kind = fault.kind
            if kind == "crash" and fault.pid == src and fault.active(phase):
                self._record(
                    "crash", phase=phase, pid=src, src=src, dst=dst,
                    detail=f"sender {src} crashed at phase {fault.phase}",
                )
                return 0
            if (
                kind == "omission_send"
                and fault.pid == src
                and fault.active(phase)
                and self._coin("omission_send", phase, envelope) < fault.rate
            ):
                self._record(
                    "omission_send", phase=phase, src=src, dst=dst,
                    detail=f"send omission at rate {fault.rate}",
                )
                return 0
            if (
                kind == "drop"
                and fault.src == src
                and fault.dst == dst
                and fault.active(phase)
            ):
                self._record(
                    "drop", phase=phase, src=src, dst=dst,
                    detail=f"link {src}->{dst} down",
                )
                return 0
            if kind == "partition" and fault.active(phase) and fault.severs(src, dst):
                self._record(
                    "partition", phase=phase, src=src, dst=dst,
                    detail=f"cut {{{','.join(map(str, fault.group))}}} | rest",
                )
                return 0
            if (
                kind == "delay"
                and fault.src == src
                and fault.dst == dst
                and fault.active(phase)
            ):
                due = phase + 1 + fault.delay
                self._delayed.setdefault(due, []).append(envelope)
                self._record(
                    "delay", phase=phase, src=src, dst=dst, until=due,
                    detail=f"delivery postponed to phase {due}",
                )
                return 0
        copies = 1
        for fault in self.plan.of_kind("duplicate"):
            if fault.src == src and fault.dst == dst and fault.active(phase):
                copies = max(copies, fault.copies)
                self._record(
                    "duplicate", phase=phase, src=src, dst=dst,
                    copies=copies, detail=f"delivered {copies} times",
                )
        return copies

    def _receivable(self, delivery_phase: int, envelope: Envelope) -> bool:
        """Judge receiver-side faults at the delivery phase."""
        dst = envelope.dst
        for fault in self.plan.faults:
            kind = fault.kind
            if kind == "crash" and fault.pid == dst and fault.active(delivery_phase):
                self._record(
                    "crash", phase=delivery_phase, pid=dst,
                    src=envelope.src, dst=dst,
                    detail=f"receiver {dst} crashed at phase {fault.phase}",
                )
                return False
            if (
                kind == "omission_recv"
                and fault.pid == dst
                and fault.active(delivery_phase)
                and self._coin("omission_recv", delivery_phase, envelope) < fault.rate
            ):
                self._record(
                    "omission_recv", phase=delivery_phase,
                    src=envelope.src, dst=dst,
                    detail=f"receive omission at rate {fault.rate}",
                )
                return False
        return True

    def _coin(self, kind: str, phase: int, envelope: Envelope) -> float:
        """An order-independent coin for one (fault kind, envelope) pair."""
        return unit_coin(
            self.plan.seed, kind, phase, envelope.src, envelope.dst, envelope.phase
        )

    def _record(self, kind: str, **data: Any) -> None:
        event: dict[str, Any] = {
            "event": "fault",
            "fault_schema": FAULT_SCHEMA,
            "kind": kind,
        }
        event.update(data)
        self._events.append(event)
