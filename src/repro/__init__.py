"""repro — a reproduction of Dolev & Reischuk,
*Bounds on Information Exchange for Byzantine Agreement* (PODC 1982 /
JACM 32(1), 1985).

The library contains, built from scratch:

* a lock-step synchronous simulator implementing the paper's formal model
  of phases, histories and individual subhistories (:mod:`repro.core`);
* a registry-oracle signature scheme with the exact properties the proofs
  assume — unforgeability plus collusion (:mod:`repro.crypto`);
* the paper's Algorithms 1–5 and the published baselines — Dolev–Strong
  (classic and active-set) and oral messages OM(t)
  (:mod:`repro.algorithms`);
* an adversary framework including the lower-bound proofs' constructions
  (:mod:`repro.adversary`);
* **executable versions of Theorems 1 and 2** — the splitting and
  starve-and-switch adversaries actually break under-communicating
  algorithms (:mod:`repro.bounds`);
* sweep/report tooling that regenerates every bound table
  (:mod:`repro.analysis`).

Quickstart::

    from repro import Algorithm5, run, check_byzantine_agreement

    algorithm = Algorithm5(n=100, t=3)      # O(n + t^2) messages
    result = run(algorithm, input_value=1)
    assert check_byzantine_agreement(result).ok
    print(result.metrics.messages_by_correct, "messages")
"""

# repro.core must initialise before repro.adversary: the runner (part of
# core) depends on the adversary interface, so core's __init__ drives that
# import chain in the order that avoids a cycle.
from repro.core import (
    AgreementAlgorithm,
    ConfigurationError,
    Context,
    Envelope,
    History,
    MetricsLedger,
    Processor,
    ReproError,
    RunResult,
    ValidationReport,
    check_byzantine_agreement,
    require_agreement,
    run,
)
from repro.adversary import (
    Adversary,
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    IgnoreFirstAdversary,
    NullAdversary,
    ReplayAdversary,
    ScriptedAdversary,
    SelectiveSilenceAdversary,
    SilentAdversary,
    SimulatingAdversary,
)
from repro.algorithms import (
    ALGORITHMS,
    ActiveSetBroadcast,
    Algorithm1,
    Algorithm2,
    Algorithm3,
    Algorithm4,
    Algorithm5,
    DolevStrong,
    OralMessages,
    check_lemma2,
)
from repro.bounds import (
    formulas,
    theorem1_experiment,
    theorem2_experiment,
)
from repro.crypto import Signature, SignatureChain, SignatureService

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ActiveSetBroadcast",
    "Adversary",
    "AgreementAlgorithm",
    "Algorithm1",
    "Algorithm2",
    "Algorithm3",
    "Algorithm4",
    "Algorithm5",
    "ConfigurationError",
    "Context",
    "CrashAdversary",
    "DolevStrong",
    "Envelope",
    "EquivocatingTransmitter",
    "GarbageAdversary",
    "History",
    "IgnoreFirstAdversary",
    "MetricsLedger",
    "NullAdversary",
    "OralMessages",
    "Processor",
    "ReplayAdversary",
    "ReproError",
    "RunResult",
    "ScriptedAdversary",
    "SelectiveSilenceAdversary",
    "Signature",
    "SignatureChain",
    "SignatureService",
    "SilentAdversary",
    "SimulatingAdversary",
    "ValidationReport",
    "check_byzantine_agreement",
    "check_lemma2",
    "formulas",
    "require_agreement",
    "run",
    "theorem1_experiment",
    "theorem2_experiment",
    "__version__",
]
