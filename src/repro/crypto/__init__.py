"""Simulated authentication: the registry-oracle signature scheme."""

from repro.crypto.chains import SignatureChain, chain_body, forge_chain
from repro.crypto.signatures import Signature, SignatureService, SigningKey

__all__ = [
    "Signature",
    "SignatureChain",
    "SignatureService",
    "SigningKey",
    "chain_body",
    "forge_chain",
]
