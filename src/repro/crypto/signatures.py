"""Simulated unforgeable signature scheme (the paper's "authentication").

The paper assumes a signature scheme in the style of Diffie–Hellman [2] and
RSA [16]: every processor can sign its messages so that *"every receiver
will recognize them as being signed by it and no one can change the contents
of a message or the signature undetectably"*, and faulty processors may
collude — any message carrying only faulty processors' signatures can be
fabricated by them.

The reproduction replaces public-key cryptography with a **registry oracle**,
which preserves exactly the properties the proofs use:

* *Existential unforgeability*: :meth:`SignatureService.sign` requires the
  signer's :class:`SigningKey`, a capability object handed out exactly once
  per processor by the runner.  Correct processors' keys live only inside
  their own runtime context, so no other party can produce their signatures.
* *Collusion*: the adversary receives the keys of every faulty processor and
  can therefore sign anything on their behalf — including retroactively and
  for payloads a correct processor never saw.
* *Verifiability*: anyone can call :meth:`SignatureService.verify`; no key is
  needed to verify.

The substitution is documented in DESIGN.md §4.  It is deterministic, free,
and — unlike real crypto — lets tests *attempt* forgeries and assert they
are rejected (:meth:`SignatureService.forge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ForgeryError
from repro.core.message import UninternableError, intern_key, payload_digest
from repro.core.types import ProcessorId


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature of *signer* over a payload with the given digest.

    Signatures are plain data and travel inside payloads; validity is not a
    property of the object but of the registry — call
    :meth:`SignatureService.verify` to check it.  (A faulty processor can
    construct a ``Signature`` object naming anyone; verification is what
    exposes the fake.)
    """

    signer: ProcessorId
    digest: str


class SigningKey:
    """Capability to sign on behalf of one processor.

    Only the :class:`SignatureService` can mint keys; holding the key *is*
    the authorisation.  The runner gives each correct processor its own key
    (inside its :class:`~repro.core.protocol.Context`) and gives the
    adversary the keys of all faulty processors.
    """

    __slots__ = ("pid", "_service")

    def __init__(self, pid: ProcessorId, service: "SignatureService") -> None:
        self.pid = pid
        self._service = service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SigningKey(pid={self.pid})"


class SignatureService:
    """Registry-backed signature oracle shared by one simulated system.

    One instance exists per run.  It records every ``(signer, digest)`` pair
    produced through a legitimate :meth:`sign` call; :meth:`verify` simply
    checks membership.  The number of legitimate signing operations is
    tracked for diagnostics (this differs from the paper's *signatures sent*
    metric, which counts signature occurrences inside sent messages — see
    :mod:`repro.core.metrics`).
    """

    #: Memo-size backstop; one run never gets near it, but a service reused
    #: across a very long sweep must not grow without bound.
    _DIGEST_MEMO_MAX = 1 << 16

    #: Whether :meth:`chain_verdict_seen` can ever answer ``True`` — lets
    #: :meth:`repro.crypto.chains.SignatureChain.verify` skip building a
    #: cache key entirely against this (the default) service.
    caches_chain_verdicts = False

    def __init__(self) -> None:
        self._issued: set[tuple[ProcessorId, str]] = set()
        self._keys: dict[ProcessorId, SigningKey] = {}
        self._sealed = False
        self._sign_operations = 0
        #: id(payload) -> (payload, digest).  Protocols forward the *same*
        #: payload object many times (relay chains re-send what they
        #: received), so identity-keyed memoisation skips the repeated
        #: canonicalisation walk.  Holding the payload in the value keeps it
        #: alive, which is what makes keying on ``id`` sound — a memoised id
        #: can never be recycled for a different object.
        self._digest_memo: dict[int, tuple[Any, str]] = {}
        #: Memo accounting: a *hit* answered from a memo (identity or, for
        #: the batch service, the shared value-keyed table); a *miss* paid
        #: the full canonical-walk-plus-hash computation.
        self.digest_memo_hits = 0
        self.digest_memo_misses = 0

    # ------------------------------------------------------------------ keys

    def key_for(self, pid: ProcessorId) -> SigningKey:
        """Return the unique signing key of *pid* (minting it on first use).

        Intended for the runner only; protocols and adversaries receive keys
        through their contexts and must not call this.  Once the runner has
        distributed every key it calls :meth:`seal`, after which this method
        raises :class:`~repro.core.errors.ForgeryError` — the enforcement
        behind "no one can change the contents of a message or the signature
        undetectably": without sealing, any adversary (or fuzz primitive)
        could mint a *correct* processor's key mid-run and forge at will.
        """
        if self._sealed:
            raise ForgeryError(
                f"signature registry is sealed; the key for processor {pid} "
                "can no longer be obtained (use forge() to build signatures "
                "that verification must reject)"
            )
        if pid not in self._keys:
            self._keys[pid] = SigningKey(pid, self)
        return self._keys[pid]

    def seal(self) -> None:
        """Stop handing out signing keys; existing keys keep working.

        The runner calls this once key distribution is complete (after
        binding the correct processors and the adversary).  Idempotent.
        """
        self._sealed = True

    # --------------------------------------------------------------- digests

    def _digest(self, payload: Any) -> str:
        """:func:`~repro.core.message.payload_digest`, memoised by identity.

        Behaviour-identical to calling ``payload_digest(payload)`` directly
        (the digest is a pure function of the payload's value); the memo only
        short-circuits the canonical walk when the very same object is signed
        or verified again.
        """
        key = id(payload)
        hit = self._digest_memo.get(key)
        if hit is not None and hit[0] is payload:
            self.digest_memo_hits += 1
            return hit[1]
        self.digest_memo_misses += 1
        digest = payload_digest(payload)
        if len(self._digest_memo) >= self._DIGEST_MEMO_MAX:
            self._digest_memo.clear()
        self._digest_memo[key] = (payload, digest)
        return digest

    # --------------------------------------------------- chain verdict hooks

    def chain_verdict_seen(self, key: Any) -> bool:
        """Whether a chain with cache key *key* already verified ``True``.

        The base service never caches (see :attr:`caches_chain_verdicts`);
        the batch engine's :class:`InternedSignatureService` overrides both
        hooks with a per-run, true-verdicts-only set — sound because the
        issued-signature set only grows within a run, so a chain that once
        verified can never stop verifying.
        """
        return False

    def chain_verdict_add(self, key: Any) -> None:
        """Record that a chain with cache key *key* verified ``True``."""

    # --------------------------------------------------------------- signing

    def sign(self, key: SigningKey, payload: Any) -> Signature:
        """Produce *key.pid*'s signature over *payload*.

        Raises :class:`~repro.core.errors.ForgeryError` if *key* was not
        minted by this service (e.g. a hand-built key, or a key from another
        run's service).
        """
        if self._keys.get(key.pid) is not key:
            raise ForgeryError(
                f"key for processor {key.pid} was not issued by this service"
            )
        digest = self._digest(payload)
        self._issued.add((key.pid, digest))
        self._sign_operations += 1
        return Signature(signer=key.pid, digest=digest)

    def endorse(self, key: SigningKey, digest: str) -> Signature:
        """Sign a raw digest directly (no payload in hand).

        Real signature schemes sign arbitrary byte strings, so a (faulty)
        key holder can always endorse a digest it has seen even without a
        canonical payload for it.  Replay adversaries use this to re-issue
        their own signatures from a recorded history inside a new
        execution — the recorded history *is* the execution being built,
        so those signatures are genuine there (see
        :mod:`repro.adversary.lowerbound`).  Correct processors never call
        this; the runner only routes it through adversary-held keys.
        """
        if self._keys.get(key.pid) is not key:
            raise ForgeryError(
                f"key for processor {key.pid} was not issued by this service"
            )
        self._issued.add((key.pid, digest))
        self._sign_operations += 1
        return Signature(signer=key.pid, digest=digest)

    def forge(self, signer: ProcessorId, payload: Any) -> Signature:
        """Build a *fake* signature naming *signer*, without its key.

        The result has the right digest but was never registered, so
        :meth:`verify` rejects it.  Used by tests and adversaries to check
        that algorithms actually verify what they receive.
        """
        return Signature(signer=signer, digest=payload_digest(payload))

    # ----------------------------------------------------------- verification

    def verify(self, signature: Signature, payload: Any) -> bool:
        """True iff *signature* was legitimately produced over *payload*."""
        if self._digest(payload) != signature.digest:
            return False
        return (signature.signer, signature.digest) in self._issued

    @property
    def sign_operations(self) -> int:
        """Number of legitimate signing operations performed so far."""
        return self._sign_operations

    @classmethod
    def fresh_registries(cls, count: int) -> tuple["SignatureService", ...]:
        """Mint *count* independent signature registries.

        Composite protocols that embed sub-protocol instances (e.g.
        interactive consistency's rotated BA copies) need one registry per
        instance.  They must obtain them here rather than constructing
        :class:`SignatureService` themselves — keeping registry creation
        inside the crypto layer is what lets ``repro lint`` rule BA003
        verify that algorithm code never mints signing authority.
        """
        return tuple(cls() for _ in range(count))

    def clone(self) -> "SignatureService":
        """An independent copy of the registry with fresh keys.

        Signatures issued in the original verify in the clone (the issued
        set is copied), but signing through the clone does not affect the
        original.  Used by the conformance checker, which replays protocol
        logic against a recorded history without polluting the run's
        registry.
        """
        copy = SignatureService()
        copy._issued = set(self._issued)
        return copy


class SharedDigestTable:
    """A value-keyed payload-digest memo shared across many runs.

    The per-service identity memo only helps when the *same object* is
    digested twice; protocols that rebuild equal payloads (signature
    chains reconstruct their link bodies on every verification) defeat it
    entirely.  This table keys on :func:`~repro.core.message.intern_key`
    — a type-tagged mirror of the canonical form — so *equal* payloads
    share one digest computation across every run of a batch.  The digest
    is a pure function of the payload's value, which is what makes
    cross-run sharing sound (unlike signature registries, which are
    strictly per-run).
    """

    #: Entry-count backstop: a full table is cleared, not grown.
    _MAX_ENTRIES = 1 << 18

    __slots__ = ("_digests", "hits", "misses")

    def __init__(self) -> None:
        self._digests: dict[Any, str] = {}
        self.hits = 0
        self.misses = 0

    def digest(self, payload: Any) -> str:
        """Digest *payload*, answering from the table when possible."""
        try:
            key = intern_key(payload)
        except UninternableError:
            self.misses += 1
            return payload_digest(payload)
        hit = self._digests.get(key)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        digest = payload_digest(payload)
        if len(self._digests) >= self._MAX_ENTRIES:
            self._digests.clear()
        self._digests[key] = digest
        return digest

    @property
    def hit_rate(self) -> float | None:
        """Fraction of lookups answered from the table (``None`` if unused)."""
        total = self.hits + self.misses
        return (self.hits / total) if total else None


class InternedSignatureService(SignatureService):
    """A per-run signature registry backed by a shared digest table.

    The batch engine mints one of these per *unique* run: the issued-
    signature set, the signing keys and the seal are strictly per-run
    (signatures from one run must never verify in another, and forgeries
    must keep failing), while digest computations — pure functions of
    payload values — are shared through *table* across the whole batch.

    It also caches chain verdicts (see
    :meth:`SignatureService.chain_verdict_seen`) — per run, true verdicts
    only, so a ``False`` caused by a not-yet-issued signature can still
    flip to ``True`` later in the run.
    """

    caches_chain_verdicts = True

    def __init__(self, table: SharedDigestTable) -> None:
        super().__init__()
        self._table = table
        self._chain_verdicts: set[Any] = set()

    def _digest(self, payload: Any) -> str:
        key = id(payload)
        hit = self._digest_memo.get(key)
        if hit is not None and hit[0] is payload:
            self.digest_memo_hits += 1
            return hit[1]
        before = self._table.hits
        digest = self._table.digest(payload)
        if self._table.hits > before:
            self.digest_memo_hits += 1
        else:
            self.digest_memo_misses += 1
        if len(self._digest_memo) >= self._DIGEST_MEMO_MAX:
            self._digest_memo.clear()
        self._digest_memo[key] = (payload, digest)
        return digest

    def chain_verdict_seen(self, key: Any) -> bool:
        """True iff an equal chain already verified in *this* run."""
        return key in self._chain_verdicts

    def chain_verdict_add(self, key: Any) -> None:
        """Remember a successful verification for the rest of this run."""
        self._chain_verdicts.add(key)
