"""Multi-signature chains.

Every authenticated algorithm in the paper relays a value with a growing
list of signatures appended: Dolev–Strong messages with ``k`` distinct
signatures at phase ``k``, Algorithm 1's *correct 1-messages* whose signers
form a simple path in the relay graph, Algorithm 2's *increasing messages*,
Algorithm 5's *valid messages* (a value plus at least ``t + 1`` active
signatures).  This module provides the common structure.

Chain convention: the ``i``-th signature signs the pair *(value, previous
signatures)* — so nobody can splice a signature out of the middle or reuse
one under a different prefix, matching the paper's assumption that contents
and signatures cannot be altered undetectably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.message import UninternableError, intern_key
from repro.core.types import ProcessorId, Value
from repro.crypto.signatures import Signature, SignatureService, SigningKey


def chain_body(value: Value, prefix: tuple[Signature, ...]) -> Any:
    """The payload that the next signature of a chain binds to.

    Exposed so adversaries can build chains by hand with faulty keys — the
    model explicitly allows colluding faulty processors to fabricate any
    message carrying only their own signatures.
    """
    return ("chain-link", value, prefix)


@dataclass(frozen=True, slots=True)
class SignatureChain:
    """A value with an ordered tuple of signatures over it.

    Immutable; :meth:`extend` returns a new chain.  Construction does not
    imply validity — receivers must call :meth:`verify`.
    """

    value: Value
    signatures: tuple[Signature, ...] = ()

    # ---------------------------------------------------------- construction

    @classmethod
    def initial(
        cls, value: Value, key: SigningKey, service: SignatureService
    ) -> "SignatureChain":
        """A fresh chain: *value* signed once by the holder of *key*."""
        signature = service.sign(key, chain_body(value, ()))
        return cls(value=value, signatures=(signature,))

    def extend(self, key: SigningKey, service: SignatureService) -> "SignatureChain":
        """Append the signature of *key*'s holder over the current chain."""
        signature = service.sign(key, chain_body(self.value, self.signatures))
        return SignatureChain(self.value, self.signatures + (signature,))

    # ------------------------------------------------------------ inspection

    @property
    def signers(self) -> tuple[ProcessorId, ...]:
        """Signer ids in signing order."""
        return tuple(sig.signer for sig in self.signatures)

    def __len__(self) -> int:
        return len(self.signatures)

    def has_signed(self, pid: ProcessorId) -> bool:
        """True iff *pid* appears among the signers."""
        return any(sig.signer == pid for sig in self.signatures)

    # ------------------------------------------------------------ validation

    def verify(self, service: SignatureService, *, distinct: bool = True) -> bool:
        """Check that every link was legitimately signed in order.

        With ``distinct=True`` (the default, and what every algorithm in the
        paper requires) a repeated signer also invalidates the chain.

        Services that cache chain verdicts (the batch engine's per-run
        :class:`~repro.crypto.signatures.InternedSignatureService`) answer
        repeated verifications of an equal chain in O(1); the default
        service always walks every link.
        """
        key = None
        if service.caches_chain_verdicts:
            key = self._verdict_key(distinct)
            if key is not None and service.chain_verdict_seen(key):
                return True
        if distinct and len(set(self.signers)) != len(self.signatures):
            return False
        prefix: tuple[Signature, ...] = ()
        for signature in self.signatures:
            if not service.verify(signature, chain_body(self.value, prefix)):
                return False
            prefix = prefix + (signature,)
        if key is not None:
            service.chain_verdict_add(key)
        return True

    def _verdict_key(self, distinct: bool) -> Any | None:
        """Value-equality cache key for this chain's verification verdict.

        ``None`` when the value cannot be interned — such chains are simply
        never cached.  Signatures are flattened to ``(signer, digest)``
        pairs, the exact data :meth:`verify` consults.
        """
        try:
            value_key = intern_key(self.value)
        except UninternableError:
            return None
        return (
            distinct,
            value_key,
            tuple((sig.signer, sig.digest) for sig in self.signatures),
        )

    def verify_prefix_signers(
        self,
        service: SignatureService,
        allowed: frozenset[ProcessorId] | set[ProcessorId],
    ) -> bool:
        """Valid chain whose signers all come from *allowed*."""
        return self.verify(service) and all(s in allowed for s in self.signers)


def forge_chain(
    value: Value,
    signers: tuple[ProcessorId, ...],
    keys: dict[ProcessorId, SigningKey],
    service: SignatureService,
) -> SignatureChain:
    """Build a chain signed by *signers* using whatever keys are available.

    For signers whose key is in *keys* (faulty colluders) a real signature is
    produced; for the rest an unregistered forgery is inserted.  The result
    verifies iff every signer's key was available — exactly the paper's
    collusion model.
    """
    chain = SignatureChain(value)
    for pid in signers:
        if pid in keys:
            chain = chain.extend(keys[pid], service)
        else:
            fake = service.forge(pid, chain_body(value, chain.signatures))
            chain = SignatureChain(value, chain.signatures + (fake,))
    return chain
