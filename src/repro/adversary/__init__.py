"""Adversary strategies, from stock Byzantine behaviours to the paper's
lower-bound proof constructions."""

from repro.adversary.base import (
    Adversary,
    AdversaryEnvironment,
    FaultySend,
    NullAdversary,
    PhaseView,
)
from repro.adversary.lowerbound import (
    IgnoreFirstAdversary,
    ReplayAdversary,
    Theorem2SwitchAdversary,
    build_split_plan,
)
from repro.adversary.standard import (
    ComposedAdversary,
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    RandomizedAdversary,
    ScriptedAdversary,
    SelectiveSilenceAdversary,
    SilentAdversary,
    SimulatingAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryEnvironment",
    "ComposedAdversary",
    "CrashAdversary",
    "EquivocatingTransmitter",
    "FaultySend",
    "GarbageAdversary",
    "IgnoreFirstAdversary",
    "NullAdversary",
    "PhaseView",
    "RandomizedAdversary",
    "ReplayAdversary",
    "ScriptedAdversary",
    "SelectiveSilenceAdversary",
    "SilentAdversary",
    "SimulatingAdversary",
    "Theorem2SwitchAdversary",
    "build_split_plan",
]
