"""Stock adversary strategies.

The most useful adversaries in practice are *deviations from correctness*:
a faulty processor that mostly follows the algorithm but crashes, stays
silent towards some peers, or feeds different inputs to different parties.
:class:`SimulatingAdversary` makes these easy to express — it hosts a real
:class:`~repro.core.protocol.Processor` instance for every faulty id and
lets subclasses intercept what that instance receives and sends.

This is exactly how the paper's lower-bound proofs construct their faulty
histories ("behaves like a correct processor except ..."), so the proof
adversaries in :mod:`repro.adversary.lowerbound` build on this module.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.adversary.base import Adversary, AdversaryEnvironment, FaultySend, PhaseView
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context, Processor
from repro.core.types import ProcessorId, Value


class SimulatingAdversary(Adversary):
    """Drives each faulty processor with a real protocol instance.

    Subclasses customise behaviour through two hooks:

    * :meth:`filter_inbox` — tamper with what the simulated processor sees
      (drop, reorder or rewrite incoming envelopes, including the phase-0
      input edge when the transmitter is faulty);
    * :meth:`transform_outbox` — tamper with what it sends (drop messages,
      change destinations or payloads, add extra traffic).

    With both hooks left as identities the faulty processors behave exactly
    like correct ones — a useful property for tests (a "faulty" history
    that is behaviourally fault-free must still reach agreement).
    """

    def __init__(self, faulty: Iterable[ProcessorId]) -> None:
        super().__init__(faulty)
        self._simulated: dict[ProcessorId, Processor] = {}

    def on_bind(self) -> None:
        env = self.env
        assert env is not None
        for pid in sorted(self.faulty):
            processor = env.algorithm.make_processor(pid)
            processor.bind(
                Context(
                    pid=pid,
                    n=env.n,
                    t=env.t,
                    transmitter=env.transmitter,
                    key=env.keys[pid],
                    service=env.service,
                    coins=env.coins,
                )
            )
            self._simulated[pid] = processor

    def simulated(self, pid: ProcessorId) -> Processor:
        """The protocol instance driving faulty processor *pid*."""
        return self._simulated[pid]

    # ----------------------------------------------------------------- hooks

    def filter_inbox(
        self, pid: ProcessorId, phase: int, inbox: Sequence[Envelope]
    ) -> Sequence[Envelope]:
        """What faulty *pid*'s simulated protocol receives this phase."""
        return inbox

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        """What faulty *pid* actually sends this phase."""
        return outgoing

    # ------------------------------------------------------------- execution

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        sends: list[FaultySend] = []
        for pid in sorted(self.faulty):
            inbox = self.filter_inbox(pid, view.phase, view.inbox(pid))
            outgoing = list(self._simulated[pid].on_phase(view.phase, tuple(inbox)))
            for dst, payload in self.transform_outbox(pid, view.phase, outgoing):
                sends.append((pid, dst, payload))
        return sends


class CrashAdversary(SimulatingAdversary):
    """Fail-stop faults: behave correctly, then crash and stay silent.

    *crash_phases* maps each faulty id to the first phase in which it no
    longer sends (a processor crashing at phase 1 never says anything).
    """

    def __init__(self, crash_phases: Mapping[ProcessorId, int]) -> None:
        super().__init__(crash_phases.keys())
        self.crash_phases = dict(crash_phases)

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        if phase >= self.crash_phases[pid]:
            return []
        return outgoing


class SilentAdversary(CrashAdversary):
    """Faulty processors that never send anything at all."""

    def __init__(self, faulty: Iterable[ProcessorId]) -> None:
        super().__init__({pid: 1 for pid in faulty})


class SelectiveSilenceAdversary(SimulatingAdversary):
    """Behave correctly except never send to the processors in *muted*.

    This is the primitive Theorem 2's proof isolates: *"the proof only uses
    the ability of a faulty processor to send to some and not to others."*
    """

    def __init__(
        self, faulty: Iterable[ProcessorId], muted: Iterable[ProcessorId]
    ) -> None:
        super().__init__(faulty)
        self.muted = frozenset(muted)

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        return [(dst, payload) for dst, payload in outgoing if dst not in self.muted]


class EquivocatingTransmitter(SimulatingAdversary):
    """A faulty transmitter that runs the real protocol once per value.

    *value_for* maps every other processor id to the value the transmitter
    should appear to have sent it.  One simulated transmitter instance runs
    per distinct value (all signing with the real key — colluding faulty
    processors may sign anything), and each destination receives the sends
    of the instance matching its assigned value.
    """

    def __init__(
        self,
        transmitter: ProcessorId,
        value_for: Mapping[ProcessorId, Value],
    ) -> None:
        super().__init__([transmitter])
        self.transmitter_id = transmitter
        self.value_for = dict(value_for)
        self._instances: dict[Value, Processor] = {}

    def on_bind(self) -> None:
        env = self.env
        assert env is not None
        for value in sorted(set(self.value_for.values()), key=repr):
            processor = env.algorithm.make_processor(self.transmitter_id)
            processor.bind(
                Context(
                    pid=self.transmitter_id,
                    n=env.n,
                    t=env.t,
                    transmitter=env.transmitter,
                    key=env.keys[self.transmitter_id],
                    service=env.service,
                    coins=env.coins,
                )
            )
            self._instances[value] = processor

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        sends: list[FaultySend] = []
        inbox = view.inbox(self.transmitter_id)
        for value, processor in self._instances.items():
            doctored = [
                Envelope(src=e.src, dst=e.dst, phase=e.phase, payload=value)
                if e.is_input_edge()
                else e
                for e in inbox
            ]
            for dst, payload in processor.on_phase(view.phase, tuple(doctored)):
                if self.value_for.get(dst) == value:
                    sends.append((self.transmitter_id, dst, payload))
        return sends


class ComposedAdversary(Adversary):
    """Several independent adversaries acting as one faulty coalition.

    Real outages are heterogeneous — a lying coordinator here, a crashed
    node there, a flaky NIC somewhere else.  Composition runs each part
    with its own strategy; the faulty sets must be disjoint (one master
    per corrupted processor).
    """

    def __init__(self, parts: Sequence[Adversary]) -> None:
        union = frozenset().union(*(part.faulty for part in parts)) if parts else frozenset()
        if sum(len(part.faulty) for part in parts) != len(union):
            raise ValueError("composed adversaries must corrupt disjoint sets")
        super().__init__(union)
        self.parts = list(parts)

    def bind(self, env: AdversaryEnvironment) -> None:
        super().bind(env)
        for part in self.parts:
            part.bind(env)

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        sends: list[FaultySend] = []
        for part in self.parts:
            sends.extend(part.on_phase(view))
        return sends


class RandomizedAdversary(SimulatingAdversary):
    """Seeded chaos: each faulty processor randomly drops what it hears,
    drops or redirects what it says, and occasionally injects garbage.

    Deterministic given the seed — used by the property-based test suite to
    fuzz every algorithm with reproducible Byzantine behaviour.
    """

    def __init__(
        self,
        faulty: Iterable[ProcessorId],
        seed: int,
        *,
        drop_in: float = 0.3,
        drop_out: float = 0.3,
        garbage: float = 0.1,
    ) -> None:
        super().__init__(faulty)
        import random

        self._rng = random.Random(seed)
        self.drop_in = drop_in
        self.drop_out = drop_out
        self.garbage = garbage

    def filter_inbox(
        self, pid: ProcessorId, phase: int, inbox: Sequence[Envelope]
    ) -> Sequence[Envelope]:
        return [
            e
            for e in inbox
            if e.is_input_edge() or self._rng.random() >= self.drop_in
        ]

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        env = self.env
        assert env is not None
        kept = [
            (dst, payload)
            for dst, payload in outgoing
            if self._rng.random() >= self.drop_out
        ]
        if self._rng.random() < self.garbage:
            dst = self._rng.randrange(env.n)
            if dst != pid:
                kept.append((dst, ("garbage", phase, self._rng.random())))
        return kept


class ScriptedAdversary(Adversary):
    """Fully scripted faults: a callback chooses every faulty send.

    *script* is called once per phase with the
    :class:`~repro.adversary.base.PhaseView` and the bound environment; it
    returns the complete list of faulty sends for that phase.  Useful for
    one-off attack constructions in tests.
    """

    def __init__(
        self,
        faulty: Iterable[ProcessorId],
        script: Callable[[PhaseView, object], list[FaultySend]],
    ) -> None:
        super().__init__(faulty)
        self.script = script

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        return self.script(view, self.env)


class GarbageAdversary(Adversary):
    """Spams every correct processor with unverifiable junk each phase.

    The payloads parse as none of the algorithms' message types (or carry
    forged signatures), so a robust implementation must ignore them all;
    runs under this adversary check input validation, not agreement logic.
    """

    def __init__(self, faulty: Iterable[ProcessorId], *, forge: bool = True) -> None:
        super().__init__(faulty)
        self.forge = forge

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        env = self.env
        assert env is not None
        sends: list[FaultySend] = []
        for pid in sorted(self.faulty):
            for dst in range(env.n):
                if dst == pid:
                    continue
                payload: object = ("garbage", view.phase, pid)
                if self.forge:
                    victim = (dst + 1) % env.n
                    payload = env.service.forge(victim, payload)
                sends.append((pid, dst, payload))
        return sends
