"""Adversary interface.

A *t-faulty history* is one in which at most ``t`` processors are incorrect
— they deviate arbitrarily from their correctness rules.  The adversary is
the single entity that drives all faulty processors (the paper explicitly
allows faulty processors to collude).

Capabilities, matching the paper's model:

* full information — the adversary sees every message ever sent (by default
  only messages of phases strictly before the current one: the paper's
  history model makes a phase-``k`` label a function of phases ``< k``; a
  *rushing* view that also exposes the current phase's correct traffic can
  be requested for stress tests);
* collusion — it holds the signing keys of every faulty processor;
* no spoofing — every message it emits is stamped with the true faulty
  source, and it cannot emit messages on behalf of correct processors;
* no forging — it has no correct processor's key, so any "signature" of a
  correct processor it fabricates fails verification.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.core.message import Envelope
from repro.core.types import ProcessorId, Value
from repro.crypto.signatures import SignatureService, SigningKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.approx.coins import CoinSource
    from repro.core.history import History
    from repro.core.protocol import AgreementAlgorithm


#: What the adversary emits: (faulty source, destination, payload).
FaultySend = tuple[ProcessorId, ProcessorId, Any]


@dataclass
class AdversaryEnvironment:
    """Everything the adversary is handed at the start of a run."""

    n: int
    t: int
    transmitter: ProcessorId
    input_value: Value
    service: SignatureService
    #: Signing keys of the faulty processors only.
    keys: Mapping[ProcessorId, SigningKey]
    #: The algorithm under attack (usable to instantiate reference
    #: processors, e.g. for "behave like a correct processor except ..."
    #: strategies).
    algorithm: "AgreementAlgorithm"
    #: The run's coin stream (randomized algorithms only) — a simulated
    #: faulty processor behaving correctly flips the same coins a correct
    #: one would.  The full-information adversary may read it freely.
    coins: "CoinSource | None" = None


@dataclass
class PhaseView:
    """The adversary's view when choosing the faulty sends of one phase."""

    phase: int
    #: Messages delivered to each faulty processor at the start of this
    #: phase (i.e. sent to it during ``phase - 1``), source-sorted.
    inboxes: Mapping[ProcessorId, Sequence[Envelope]]
    #: Full history of phases ``0 .. phase - 1``.
    history: "History"
    #: Only populated when the run is executed with ``rushing=True``: the
    #: envelopes correct processors are sending in the *current* phase.
    rushing_outbox: Sequence[Envelope] = field(default_factory=tuple)

    def inbox(self, pid: ProcessorId) -> Sequence[Envelope]:
        """Messages delivered to faulty processor *pid* this phase."""
        return self.inboxes.get(pid, ())


class Adversary(abc.ABC):
    """Strategy driving all faulty processors of one run."""

    def __init__(self, faulty: Iterable[ProcessorId]) -> None:
        self._faulty = frozenset(faulty)
        self.env: AdversaryEnvironment | None = None

    @property
    def faulty(self) -> frozenset[ProcessorId]:
        """The set of processors this adversary corrupts."""
        return self._faulty

    def bind(self, env: AdversaryEnvironment) -> None:
        """Attach the run environment; called once by the runner."""
        self.env = env
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclass initialisation that needs the environment."""

    @abc.abstractmethod
    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        """Choose the messages every faulty processor sends this phase."""


class NullAdversary(Adversary):
    """No faults at all — used for the paper's fault-free histories H and G."""

    def __init__(self) -> None:
        super().__init__(faulty=())

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        return []
