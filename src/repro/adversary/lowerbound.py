"""The adversaries constructed inside the paper's lower-bound proofs.

Theorem 1's proof corrupts the signature-exchange set ``A(p)`` of a weakly
connected processor ``p`` and has it *behave toward p as in history H and
toward everyone else as in history G* — a pure replay of two recorded
fault-free executions (:class:`ReplayAdversary` + :func:`build_split_plan`).

Theorem 2's proof corrupts a set ``B`` of ``⌊1 + t/2⌋`` processors that
*never talk to each other and behave correctly toward the rest except for
ignoring the first ⌈t/2⌉ messages* (:class:`IgnoreFirstAdversary`), then —
to derive the contradiction for an algorithm that sends too little —
switches one member ``p`` of ``B`` back to correct while corrupting the
processors that had been feeding it (:class:`Theorem2SwitchAdversary`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.adversary.base import Adversary, FaultySend, PhaseView
from repro.adversary.standard import SimulatingAdversary
from repro.core.history import History, edge_payloads
from repro.core.message import Envelope, Outgoing
from repro.core.types import ProcessorId

#: phase -> list of (src, dst, payload): a complete faulty-traffic script.
ReplayPlan = dict[int, list[FaultySend]]


class ReplayAdversary(Adversary):
    """Faulty processors that replay a precomputed traffic plan verbatim.

    Replayed payloads carry the *original* signatures, which remain valid —
    the signature scheme binds signers to contents, not to the execution
    that first produced them (a faulty processor may always re-send
    anything it has ever said or seen).
    """

    def __init__(self, faulty: Iterable[ProcessorId], plan: ReplayPlan) -> None:
        super().__init__(faulty)
        self.plan = {phase: list(sends) for phase, sends in plan.items()}

    def on_bind(self) -> None:
        """Re-issue our own recorded signatures inside this execution.

        The recorded traffic embeds signatures of the faulty processors,
        produced in the source histories.  In the execution being built
        those signatures are equally genuine — the colluding faulty
        processors simply sign the same digests again
        (:meth:`~repro.crypto.signatures.SignatureService.endorse`).
        Correct processors' embedded signatures need no help: digests are
        deterministic, so when the correct processor signs the same content
        in this execution the registry entry coincides.
        """
        env = self.env
        assert env is not None
        from repro.core.message import iter_payload_parts
        from repro.crypto.signatures import Signature

        for sends in self.plan.values():
            for _, _, payload in sends:
                for part in iter_payload_parts(payload):
                    if isinstance(part, Signature) and part.signer in self.faulty:
                        env.service.endorse(env.keys[part.signer], part.digest)

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        return list(self.plan.get(view.phase, ()))


def build_split_plan(
    history_h: History,
    history_g: History,
    target: ProcessorId,
    faulty: frozenset[ProcessorId],
) -> ReplayPlan:
    """Theorem 1's history ``H'``: the processors in *faulty* (= ``A(p)``)
    send *target* exactly what they sent it in ``H`` and send everyone else
    exactly what they sent them in ``G``."""
    plan: ReplayPlan = {}

    def add_from(history: History, to_target: bool) -> None:
        """Queue replayed sends from *source* into the plan."""
        for phase_number, phase in enumerate(history.phases):
            if phase_number == 0:
                continue
            for edge in phase.edges():
                if edge.src not in faulty:
                    continue
                if (edge.dst == target) != to_target:
                    continue
                if edge.dst in faulty:
                    continue  # traffic among colluders is irrelevant
                for payload in edge_payloads(edge.label):
                    plan.setdefault(phase_number, []).append(
                        (edge.src, edge.dst, payload)
                    )

    add_from(history_h, to_target=True)
    add_from(history_g, to_target=False)
    return plan


class IgnoreFirstAdversary(SimulatingAdversary):
    """Theorem 2's history ``H'``: the set ``B`` plays deaf.

    Every member of *b_set* behaves like a correct processor except that it
    (a) never sends a message to another member of ``B`` and (b) ignores
    the first *ignore_count* messages it receives from processors outside
    ``B`` (all of them, if it receives fewer).
    """

    def __init__(self, b_set: Iterable[ProcessorId], ignore_count: int) -> None:
        super().__init__(b_set)
        self.b_set = frozenset(b_set)
        self.ignore_count = ignore_count
        self._ignored: dict[ProcessorId, int] = {pid: 0 for pid in self.b_set}

    def filter_inbox(
        self, pid: ProcessorId, phase: int, inbox: Sequence[Envelope]
    ) -> Sequence[Envelope]:
        kept: list[Envelope] = []
        for envelope in inbox:
            from_outside = (
                envelope.src not in self.b_set and not envelope.is_input_edge()
            )
            if from_outside and self._ignored[pid] < self.ignore_count:
                self._ignored[pid] += 1
                continue
            kept.append(envelope)
        return kept

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        return [(dst, payload) for dst, payload in outgoing if dst not in self.b_set]

    def messages_ignored(self) -> Mapping[ProcessorId, int]:
        """How many incoming messages each ``B`` member has swallowed."""
        return dict(self._ignored)


class Theorem2SwitchAdversary(SimulatingAdversary):
    """Theorem 2's history ``H''``: the contradiction construction.

    One former ``B`` member — *target* — is now correct.  The faulty set is
    ``(B − {target}) ∪ A(p)`` where ``A(p)`` (*starvers* here) are the
    correct processors that had sent *target* messages in ``H'``:

    * members of ``B − {target}`` keep their ``H'`` behaviour (silent
      towards ``B``, first messages ignored) and additionally ignore
      everything *target* sends;
    * the starvers behave like correct processors except that they never
      send anything to *target*.
    """

    def __init__(
        self,
        b_rest: Iterable[ProcessorId],
        starvers: Iterable[ProcessorId],
        target: ProcessorId,
        ignore_count: int,
    ) -> None:
        self.b_rest = frozenset(b_rest)
        self.starvers = frozenset(starvers)
        if self.b_rest & self.starvers:
            raise ValueError("B and A(p) must be disjoint")
        self.target = target
        self.b_all = self.b_rest | {target}
        self.ignore_count = ignore_count
        self._ignored: dict[ProcessorId, int] = {pid: 0 for pid in self.b_rest}
        super().__init__(self.b_rest | self.starvers)

    def filter_inbox(
        self, pid: ProcessorId, phase: int, inbox: Sequence[Envelope]
    ) -> Sequence[Envelope]:
        if pid in self.starvers:
            return inbox
        kept: list[Envelope] = []
        for envelope in inbox:
            if envelope.src == self.target:
                continue
            from_outside = (
                envelope.src not in self.b_all and not envelope.is_input_edge()
            )
            if from_outside and self._ignored[pid] < self.ignore_count:
                self._ignored[pid] += 1
                continue
            kept.append(envelope)
        return kept

    def transform_outbox(
        self, pid: ProcessorId, phase: int, outgoing: list[Outgoing]
    ) -> list[Outgoing]:
        if pid in self.starvers:
            return [(dst, p) for dst, p in outgoing if dst != self.target]
        return [(dst, p) for dst, p in outgoing if dst not in self.b_all]