"""Theorem 1, executable: the ``Ω(nt)`` signature lower bound.

The proof, step by step (all steps runnable here):

1. Run the two fault-free histories ``H`` (value 0) and ``G`` (value 1).
2. For every processor ``p`` compute ``A(p)`` — everyone that received
   ``p``'s signature or whose signature ``p`` received, in either history.
   Because every authenticated message carries at least its sender's
   signature, all of ``p``'s communication partners are in ``A(p)``.
3. If every ``|A(p)| ≥ t + 1``, the correct processors exchanged at least
   ``n(t+1)/4`` signatures between the two histories (each of ``n``
   processors touches ``t+1`` signature exchanges; each exchange is
   counted at most twice per history pair — hence the ``/4``): the bound
   holds.
4. Otherwise some ``|A(p)| ≤ t`` and the *splitting adversary* exists:
   corrupt exactly ``A(p)``, replay their ``H`` traffic toward ``p`` and
   their ``G`` traffic toward everyone else.  Processor ``p``'s individual
   subhistory equals ``pH`` (it decides 0) while every other correct
   processor's equals its ``G`` view (it decides 1) — agreement breaks.

For the paper's correct algorithms step 4 never triggers; for the
strawmen in :mod:`repro.algorithms.cheap_strawman` it does, and the report
carries the executed violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.adversary.lowerbound import ReplayAdversary, build_split_plan
from repro.bounds.formulas import theorem1_signature_lower_bound
from repro.core.history import History, edge_payloads
from repro.core.message import iter_payload_parts
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import RunResult, run
from repro.core.types import ProcessorId
from repro.core.validation import check_byzantine_agreement
from repro.crypto.signatures import Signature

#: factory producing fresh, identically configured algorithm instances.
AlgorithmFactory = Callable[[], AgreementAlgorithm]


def signature_flows(history: History) -> set[tuple[ProcessorId, ProcessorId]]:
    """All pairs ``(signer, receiver)``: *receiver* got a message carrying
    *signer*'s signature somewhere in *history*."""
    flows: set[tuple[ProcessorId, ProcessorId]] = set()
    for phase_number, phase in enumerate(history.phases):
        if phase_number == 0:
            continue
        for edge in phase.edges():
            for payload in edge_payloads(edge.label):
                for part in iter_payload_parts(payload):
                    if isinstance(part, Signature):
                        flows.add((part.signer, edge.dst))
    return flows


def exchange_sets(
    history_h: History, history_g: History, n: int
) -> dict[ProcessorId, set[ProcessorId]]:
    """``A(p)`` for every ``p``: processors that receive ``p``'s signature
    or whose signature ``p`` receives, in at least one of the histories."""
    sets: dict[ProcessorId, set[ProcessorId]] = {p: set() for p in range(n)}
    for flows in (signature_flows(history_h), signature_flows(history_g)):
        for signer, receiver in flows:
            if signer == receiver:
                continue
            if 0 <= signer < n:
                sets[signer].add(receiver)
                sets[receiver].add(signer)
    return sets


@dataclass
class SplitAttackOutcome:
    """The executed history ``H'`` of step 4."""

    target: ProcessorId
    faulty: frozenset[ProcessorId]
    #: p's view in H' is identical to its view in H (the proof's key step).
    target_view_matches_h: bool
    target_decision: object
    other_decisions: dict[ProcessorId, object]
    agreement_violated: bool


@dataclass
class Theorem1Report:
    """Everything the experiment measured."""

    n: int
    t: int
    bound: Fraction
    #: signatures sent by correct processors in H and in G.
    signatures_h: int
    signatures_g: int
    exchange_sets: dict[ProcessorId, set[ProcessorId]]
    weak_processors: list[ProcessorId]
    attack: SplitAttackOutcome | None

    @property
    def min_exchange(self) -> int:
        return min(len(s) for s in self.exchange_sets.values())

    @property
    def bound_respected(self) -> bool:
        """The two-history signature total meets the paper's bound."""
        return self.signatures_h + self.signatures_g >= self.bound

    @property
    def algorithm_is_breakable(self) -> bool:
        return bool(self.weak_processors)


def run_split_attack(
    factory: AlgorithmFactory,
    result_h: RunResult,
    result_g: RunResult,
    target: ProcessorId,
    faulty: frozenset[ProcessorId],
) -> SplitAttackOutcome:
    """Execute history ``H'`` against a fresh algorithm instance."""
    plan = build_split_plan(result_h.history, result_g.history, target, faulty)
    adversary = ReplayAdversary(faulty, plan)
    algorithm = factory()
    # the one correct processor whose view must match H is `target`; if it
    # is the transmitter its input edge must carry H's value.
    input_value = (
        result_h.input_value
        if target == algorithm.transmitter
        else result_g.input_value
    )
    result = run(algorithm, input_value, adversary)

    view_h = result_h.history.individual(target)
    view_prime = result.history.individual(target)
    others = {
        pid: value
        for pid, value in result.decisions.items()
        if pid != target and pid not in faulty
    }
    report = check_byzantine_agreement(result)
    return SplitAttackOutcome(
        target=target,
        faulty=faulty,
        target_view_matches_h=(view_h == view_prime),
        target_decision=result.decisions.get(target),
        other_decisions=others,
        agreement_violated=not report.agreement,
    )


def theorem1_experiment(factory: AlgorithmFactory) -> Theorem1Report:
    """Run the full Theorem 1 pipeline against one algorithm."""
    result_h = run(factory(), 0)
    result_g = run(factory(), 1)
    algorithm = factory()
    n, t = algorithm.n, algorithm.t

    sets = exchange_sets(result_h.history, result_g.history, n)
    weak = sorted(p for p, a in sets.items() if len(a) <= t)

    attack: SplitAttackOutcome | None = None
    if weak:
        target = weak[0]
        attack = run_split_attack(
            factory, result_h, result_g, target, frozenset(sets[target])
        )

    return Theorem1Report(
        n=n,
        t=t,
        bound=theorem1_signature_lower_bound(n, t),
        signatures_h=result_h.metrics.signatures_by_correct,
        signatures_g=result_g.metrics.signatures_by_correct,
        exchange_sets=sets,
        weak_processors=weak,
        attack=attack,
    )
