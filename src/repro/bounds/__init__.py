"""The paper's lower bounds: closed-form formulas and executable proofs."""

from repro.bounds import formulas
from repro.bounds.theorem1 import (
    Theorem1Report,
    exchange_sets,
    signature_flows,
    theorem1_experiment,
)
from repro.bounds.theorem2 import (
    Theorem2Report,
    empty_view_decision,
    sensitivity_set,
    theorem2_experiment,
)
from repro.bounds.verification import (
    BoundCheckRecord,
    check_grid,
    check_scenario,
    check_signature_budget,
)

__all__ = [
    "BoundCheckRecord",
    "Theorem1Report",
    "Theorem2Report",
    "check_grid",
    "check_scenario",
    "check_signature_budget",
    "empty_view_decision",
    "exchange_sets",
    "formulas",
    "sensitivity_set",
    "signature_flows",
    "theorem1_experiment",
    "theorem2_experiment",
]
