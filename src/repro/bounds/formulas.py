"""Every closed-form bound stated in the paper, as documented functions.

These are the quantities the benchmark harness compares measured runs
against; each function cites the theorem/lemma it comes from.
"""

from __future__ import annotations

import math
from fractions import Fraction


def theorem1_signature_lower_bound(n: int, t: int) -> Fraction:
    """Theorem 1: any authenticated algorithm has a fault-free history in
    which correct processors send at least ``n(t+1)/4`` signatures."""
    return Fraction(n * (t + 1), 4)


def corollary1_message_lower_bound(n: int, t: int) -> Fraction:
    """Corollary 1: without authentication the same ``n(t+1)/4`` bound
    applies to the number of messages."""
    return theorem1_signature_lower_bound(n, t)


def theorem1_per_processor_exchange(t: int) -> int:
    """Theorem 1's per-processor form: no correct algorithm can let any
    processor exchange fewer than ``t + 1`` signatures across the two
    fault-free histories ``H`` and ``G``."""
    return t + 1


def theorem2_message_lower_bound(n: int, t: int) -> int:
    """Theorem 2: some history forces correct processors to send at least
    ``max{⌈(n−1)/2⌉, (⌊1 + t/2⌋)·⌈1 + t/2⌉}`` messages.

    The second term is the ``B``-set construction: ``⌊1 + t/2⌋`` faulty
    processors each of which must receive ``⌈1 + t/2⌉`` messages from
    correct processors — the paper rounds it to ``(1 + t/2)²``.
    """
    first = math.ceil((n - 1) / 2)
    second = math.floor(1 + t / 2) * math.ceil(1 + t / 2)
    return max(first, second)


def theorem2_b_set_size(t: int) -> int:
    """``|B| = ⌊1 + t/2⌋`` — the faulty receivers of Theorem 2's proof."""
    return math.floor(1 + t / 2)


def theorem2_ignore_count(t: int) -> int:
    """``⌈t/2⌉`` — how many leading messages each ``B`` member ignores."""
    return math.ceil(t / 2)


def theorem2_per_b_member_messages(t: int) -> int:
    """``⌈1 + t/2⌉`` — messages every ``B`` member must receive from
    correct processors in the proof's history ``H'``."""
    return math.ceil(1 + t / 2)


def theorem3_message_upper_bound(t: int) -> int:
    """Theorem 3: Algorithm 1 sends at most ``2t² + 2t`` messages."""
    return 2 * t * t + 2 * t


def theorem3_phases(t: int) -> int:
    """Theorem 3: Algorithm 1 runs for ``t + 2`` phases."""
    return t + 2


def theorem4_message_upper_bound(t: int) -> int:
    """Theorem 4: Algorithm 2 sends at most ``5t² + 5t`` messages."""
    return 5 * t * t + 5 * t


def theorem4_phases(t: int) -> int:
    """Theorem 4: Algorithm 2 runs for ``3t + 3`` phases."""
    return 3 * t + 3


def lemma1_message_upper_bound(n: int, t: int, s: int) -> int:
    """Lemma 1: Algorithm 3 with chain sets of size ``s`` sends at most
    ``2n + 4tn/s + 3t²s`` messages (rounded up)."""
    return 2 * n + math.ceil(4 * t * n / s) + 3 * t * t * s


def lemma1_phases(t: int, s: int) -> int:
    """Lemma 1: Algorithm 3 runs for ``t + 2s + 3`` phases."""
    return t + 2 * s + 3


def theorem5_message_upper_bound(n: int, t: int) -> int:
    """Theorem 5: Algorithm 3 with ``s = 4t`` is ``O(n + t³)``; this is the
    exact Lemma 1 value at that choice."""
    return lemma1_message_upper_bound(n, t, 4 * t)


def theorem6_message_upper_bound(m: int) -> int:
    """Theorem 6: Algorithm 4 on ``N = m²`` processors sends at most
    ``3(m−1)m²`` messages."""
    return 3 * (m - 1) * m * m


def lemma2_success_set_size(n_grid: int, t: int) -> int:
    """Lemma 2: at least ``N − 2t`` correct processors fully exchange."""
    return n_grid - 2 * t


def lemma5_phase_upper_bound(t: int, s: int) -> int:
    """Lemma 5: Algorithm 5 needs at most ``3t + 4s + 2`` phases.

    Our schedule differs by a small additive constant (DESIGN.md §5.2):
    each block spends one extra phase on the Algorithm 4 hand-off and the
    final direct-delivery block adds one more, giving
    ``3t + 4s + ⌈log₂(s+1)⌉ + 4``.
    """
    return 3 * t + 4 * s + 2


def our_algorithm5_phase_bound(t: int, s: int) -> int:
    """The exact phase count of this library's Algorithm 5 schedule."""
    levels = s.bit_length()
    block_phases = sum(2 * ((1 << x) - 1) + 3 for x in range(1, levels + 1))
    return 3 * t + 4 + block_phases + 1


def smallest_alpha(t: int) -> int:
    """``α``: the smallest perfect square strictly above ``6t``."""
    root = math.isqrt(6 * t)
    while root * root <= 6 * t:
        root += 1
    return root * root


def lemma5_message_scale(n: int, t: int, s: int) -> int:
    """The Lemma 5 asymptotic scale, with all three of the paper's terms:
    ``O(t²) + O(t^1.5 · log s) + O(tn/s)`` (constants dropped).

    Benchmarks check that measured message counts stay within a fixed
    multiple of this across the sweep — the honest way to "verify" an
    O-bound empirically.  The middle term is the per-block Algorithm 4
    gossip; dropping it (as the one-line ``O(t² + nt/s)`` statement does)
    is only justified once ``t`` is large.
    """
    gossip = math.ceil(t**1.5) * (s.bit_length() + 1)
    return t * t + gossip + math.ceil(n * t / s)


def theorem7_message_scale(n: int, t: int) -> int:
    """Theorem 7's scale ``n + t²`` (Algorithm 5 at ``s = t``)."""
    return n + t * t


def tradeoff_phases(t: int, alpha: int) -> int:
    """The introduction's trade-off: ``t + 3 + t/α``-ish phases …"""
    return t + 3 + math.ceil(t / alpha)


def tradeoff_message_scale(n: int, alpha: int) -> int:
    """… against ``O(αn)`` messages, for ``1 ≤ α ≤ t`` (Algorithm 3 with
    ``s = ⌈t/α⌉``)."""
    return alpha * n
