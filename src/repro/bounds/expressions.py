"""Declared-bound expressions: a tiny, safe arithmetic language.

Every concrete :class:`~repro.core.protocol.AgreementAlgorithm` declares its
paper budgets (``phase_bound``, ``message_bound`` and — when authenticated —
``signature_bound``) as *expression strings* over its system parameters,
evaluated in the namespace of :mod:`repro.bounds.formulas`.  Keeping the
declarations textual makes them statically checkable: the ``repro lint``
rule BA002 parses them without importing the algorithm module and
cross-checks them against the paper's closed forms.

The language is deliberately small: integer arithmetic, the parameter names
the algorithm instance actually has (``n``, ``t``, ``s``, ``m``, ``alpha``,
``width``), and calls to the public functions of
:mod:`repro.bounds.formulas`.  Anything else is rejected at parse time.

Two sentinels opt out of evaluation while keeping the declaration explicit:

* :data:`DERIVED` — the bound is computed at runtime from component
  algorithms (wrappers like interactive consistency override the
  ``upper_bound_*`` method);
* :data:`UNSTATED` — the paper states no closed form for this budget.
"""

from __future__ import annotations

import ast
import math
from fractions import Fraction
from typing import Callable, Final, Mapping

from repro.bounds import formulas

__all__ = [
    "DERIVED",
    "UNSTATED",
    "SENTINELS",
    "PARAMETER_NAMES",
    "SAMPLE_GRID",
    "BoundExpressionError",
    "formula_namespace",
    "validate_bound_expression",
    "evaluate_bound",
    "evaluate_rate",
]

#: Declares that the bound is derived at runtime from component algorithms.
DERIVED: Final[str] = "derived"
#: Declares that the paper states no closed form for this budget.
UNSTATED: Final[str] = "unstated"
#: The declarations that are explicit opt-outs rather than expressions.
SENTINELS: Final[frozenset[str]] = frozenset({DERIVED, UNSTATED})

#: Parameter names a bound expression may reference.  Each algorithm
#: instance supplies the subset it actually has (see
#: :meth:`~repro.core.protocol.AgreementAlgorithm.bound_parameters`).
PARAMETER_NAMES: Final[frozenset[str]] = frozenset(
    {"n", "t", "s", "m", "alpha", "width"}
)

#: Sample parameter points at which declared bounds are compared against
#: canonical forms (lint rule BA002) and against static fan-out estimates
#: (BA006/BA007).  ``n > 3t`` keeps every formula in its domain; ``s = t``
#: and ``m = t + 1`` match how the algorithms instantiate those knobs.
SAMPLE_GRID: Final[tuple[Mapping[str, int], ...]] = tuple(
    {"n": 3 * t + 2, "t": t, "s": t, "m": t + 1, "alpha": t + 1, "width": t + 1}
    for t in (1, 2, 3, 4)
)

_ALLOWED_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


class BoundExpressionError(ValueError):
    """A declared bound is not a valid expression of the bound language."""


def formula_namespace() -> dict[str, Callable[..., object]]:
    """The public functions of :mod:`repro.bounds.formulas`, by name."""
    return {
        name: func
        for name, func in vars(formulas).items()
        if callable(func) and not name.startswith("_")
    }


def validate_bound_expression(expression: str) -> ast.Expression:
    """Parse *expression* and verify it stays inside the bound language.

    Returns the parsed tree; raises :class:`BoundExpressionError` when the
    expression uses anything beyond integer arithmetic, the allowed
    parameter names, and calls to :mod:`repro.bounds.formulas` functions.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as error:
        raise BoundExpressionError(
            f"bound expression {expression!r} does not parse: {error.msg}"
        ) from error
    known_formulas = formula_namespace()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Expression, ast.Load)):
            continue
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ALLOWED_OPS):
            continue
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            continue
        if isinstance(node, _ALLOWED_OPS + (ast.USub, ast.UAdd)):
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            continue
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.keywords:
                raise BoundExpressionError(
                    f"bound expression {expression!r} may only call "
                    f"formulas by bare name with positional arguments"
                )
            if node.func.id not in known_formulas:
                raise BoundExpressionError(
                    f"bound expression {expression!r} calls "
                    f"{node.func.id!r}, which is not defined in "
                    f"repro.bounds.formulas"
                )
            continue
        if isinstance(node, ast.Name):
            if node.id in PARAMETER_NAMES or node.id in known_formulas:
                continue
            raise BoundExpressionError(
                f"bound expression {expression!r} references {node.id!r}; "
                f"allowed names are parameters {sorted(PARAMETER_NAMES)} "
                f"and repro.bounds.formulas functions"
            )
        raise BoundExpressionError(
            f"bound expression {expression!r} uses disallowed syntax "
            f"({type(node).__name__})"
        )
    return tree


def evaluate_bound(
    declaration: str | None, parameters: Mapping[str, int]
) -> int | None:
    """Evaluate a declared bound at the given parameter values.

    Returns ``None`` for an absent declaration or a sentinel
    (:data:`DERIVED` / :data:`UNSTATED`).  Non-integer results (e.g. a
    :class:`~fractions.Fraction` from a lower-bound formula) are rounded up
    — a bound rounded toward safety stays a bound.
    """
    if declaration is None or declaration in SENTINELS:
        return None
    tree = validate_bound_expression(declaration)
    namespace: dict[str, object] = dict(formula_namespace())
    for name, value in parameters.items():
        if name in PARAMETER_NAMES:
            namespace[name] = value
    code = compile(tree, "<declared-bound>", "eval")
    try:
        result = eval(code, {"__builtins__": {}}, namespace)  # noqa: S307
    except NameError as error:
        raise BoundExpressionError(
            f"bound expression {declaration!r} needs a parameter this "
            f"algorithm does not define: {error}"
        ) from error
    if isinstance(result, bool) or not isinstance(
        result, (int, float, Fraction)
    ):
        raise BoundExpressionError(
            f"bound expression {declaration!r} evaluated to "
            f"{type(result).__name__}, expected a number"
        )
    return math.ceil(result)


class _ExactDivision(ast.NodeTransformer):
    """Rewrite integer literals as ``Fraction`` constructor calls.

    Under plain evaluation ``1/2`` is a float and ``t/(n - 2*t)`` loses
    exactness for e.g. ``1/3``; lifting every literal into
    :class:`~fractions.Fraction` makes ``/`` exact so convergence-rate
    arithmetic (round counts from repeated contraction) never drifts.
    """

    def visit_Constant(self, node: ast.Constant) -> ast.AST:  # noqa: N802
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return ast.copy_location(
                ast.Call(
                    func=ast.Name(id="__frac__", ctx=ast.Load()),
                    args=[node],
                    keywords=[],
                ),
                node,
            )
        return node


def evaluate_rate(
    declaration: str | None, parameters: Mapping[str, int]
) -> Fraction | None:
    """Evaluate a declared convergence rate exactly, as a Fraction.

    A convergence rate is the per-round contraction factor of the
    correct-value diameter in an approximate-agreement algorithm; unlike
    the integer budgets it must *not* be rounded, so division is made
    exact by lifting all literals into :class:`~fractions.Fraction`.

    Returns ``None`` for an absent declaration or a sentinel; raises
    :class:`BoundExpressionError` when the result is outside the open
    interval ``(0, 1)`` — anything else is not a contraction.
    """
    if declaration is None or declaration in SENTINELS:
        return None
    tree = validate_bound_expression(declaration)
    tree = ast.fix_missing_locations(_ExactDivision().visit(tree))
    namespace: dict[str, object] = dict(formula_namespace())
    namespace["__frac__"] = Fraction
    for name, value in parameters.items():
        if name in PARAMETER_NAMES:
            namespace[name] = Fraction(value)
    code = compile(tree, "<declared-rate>", "eval")
    try:
        result = eval(code, {"__builtins__": {}}, namespace)  # noqa: S307
    except NameError as error:
        raise BoundExpressionError(
            f"rate expression {declaration!r} needs a parameter this "
            f"algorithm does not define: {error}"
        ) from error
    if isinstance(result, bool) or not isinstance(result, (int, Fraction)):
        raise BoundExpressionError(
            f"rate expression {declaration!r} evaluated to "
            f"{type(result).__name__}, expected exact rational arithmetic"
        )
    rate = Fraction(result)
    if not 0 < rate < 1:
        raise BoundExpressionError(
            f"rate expression {declaration!r} evaluated to {rate} at "
            f"{dict(parameters)}; a contraction rate must lie in (0, 1)"
        )
    return rate
