"""Cross-checking harness: measured costs vs. the paper's bounds.

For a grid of scenarios (algorithm × adversary × value) this module runs
the executions and checks, per run:

* Byzantine Agreement holds (the adversary corrupts at most ``t``);
* messages sent by correct processors never exceed the algorithm's
  declared upper bound;
* fault-free runs respect both lower bounds (Theorem 2 for messages, and
  for authenticated algorithms the Theorem 1 signature budget across the
  ``H``/``G`` pair).

The same records feed EXPERIMENTS.md and the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.adversary.base import Adversary
from repro.bounds.formulas import theorem2_message_lower_bound
from repro.bounds.theorem1 import theorem1_experiment
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import run
from repro.core.types import Value
from repro.core.validation import check_byzantine_agreement

AlgorithmFactory = Callable[[], AgreementAlgorithm]
AdversaryFactory = Callable[[AgreementAlgorithm], Adversary | None]


def no_adversary(_: AgreementAlgorithm) -> None:
    """The fault-free scenario."""
    return None


@dataclass
class BoundCheckRecord:
    """One scenario's measurements and verdicts."""

    algorithm: str
    n: int
    t: int
    adversary: str
    value: Value
    messages: int
    signatures: int
    phases_used: int
    phases_configured: int
    message_upper_bound: int | None
    agreement_ok: bool
    within_upper_bound: bool
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.agreement_ok and self.within_upper_bound and not self.violations


def check_scenario(
    factory: AlgorithmFactory,
    value: Value,
    adversary_factory: AdversaryFactory = no_adversary,
    adversary_name: str = "fault-free",
) -> BoundCheckRecord:
    """Run one scenario and compare it against every applicable bound."""
    algorithm = factory()
    adversary = adversary_factory(algorithm)
    result = run(algorithm, value, adversary)
    report = check_byzantine_agreement(result)

    violations = list(report.violations)
    upper = algorithm.upper_bound_messages()
    messages = result.metrics.messages_by_correct
    within = upper is None or messages <= upper
    if not within:
        violations.append(
            f"messages {messages} exceed the paper's bound {upper}"
        )
    if result.metrics.last_active_phase > algorithm.num_phases():
        violations.append("traffic after the declared last phase")
    if algorithm.authenticated and result.metrics.unsigned_correct_messages:
        violations.append(
            f"{result.metrics.unsigned_correct_messages} unsigned messages "
            f"from correct processors in an authenticated algorithm"
        )
    if adversary is None and messages < theorem2_message_lower_bound(algorithm.n, algorithm.t):
        # the Theorem 2 bound is worst-case over histories; a fault-free
        # run below it is possible only for value-asymmetric algorithms
        # (e.g. Algorithm 1 with value 0), so only flag the larger value.
        if value == 1:
            violations.append(
                f"fault-free messages {messages} below the Theorem 2 bound "
                f"{theorem2_message_lower_bound(algorithm.n, algorithm.t)}"
            )

    return BoundCheckRecord(
        algorithm=algorithm.name,
        n=algorithm.n,
        t=algorithm.t,
        adversary=adversary_name,
        value=value,
        messages=messages,
        signatures=result.metrics.signatures_by_correct,
        phases_used=result.metrics.last_active_phase,
        phases_configured=algorithm.num_phases(),
        message_upper_bound=upper,
        agreement_ok=report.ok,
        within_upper_bound=within,
        violations=violations,
    )


def check_signature_budget(factory: AlgorithmFactory) -> tuple[bool, str]:
    """Theorem 1's check for one authenticated algorithm: the fault-free
    ``H``/``G`` pair carries at least ``n(t+1)/4`` signatures and nobody's
    exchange set is splittable."""
    report = theorem1_experiment(factory)
    if report.weak_processors:
        return False, (
            f"processors {report.weak_processors} exchange ≤ t signatures — "
            f"splittable"
        )
    if not report.bound_respected:
        return False, (
            f"signatures {report.signatures_h + report.signatures_g} below "
            f"bound {report.bound}"
        )
    return True, "ok"


def check_grid(
    factories: Sequence[AlgorithmFactory],
    values: Iterable[Value] = (0, 1),
    adversaries: Sequence[tuple[str, AdversaryFactory]] = (("fault-free", no_adversary),),
) -> list[BoundCheckRecord]:
    """The full scenario grid; returns every record (callers assert .ok)."""
    records = []
    for factory in factories:
        for name, adversary_factory in adversaries:
            for value in values:
                records.append(
                    check_scenario(factory, value, adversary_factory, name)
                )
    return records
