"""Theorem 2, executable: the ``Ω(n + t²)`` message lower bound.

The proof has two prongs, both runnable:

* **Linear prong** — one of the two values, say ``v*``, has a set ``Q`` of
  at least ``⌈(n−1)/2⌉`` non-transmitter processors that do *not* decide
  ``v*`` on an empty view (:func:`sensitivity_set` actually feeds a fresh
  processor silence and reads its decision).  In the fault-free history
  with value ``v*`` every member of ``Q`` must therefore receive at least
  one message.

* **Quadratic prong** — corrupt a set ``B ⊆ Q`` of ``⌊1 + t/2⌋``
  processors that never talk to each other and ignore the first ``⌈t/2⌉``
  messages they receive (history ``H'``).  If the algorithm is correct,
  every member of ``B`` must still be *sent* at least ``⌈1 + t/2⌉``
  messages by correct processors: otherwise the *switch* history ``H''`` —
  make one starved member ``p`` correct, corrupt instead the ≤ ``⌈t/2⌉``
  processors that had been feeding it — leaves ``p`` with a completely
  empty view while every other correct processor's view is unchanged from
  ``H'``; ``p`` fails to decide ``v*`` and agreement breaks.

For correct algorithms the experiment verifies the per-member message
counts; for an algorithm that under-communicates it executes ``H''`` and
reports the violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.adversary.lowerbound import IgnoreFirstAdversary, Theorem2SwitchAdversary
from repro.bounds.formulas import (
    theorem2_b_set_size,
    theorem2_ignore_count,
    theorem2_message_lower_bound,
    theorem2_per_b_member_messages,
)
from repro.core.protocol import AgreementAlgorithm, Context
from repro.core.runner import RunResult, run
from repro.core.types import ProcessorId, Value
from repro.core.validation import check_byzantine_agreement
from repro.crypto.signatures import SignatureService

AlgorithmFactory = Callable[[], AgreementAlgorithm]


def empty_view_decision(algorithm: AgreementAlgorithm, pid: ProcessorId) -> Value:
    """What *pid* decides if it never receives a single message.

    Runs the processor's actual protocol against total silence — the
    operational meaning of "does not agree on v if it receives no messages
    at all".
    """
    service = SignatureService()
    processor = algorithm.make_processor(pid)
    processor.bind(
        Context(
            pid=pid,
            n=algorithm.n,
            t=algorithm.t,
            transmitter=algorithm.transmitter,
            key=service.key_for(pid),
            service=service,
        )
    )
    for phase in range(1, algorithm.num_phases() + 1):
        processor.on_phase(phase, ())
    processor.on_final(())
    return processor.decision()


def sensitivity_set(algorithm: AgreementAlgorithm, value: Value) -> list[ProcessorId]:
    """``Q(value)``: non-transmitter processors whose empty-view decision
    differs from *value*."""
    return [
        pid
        for pid in range(algorithm.n)
        if pid != algorithm.transmitter
        and empty_view_decision(algorithm, pid) != value
    ]


def pick_starved_value(algorithm: AgreementAlgorithm) -> tuple[Value, list[ProcessorId]]:
    """The value whose sensitivity set is larger (the proof's ``v*``)."""
    q0 = sensitivity_set(algorithm, 0)
    q1 = sensitivity_set(algorithm, 1)
    return (0, q0) if len(q0) >= len(q1) else (1, q1)


@dataclass
class SwitchAttackOutcome:
    """The executed contradiction history ``H''``."""

    target: ProcessorId
    faulty: frozenset[ProcessorId]
    target_messages_received: int
    target_decision: object
    other_decisions: dict[ProcessorId, object]
    agreement_violated: bool


@dataclass
class Theorem2Report:
    """Everything Theorem 2's experiment measured for one algorithm."""

    n: int
    t: int
    #: the combined lower bound max{⌈(n−1)/2⌉, ⌊1+t/2⌋·⌈1+t/2⌉}.
    bound: int
    starved_value: Value
    sensitivity_size: int
    #: messages sent by correct processors in the fault-free v* history.
    fault_free_messages: int
    b_set: tuple[ProcessorId, ...]
    #: messages each B member received from correct processors in H'.
    received_by_b: dict[ProcessorId, int]
    per_member_requirement: int
    hprime_messages: int
    hprime_agreement_ok: bool
    attack: SwitchAttackOutcome | None

    @property
    def min_received(self) -> int:
        return min(self.received_by_b.values()) if self.received_by_b else 0

    @property
    def starvable(self) -> bool:
        """True when some B member was fed at most ⌈t/2⌉ messages — the
        precondition of the switch attack."""
        return self.min_received <= theorem2_ignore_count(self.t)

    @property
    def bound_respected(self) -> bool:
        return self.fault_free_messages >= (self.n - 1 + 1) // 2 and not self.starvable


def default_b_set(
    algorithm: AgreementAlgorithm, sensitive: Sequence[ProcessorId]
) -> tuple[ProcessorId, ...]:
    """The proof only needs *some* ``B ⊆ Q``; we take the highest-numbered
    sensitive processors (typically passive ones — the most starvable)."""
    size = theorem2_b_set_size(algorithm.t)
    return tuple(sorted(sensitive)[-size:])


def run_switch_attack(
    factory: AlgorithmFactory,
    hprime: RunResult,
    b_set: Sequence[ProcessorId],
    target: ProcessorId,
    starved_value: Value,
) -> SwitchAttackOutcome:
    """Execute ``H''`` for a *target* that received ≤ ⌈t/2⌉ messages."""
    algorithm = factory()
    starvers = frozenset(
        edge.src
        for _, phase in enumerate(hprime.history.phases)
        for edge in phase.edges_to(target)
        if edge.src in hprime.correct
    )
    adversary = Theorem2SwitchAdversary(
        b_rest=[b for b in b_set if b != target],
        starvers=starvers,
        target=target,
        ignore_count=theorem2_ignore_count(algorithm.t),
    )
    result = run(algorithm, starved_value, adversary)
    report = check_byzantine_agreement(result)
    received = result.history.individual(target).total_received()
    others = {
        pid: value
        for pid, value in result.decisions.items()
        if pid != target
    }
    return SwitchAttackOutcome(
        target=target,
        faulty=adversary.faulty,
        target_messages_received=received,
        target_decision=result.decisions.get(target),
        other_decisions=others,
        agreement_violated=not report.agreement or not report.all_decided,
    )


def theorem2_experiment(
    factory: AlgorithmFactory,
    b_set: Sequence[ProcessorId] | None = None,
) -> Theorem2Report:
    """Run the full Theorem 2 pipeline against one algorithm."""
    algorithm = factory()
    n, t = algorithm.n, algorithm.t

    starved_value, sensitive = pick_starved_value(algorithm)
    fault_free = run(factory(), starved_value)

    chosen_b = tuple(b_set) if b_set is not None else default_b_set(algorithm, sensitive)
    adversary = IgnoreFirstAdversary(chosen_b, theorem2_ignore_count(t))
    hprime = run(factory(), starved_value, adversary)
    hprime_report = check_byzantine_agreement(hprime)
    received = {
        b: hprime.metrics.correct_messages_received_by.get(b, 0) for b in chosen_b
    }

    attack: SwitchAttackOutcome | None = None
    starved = [
        b for b, got in received.items() if got <= theorem2_ignore_count(t)
    ]
    if starved:
        attack = run_switch_attack(
            factory, hprime, chosen_b, starved[0], starved_value
        )

    return Theorem2Report(
        n=n,
        t=t,
        bound=theorem2_message_lower_bound(n, t),
        starved_value=starved_value,
        sensitivity_size=len(sensitive),
        fault_free_messages=fault_free.metrics.messages_by_correct,
        b_set=chosen_b,
        received_by_b=received,
        per_member_requirement=theorem2_per_b_member_messages(t),
        hprime_messages=hprime.metrics.messages_by_correct,
        hprime_agreement_ok=hprime_report.ok,
        attack=attack,
    )
