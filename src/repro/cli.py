"""Command-line interface: run scenarios and experiments without writing code.

Usage (also via ``python -m repro``)::

    # run one algorithm against an adversary and print the cost ledger
    python -m repro run --algorithm algorithm-5 --n 100 --t 3 --value 1
    python -m repro run --algorithm algorithm-1 --n 7 --t 3 \
        --adversary silent:1,2 --value 1

    # list everything that is registered
    python -m repro list

    # side-by-side comparison at one (n, t)
    python -m repro compare --n 120 --t 2

    # execute a lower-bound proof
    python -m repro theorem1 --algorithm strawman-undersigning --n 6 --t 2
    python -m repro theorem2 --algorithm algorithm-1 --n 9 --t 4

Adversary specs: ``silent:PIDS``, ``crash:PID@PHASE,...``,
``equivocate`` (transmitter tells odd ids value 1, even ids value 0),
``garbage:PIDS``, ``random:SEED:PIDS``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.adversary.base import Adversary
from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    RandomizedAdversary,
    SilentAdversary,
)
from repro.algorithms.registry import ALGORITHMS, STRAWMEN, WORKLOADS, get
from repro.analysis.tables import format_table
from repro.bounds.theorem1 import theorem1_experiment
from repro.bounds.theorem2 import theorem2_experiment
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import run as run_algorithm
from repro.core.validation import check_byzantine_agreement


def _parse_pids(spec: str) -> list[int]:
    return [int(p) for p in spec.split(",") if p]


def parse_adversary(spec: str | None, algorithm: AgreementAlgorithm) -> Adversary | None:
    """Build an adversary from a CLI spec string (see module docstring)."""
    if not spec or spec == "none":
        return None
    kind, _, rest = spec.partition(":")
    if kind == "silent":
        return SilentAdversary(_parse_pids(rest))
    if kind == "crash":
        crashes = {}
        for item in rest.split(","):
            pid, _, phase = item.partition("@")
            crashes[int(pid)] = int(phase) if phase else 1
        return CrashAdversary(crashes)
    if kind == "equivocate":
        return EquivocatingTransmitter(
            algorithm.transmitter,
            {q: q % 2 for q in range(1, algorithm.n)},
        )
    if kind == "garbage":
        return GarbageAdversary(_parse_pids(rest))
    if kind == "random":
        seed, _, pids = rest.partition(":")
        return RandomizedAdversary(_parse_pids(pids), int(seed))
    raise SystemExit(f"unknown adversary spec {spec!r}")


def _build(args: argparse.Namespace) -> AgreementAlgorithm:
    info = get(args.algorithm)
    params = {}
    if args.s is not None:
        params["s"] = args.s
    for key in ("eps", "coin_bias", "max_rounds"):
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    return info(args.n, args.t, **params)


def _coins_for(args: argparse.Namespace, algorithm: AgreementAlgorithm):
    """A seeded coin source when *algorithm* flips coins, else ``None``."""
    if not algorithm.uses_coins:
        return None
    seed = getattr(args, "seed", None) or 0
    return algorithm.make_coin_source(seed)  # type: ignore[attr-defined]


def cmd_list(_: argparse.Namespace) -> int:
    """`repro list`: the registered algorithm table."""
    rows = [
        {
            "name": info.name,
            "family": info.family,
            "authenticated": info.authenticated,
            "source": info.source,
            "phases": info.phases_formula,
            "messages": info.messages_formula,
        }
        for info in (
            list(ALGORITHMS.values())
            + list(WORKLOADS.values())
            + list(STRAWMEN.values())
        )
    ]
    print(format_table(rows, title="Registered algorithms"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """`repro run`: one execution, optionally traced and exported."""
    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    instrument = bool(trace_out or metrics_out)

    transport = None
    faults_spec = getattr(args, "faults", None)
    if faults_spec:
        from repro.transport import FaultSpecError, FaultyTransport, parse_fault_plan

        try:
            plan = parse_fault_plan(
                faults_spec,
                n=algorithm.n,
                t=algorithm.t,
                num_phases=algorithm.num_phases(),
            )
        except FaultSpecError as error:
            print(f"repro run: {error}", file=sys.stderr)
            return 2
        if not plan.is_empty:
            transport = FaultyTransport(plan)

    trace_sink = None
    sinks: tuple = ()
    if trace_out:
        from repro.obs import JsonlTraceSink

        trace_sink = JsonlTraceSink(trace_out)
        sinks = (trace_sink,)
    coins = _coins_for(args, algorithm)
    try:
        result = run_algorithm(
            algorithm,
            args.value,
            adversary,
            sinks=sinks,
            collect_telemetry=instrument,
            transport=transport,
            coins=coins,
        )
    finally:
        if trace_sink is not None:
            trace_sink.close()
    excused: frozenset[int] = frozenset()
    if result.fault_events:
        from repro.transport import excused_processors

        excused = excused_processors(result.fault_events) & result.correct
    from repro.approx.validation import check_run_conditions

    report = check_run_conditions(result, algorithm, excused=excused)

    print(f"algorithm            : {algorithm.name} (n={algorithm.n}, t={algorithm.t})")
    print(f"phases               : {algorithm.num_phases()}")
    print(f"faulty               : {sorted(result.faulty) or 'none'}")
    if result.fault_events:
        print(f"faults injected      : {len(result.fault_events)} "
              f"(excused: {sorted(excused) or 'nobody'})")
    if coins is not None:
        print(f"coin seed / flips    : {coins.seed} / {coins.flips}")
    print(f"decisions            : {result.decided_values()}")
    print(f"messages (correct)   : {result.metrics.messages_by_correct}")
    print(f"signatures (correct) : {result.metrics.signatures_by_correct}")
    bound = algorithm.upper_bound_messages()
    if bound is not None:
        print(f"paper's message bound: {bound}")
    print(f"byzantine agreement  : {report}")
    if trace_out:
        print(f"trace written        : {trace_out}")
    if metrics_out:
        from repro.obs import write_metrics

        written = write_metrics(result, metrics_out)
        print(f"metrics written      : {metrics_out} ({written})")
    return 0 if report.ok else 1


def cmd_inspect(args: argparse.Namespace) -> int:
    """`repro inspect`: summarize and verify a repro-trace/1 file."""
    import json

    from repro.obs import render_summary, summarize_trace

    try:
        summary = summarize_trace(args.trace)
    except (OSError, ValueError) as error:
        print(f"repro inspect: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 1 if summary.consistency_errors() else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """`repro compare`: fault-free cost table across the registry."""
    rows = []
    for info in ALGORITHMS.values():
        try:
            algorithm = info(args.n, args.t)
        except Exception as error:  # size constraints differ per algorithm
            rows.append({"algorithm": info.name, "note": str(error)})
            continue
        result = run_algorithm(algorithm, 1, record_history=False)
        report = check_byzantine_agreement(result)
        rows.append(
            {
                "algorithm": info.name,
                "phases": algorithm.num_phases(),
                "messages": result.metrics.messages_by_correct,
                "signatures": result.metrics.signatures_by_correct,
                "agreement": report.ok,
            }
        )
    print(format_table(rows, title=f"Fault-free comparison at n={args.n}, t={args.t}"))
    return 0


def cmd_theorem1(args: argparse.Namespace) -> int:
    """`repro theorem1`: the Ω(nt) signature bound as an experiment."""
    report = theorem1_experiment(lambda: _build(args))
    print(f"bound n(t+1)/4         : {float(report.bound):.2f}")
    print(f"signatures in H + G    : {report.signatures_h + report.signatures_g}")
    print(f"min per-processor |A|  : {report.min_exchange} (needs {report.t + 1})")
    if report.attack is None:
        print("verdict                : not splittable — the bound is respected")
        return 0
    attack = report.attack
    print(f"splittable processors  : {report.weak_processors}")
    print(f"attack on {attack.target}: view==pH {attack.target_view_matches_h}, "
          f"decided {attack.target_decision!r} vs others "
          f"{sorted(set(attack.other_decisions.values()))!r}")
    print(f"agreement violated     : {attack.agreement_violated}")
    return 0


def cmd_theorem2(args: argparse.Namespace) -> int:
    """`repro theorem2`: the Ω(n + t²) message bound as an experiment."""
    report = theorem2_experiment(lambda: _build(args))
    print(f"combined lower bound   : {report.bound}")
    print(f"fault-free messages    : {report.fault_free_messages}")
    print(f"B set                  : {list(report.b_set)}")
    print(f"messages fed to B      : {report.received_by_b} "
          f"(each needs {report.per_member_requirement})")
    if report.attack is None:
        print("verdict                : B cannot be starved — the bound is respected")
        return 0
    attack = report.attack
    print(f"switch attack on {attack.target}: received "
          f"{attack.target_messages_received}, decided {attack.target_decision!r} "
          f"vs others {sorted(set(attack.other_decisions.values()))!r}")
    print(f"agreement violated     : {attack.agreement_violated}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """`repro trace`: human-readable phase-by-phase timeline."""
    from repro.analysis.trace import render_trace

    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    result = run_algorithm(
        algorithm, args.value, adversary, coins=_coins_for(args, algorithm)
    )
    print(render_trace(result, max_messages_per_phase=args.max_messages))
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    """`repro conformance`: replay §2's correctness rules over a run."""
    from repro.core.conformance import check_conformance

    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    result = run_algorithm(
        algorithm, args.value, adversary, coins=_coins_for(args, algorithm)
    )
    verdicts = check_conformance(result, _build(args))
    rows = []
    for pid in range(algorithm.n):
        verdict = verdicts[pid]
        rows.append(
            {
                "processor": pid,
                "corrupted": pid in result.faulty,
                "correct in H": verdict.correct_in_history,
                "first deviation": verdict.first_deviation_phase,
                "detail": verdict.deviations[0].describe()
                if verdict.deviations
                else "-",
            }
        )
    print(format_table(rows, title="Section 2 conformance (correct-at-phase-k)"))
    behavioural = [p for p in range(algorithm.n) if not verdicts[p].correct_in_history]
    print(f"\nbehaviourally faulty: {behavioural or 'none'} "
          f"(corrupted: {sorted(result.faulty) or 'none'})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """`repro lint`: run the BA001–BA010 protocol analyzer."""
    from pathlib import Path

    import repro
    from repro.lint import (
        BaselineError,
        apply_baseline,
        explain_rule,
        lint_paths,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.explain:
        explanation = explain_rule(args.explain)
        if explanation is None:
            print(f"repro lint: unknown rule {args.explain!r}", file=sys.stderr)
            return 2
        print(explanation)
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not look like a clean bill of health.
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    report = lint_paths(paths)

    if args.write_baseline:
        if not args.baseline:
            print(
                "repro lint: --write-baseline requires --baseline FILE",
                file=sys.stderr,
            )
            return 2
        target = Path(args.baseline)
        previous = load_baseline(target) if target.exists() else []
        count = write_baseline(report, target, previous)
        noun = "entry" if count == 1 else "entries"
        print(f"wrote {count} baseline {noun} to {target}")
        return 0

    baselined: list = []
    stale: list = []
    exit_code = report.exit_code
    if args.baseline:
        try:
            entries = load_baseline(Path(args.baseline))
        except BaselineError as error:
            print(f"repro lint: {error}", file=sys.stderr)
            return 2
        diff = apply_baseline(report, entries)
        baselined, stale = diff.matched, diff.stale
        exit_code = diff.exit_code
        # The rendered report shows only *new* findings (the gate);
        # grandfathered debt stays visible via SARIF suppressions and
        # the summary counts.
        visible = [f for f in report.findings if f not in set(baselined)]
        if args.format != "sarif":
            report = type(report)(
                findings=visible,
                files_checked=report.files_checked,
                rules_run=report.rules_run,
            )
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report, baselined))
    else:
        print(render_text(report))
        if baselined:
            noun = "finding" if len(baselined) == 1 else "findings"
            print(f"{len(baselined)} baselined {noun} not shown")
    for entry in stale:
        print(
            f"repro lint: stale baseline entry ({entry.rule} {entry.path}): "
            f"no longer found — regenerate with --write-baseline",
            file=sys.stderr,
        )
    return exit_code


#: The fixed perf basket: one pinned scenario per registered algorithm.
#: Sizes are chosen so the full basket finishes in seconds while still
#: exercising each algorithm's hot path; ``--quick`` halves the sizes for
#: use as a CI smoke.
BENCH_BASKET: tuple[tuple[str, int, int], ...] = (
    ("dolev-strong", 40, 2),
    ("active-set", 40, 2),
    ("oral-messages", 11, 2),
    ("algorithm-1", 9, 4),
    ("algorithm-2", 7, 3),
    ("algorithm-3", 120, 2),
    ("algorithm-5", 120, 2),
    ("informed-algorithm-2", 120, 2),
    ("phase-king", 24, 2),
)

BENCH_BASKET_QUICK: tuple[tuple[str, int, int], ...] = (
    ("dolev-strong", 20, 2),
    ("active-set", 20, 2),
    ("oral-messages", 9, 2),
    ("algorithm-1", 9, 4),
    ("algorithm-2", 7, 3),
    ("algorithm-3", 60, 2),
    ("algorithm-5", 60, 2),
    ("informed-algorithm-2", 60, 2),
    ("phase-king", 16, 2),
)

#: Batch-engine throughput cases: ``(name, n, t, runs)``.  Each runs a
#: whole seed sweep (alternating 0/1 inputs) through
#: :func:`repro.core.batch.run_batch` in one process; ``baseline_case``
#: in the emitted JSON names the scalar ``runner:`` case the speedup is
#: measured against (``scripts/bench_compare.py --min-batch-speedup``).
BENCH_BATCH: tuple[tuple[str, int, int, int], ...] = (
    ("algorithm-3", 120, 2, 256),
    ("algorithm-5", 120, 2, 64),
    # The kernel-backed cases get big run counts: their per-run cost is so
    # small that anything less is a sub-millisecond timing target, which
    # makes the wall-clock regression check needlessly noisy.
    ("phase-king", 24, 2, 4096),
    ("oral-messages", 11, 2, 4096),
)

BENCH_BATCH_QUICK: tuple[tuple[str, int, int, int], ...] = (
    ("algorithm-3", 60, 2, 128),
    ("algorithm-5", 60, 2, 32),
    ("phase-king", 16, 2, 2048),
    ("oral-messages", 9, 2, 2048),
)

#: Service-layer throughput cases: ``(label, requests, fault_rate)``.
#: Each replays a seeded open-loop traffic run (default workload mix)
#: through the :class:`~repro.service.scheduler.Scheduler` with one
#: worker, so the reported agreements/sec is a stable single-core floor —
#: the number ``scripts/bench_compare.py --min-service-rate`` gates on.
BENCH_SERVICE: tuple[tuple[str, int, float], ...] = (
    ("mixed", 400, 0.0),
    ("faulty", 200, 0.2),
)

BENCH_SERVICE_QUICK: tuple[tuple[str, int, float], ...] = (
    ("mixed", 120, 0.0),
    ("faulty", 60, 0.2),
)


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the fixed scenario basket and write a ``BENCH_*.json`` point.

    The JSON (schema ``repro-bench/1``) is the unit of the repo's perf
    trajectory: ``scripts/bench_compare.py`` diffs two of them and fails on
    regression.  Each case's figure is the **median over ``--trials``** of
    min-of-``--repeat`` wall-clock seconds — the min strips scheduler
    noise within a trial, the median strips whole-trial outliers (a GC
    pause, a noisy neighbour), which is what keeps the perf smoke quiet.
    """
    import json
    import statistics
    import time
    from functools import partial

    from repro.analysis.parallel import default_workers, expand, run_specs
    from repro.core.batch import run_batch

    workers = args.workers if args.workers is not None else default_workers()
    repeat = max(1, args.repeat)
    trials = max(1, args.trials)
    basket = BENCH_BASKET_QUICK if args.quick else BENCH_BASKET
    batch_basket = BENCH_BATCH_QUICK if args.quick else BENCH_BATCH
    service_basket = BENCH_SERVICE_QUICK if args.quick else BENCH_SERVICE
    cases: dict[str, dict[str, object]] = {}

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    for name, n, t in basket:
        info = get(name)
        trial_seconds: list[float] = []
        messages = 0
        for _ in range(trials):
            best = float("inf")
            for _ in range(repeat):
                algorithm = info(n, t)
                started = time.perf_counter()
                result = run_algorithm(algorithm, 1, record_history=False)
                best = min(best, time.perf_counter() - started)
                messages = result.metrics.messages_by_correct
            trial_seconds.append(best)
        seconds = statistics.median(trial_seconds)
        cases[f"runner:{name}"] = {
            "kind": "runner",
            "n": n,
            "t": t,
            "seconds": round(seconds, 6),
            "messages": messages,
            "messages_per_sec": round(messages / seconds, 1) if seconds else None,
        }

    # Batch-engine throughput: one whole seed sweep per case, one process.
    for name, n, t, runs in batch_basket:
        info = get(name)
        values = [run % 2 for run in range(runs)]
        trial_seconds = []
        messages = 0
        stats_json: dict[str, object] = {}
        for _ in range(trials):
            best = float("inf")
            for _ in range(repeat):
                algorithm = info(n, t)
                started = time.perf_counter()
                batch = run_batch(algorithm, values)
                best = min(best, time.perf_counter() - started)
                messages = sum(o.messages_by_correct for o in batch.outcomes)
                stats_json = batch.stats.to_json_dict()
            trial_seconds.append(best)
        seconds = statistics.median(trial_seconds)
        cases[f"batch:{name}"] = {
            "kind": "batch",
            "n": n,
            "t": t,
            "runs": runs,
            "unique_runs": stats_json.get("unique_runs"),
            "kernel_runs": stats_json.get("kernel_runs"),
            "digest_hit_rate": stats_json.get("digest_hit_rate"),
            "baseline_case": f"runner:{name}",
            "seconds": round(seconds, 6),
            "messages": messages,
            "messages_per_sec": round(messages / seconds, 1) if seconds else None,
        }

    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
        print(
            "repro bench --profile: top-20 cumulative hotspots over the "
            "runner and batch baskets (sweep/service cases and JSON "
            "output skipped)"
        )
        return 0

    # Large-n sweep throughput: the parallel executor over an E7-style grid.
    sweep_t = 2
    sweep_ns = (60, 120) if args.quick else (60, 120, 180, 240)
    sweep_values = (1,) if args.quick else (0, 1)
    specs = expand(
        [({"n": n}, partial(get("algorithm-3").build, n, sweep_t)) for n in sweep_ns],
        values=sweep_values,
    )
    started = time.perf_counter()
    points = run_specs(specs, workers=workers)
    seconds = time.perf_counter() - started
    swept_messages = sum(p.messages for p in points)
    cases["sweep:algorithm-3:grid"] = {
        "kind": "sweep",
        "scenarios": len(specs),
        "workers": workers,
        "seconds": round(seconds, 6),
        "messages": swept_messages,
        "scenarios_per_sec": round(len(specs) / seconds, 2) if seconds else None,
        "messages_per_sec": round(swept_messages / seconds, 1) if seconds else None,
    }

    # Service-layer throughput: one seeded open-loop traffic run per
    # case, one worker — a stable single-core agreements/sec floor.
    from repro.service import Scheduler, generate_schedule

    for label, requests, fault_rate in service_basket:
        schedule = generate_schedule(
            requests=requests, rate=50_000.0, seed=7, fault_rate=fault_rate
        )
        trial_stats = []
        for _ in range(trials):
            report = Scheduler(workers=1).serve(schedule)
            trial_stats.append(report.stats)
        trial_stats.sort(key=lambda s: s.wall_s)
        service_stats = trial_stats[len(trial_stats) // 2]
        e2e = service_stats.e2e
        cases[f"service:{label}"] = {
            "kind": "service",
            "requests": requests,
            "ok": service_stats.ok,
            "failed": service_stats.failed,
            "fault_rate": fault_rate,
            "waves": service_stats.waves,
            "seconds": round(service_stats.wall_s, 6),
            "messages": service_stats.messages_total,
            "messages_per_sec": (
                round(rate, 1)
                if (rate := service_stats.messages_per_sec) is not None
                else None
            ),
            "agreements_per_sec": (
                round(rate, 2)
                if (rate := service_stats.agreements_per_sec) is not None
                else None
            ),
            "p50_s": round(e2e.p50_s, 6) if e2e else None,
            "p99_s": round(e2e.p99_s, 6) if e2e else None,
            "unique_runs": service_stats.unique_runs,
            "dedup_ratio": (
                round(ratio, 2)
                if (ratio := service_stats.dedup_ratio) is not None
                else None
            ),
        }

    document = {
        "schema": "repro-bench/1",
        "workers": workers,
        "repeat": repeat,
        "trials": trials,
        "quick": bool(args.quick),
        "cases": cases,
    }
    rows = [
        {
            "case": key,
            "seconds": data["seconds"],
            "messages": data["messages"],
            "msgs/sec": data["messages_per_sec"],
        }
        for key, data in cases.items()
    ]
    print(
        format_table(
            rows,
            title=(
                f"repro bench (workers={workers}, repeat={repeat}, "
                f"trials={trials})"
            ),
        )
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.output}")
    return 0


def _finish_service_run(report, args: argparse.Namespace, command: str) -> int:
    """Shared tail of ``loadgen``/``serve``: summary, outputs, exit code."""
    import json

    from repro.obs.export import write_service_metrics

    stats = report.stats
    verdicts = report.verdict_counts()
    rate = stats.agreements_per_sec
    rate_text = f"{rate:.1f} agreements/sec " if rate is not None else ""
    print(
        f"repro {command}: {stats.requests} requests in "
        f"{stats.wall_s:.3f}s — {rate_text}"
        f"({stats.ok} ok, {stats.failed} failed, {stats.waves} "
        f"wave{'s' if stats.waves != 1 else ''})"
    )
    for stage, summary in (
        ("e2e", stats.e2e),
        ("queue", stats.queue),
        ("service", stats.service),
    ):
        if summary is not None:
            print(
                f"latency {stage:<8} p50={summary.p50_s:.6f}s "
                f"p95={summary.p95_s:.6f}s p99={summary.p99_s:.6f}s "
                f"max={summary.max_s:.6f}s"
            )
    if stats.unique_runs:
        ratio = stats.dedup_ratio
        print(
            f"dedup: {stats.requests} requests / {stats.unique_runs} unique "
            f"runs ({ratio:.1f}x), {stats.kernel_runs} kernel, "
            f"{stats.scalar_runs} scalar; digest hits "
            f"{stats.digest_hits}/{stats.digest_hits + stats.digest_misses}"
        )
    print("verdicts: " + ", ".join(f"{k}={v}" for k, v in verdicts.items()))
    if getattr(args, "json", False):
        print(json.dumps(stats.to_json_dict(), indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for outcome in report.outcomes:
                handle.write(json.dumps(outcome.to_json_dict(), sort_keys=True))
                handle.write("\n")
        print(f"wrote {len(report.outcomes)} responses to {args.out}")
    if args.metrics_out:
        fmt = write_service_metrics(stats, args.metrics_out)
        print(f"wrote {fmt} metrics to {args.metrics_out}")
    failures = report.failures()
    if failures:
        shown = ", ".join(
            f"#{o.request_id} {o.algorithm}: {o.verdict}" for o in failures[:5]
        )
        print(f"{command}: {len(failures)} failed verdicts ({shown})", file=sys.stderr)
        return 1
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """`repro loadgen`: seeded open-loop traffic against the service layer.

    Deterministic in ``(--requests, --rate, --seed, --mix, --fault-rate)``:
    verdicts are pure functions of request content, never of timing, so
    the printed verdict multiset is identical across repeats and worker
    counts — only the latency and throughput figures move.
    """
    import json

    from repro.service import DEFAULT_MIX, MixSpecError, Scheduler, generate_schedule

    try:
        schedule = generate_schedule(
            requests=args.requests,
            rate=args.rate,
            seed=args.seed,
            mix=args.mix or DEFAULT_MIX,
            fault_rate=args.fault_rate,
        )
    except (MixSpecError, ValueError) as error:
        print(f"loadgen: {error}", file=sys.stderr)
        return 2

    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as handle:
            for scheduled in schedule:
                line = scheduled.request.to_json_dict()
                line["arrival_s"] = round(scheduled.arrival_s, 6)
                handle.write(json.dumps(line, sort_keys=True))
                handle.write("\n")
        print(f"wrote {len(schedule)} requests to {args.emit}")
        return 0

    scheduler = Scheduler(
        workers=args.workers,
        max_stripe=args.max_stripe,
        telemetry_sample=args.telemetry_sample,
    )
    report = scheduler.serve(schedule)
    return _finish_service_run(report, args, "loadgen")


def cmd_serve(args: argparse.Namespace) -> int:
    """`repro serve`: replay ``repro-service/1`` JSONL requests from a file.

    Reads one request per line (``-`` for stdin) — the format
    ``repro loadgen --emit`` writes.  An optional ``arrival_s`` field per
    line is honoured as the open-loop arrival offset; absent, the request
    arrives immediately.
    """
    import json

    from repro.service import (
        AgreementRequest,
        RequestFormatError,
        ScheduledRequest,
        Scheduler,
    )

    source = args.input
    try:
        handle = sys.stdin if source == "-" else open(source, encoding="utf-8")
    except OSError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    schedule: list[ScheduledRequest] = []
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                request = AgreementRequest.from_json_dict(data)
                arrival = float(data.get("arrival_s", 0.0))
            except (json.JSONDecodeError, RequestFormatError, TypeError) as error:
                print(f"serve: {source}:{lineno}: {error}", file=sys.stderr)
                return 2
            schedule.append(ScheduledRequest(arrival_s=arrival, request=request))
    finally:
        if handle is not sys.stdin:
            handle.close()
    if not schedule:
        print(f"serve: {source} contains no requests", file=sys.stderr)
        return 2

    scheduler = Scheduler(
        workers=args.workers,
        max_stripe=args.max_stripe,
        telemetry_sample=args.telemetry_sample,
    )
    report = scheduler.serve(schedule)
    return _finish_service_run(report, args, "serve")


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Seeded fuzz campaign over the registered algorithms.

    Deterministic in ``(--algorithm, --budget, --seed)``: the same invocation
    prints the same summary regardless of ``--workers``.  Failures are
    shrunk to minimal counterexamples and, with ``--save-corpus``, persisted
    as replayable JSON (replay one with ``--replay FILE``).
    """
    from repro.fuzz import (
        CorpusEntry,
        load_entry,
        plan_cases,
        replay_entry,
        run_campaign,
        save_entry,
        save_trace,
        shrink_result,
        summarize,
    )
    from repro.fuzz.campaign import (
        default_algorithm_names,
        known_algorithm_names,
        plan_chaos_cases,
    )

    if args.replay:
        try:
            entry = load_entry(args.replay)
        except OSError as error:
            print(f"repro fuzz: cannot read corpus file: {error}", file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as error:
            print(f"repro fuzz: corrupt corpus file {args.replay!r}: {error}",
                  file=sys.stderr)
            return 2
        outcome = replay_entry(entry)
        print(f"algorithm : {entry.algorithm} (n={entry.n}, t={entry.t}, "
              f"params={entry.params or '{}'})")
        print(f"value     : {entry.value}")
        print(f"script    : {entry.script.describe()}")
        if entry.fault_plan is not None and not entry.fault_plan.is_empty:
            print(f"faults    : {entry.fault_plan.describe()}")
        print(f"recorded  : {entry.verdict} — {entry.detail or '(no detail)'}")
        print(f"replayed  : {outcome.verdict} — {outcome.detail or '(no detail)'}")
        reproduced = outcome.verdict == entry.verdict
        print(f"reproduced: {reproduced}")
        return 0 if reproduced else 1

    if args.algorithm == "all":
        names = default_algorithm_names()
    else:
        known = known_algorithm_names()
        if args.algorithm not in known:
            print(f"repro fuzz: unknown algorithm {args.algorithm!r}; "
                  f"known: {', '.join(known)} (or 'all')", file=sys.stderr)
            return 2
        names = [args.algorithm]

    if args.fault_rate is not None:
        if not 0.0 < args.fault_rate <= 1.0:
            print(f"repro fuzz: --fault-rate must be in (0, 1], "
                  f"got {args.fault_rate}", file=sys.stderr)
            return 2
        cases = plan_chaos_cases(
            names, budget=args.budget, seed=args.seed, fault_rate=args.fault_rate
        )
    else:
        cases = plan_cases(names, budget=args.budget, seed=args.seed)
    results = run_campaign(
        cases,
        workers=args.workers,
        task_timeout=args.task_timeout,
        checkpoint=args.checkpoint,
    )

    failures = [r for r in results if r.failed]
    if failures and not args.no_shrink:
        failures = [shrink_result(r) for r in failures]

    mode = (
        f", chaos fault-rate={args.fault_rate}"
        if args.fault_rate is not None
        else ""
    )
    rows = [s.as_row() for s in summarize(results)]
    print(format_table(
        rows,
        title=f"repro fuzz (budget={args.budget}/algorithm, "
        f"seed={args.seed}{mode})",
    ))

    for result in failures:
        case = result.case
        script = result.minimal_script
        print(f"\n[{result.outcome.verdict}] {case.algorithm} "
              f"(n={case.n}, t={case.t}) value={case.value} seed={case.seed}")
        print(f"  detail : {result.outcome.detail or '(none)'}")
        print(f"  script : {script.describe()}")
        if case.fault_plan is not None and not case.fault_plan.is_empty:
            print(f"  faults : {case.fault_plan.describe()}")
        if args.save_corpus:
            entry = CorpusEntry(
                algorithm=case.algorithm,
                n=case.n,
                t=case.t,
                value=case.value,
                seed=case.seed,
                verdict=result.outcome.verdict,
                detail=result.outcome.detail,
                script=script,
                params=dict(case.params),
                fault_plan=case.fault_plan,
                coin_seed=case.coin_seed,
            )
            path = save_entry(args.save_corpus, entry)
            print(f"  saved  : {path}")
            trace_path = save_trace(path, entry)
            print(f"  trace  : {trace_path}")

    print(f"\n{len(results)} cases, {len(failures)} failing")
    return 1 if failures else 0


def cmd_approx_smoke(args: argparse.Namespace) -> int:
    """`repro approx-smoke`: the seeded statistical gate for the workloads."""
    from repro.approx.stats import run_statistical_smoke

    try:
        report = run_statistical_smoke(args.seed)
    except AssertionError as error:
        print(f"repro approx-smoke: FAIL — {error}", file=sys.stderr)
        return 1
    print(f"seed                  : {report['seed']}")
    print(f"coin KS statistic     : {report['coin_ks']:.4f} "
          f"(critical {report['coin_ks_critical']:.4f} at alpha=0.01)")
    print(f"ben-or success prob   : {report['benor_success_probability']:.4f}")
    print(f"ben-or round histogram: {report['benor_round_histogram']}")
    print(f"ben-or chi^2 p-value  : {report['benor_chi2_pvalue']:.4f}")
    for key in sorted(report):
        if key.endswith("_rounds"):
            print(f"{key:<22}: {report[key]}")
    print("approx-smoke          : all statistical checks pass")
    return 0


def cmd_experiments(_: argparse.Namespace) -> int:
    """`repro experiments`: the fast E1–E12 verdict table."""
    from repro.analysis.experiments import run_all_experiments

    report = run_all_experiments()
    print(report.to_markdown())
    if report.all_hold:
        print("\nall experiments reproduce the paper's claims")
        return 0
    print(f"\nFAILING: {[r.experiment for r in report.failing()]}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dolev-Reischuk 'Bounds on Information Exchange for "
        "Byzantine Agreement' — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms").set_defaults(
        func=cmd_list
    )

    def add_system_args(p: argparse.ArgumentParser) -> None:
        """Attach the shared --n/--t/--s/--value/--adversary options."""
        p.add_argument("--algorithm", required=True, help="registry name")
        p.add_argument("--n", type=int, required=True)
        p.add_argument("--t", type=int, required=True)
        p.add_argument("--s", type=int, default=None, help="tuning parameter "
                       "(Algorithm 3's chain-set size / Algorithm 5's tree size)")
        p.add_argument("--eps", type=float, default=None,
                       help="agreement tolerance for the approximate workloads")
        p.add_argument("--coin-bias", type=float, default=None, dest="coin_bias",
                       help="P[coin = 1] for the randomized workloads "
                       "(default: 0.5)")
        p.add_argument("--max-rounds", type=int, default=None, dest="max_rounds",
                       help="round cap for the randomized workloads")
        p.add_argument("--seed", type=int, default=0,
                       help="coin-stream seed for the randomized workloads "
                       "(ignored by deterministic algorithms)")

    p_run = sub.add_parser("run", help="execute one scenario")
    add_system_args(p_run)
    p_run.add_argument("--value", type=int, default=1)
    p_run.add_argument("--adversary", default=None, help="see module docstring")
    p_run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a repro-trace/1 JSONL event trace (inspect it with "
        "'repro inspect FILE')",
    )
    p_run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export run metrics: Prometheus text, or a repro-bench/1 JSON "
        "when FILE ends in .json (diffable with scripts/bench_compare.py)",
    )
    p_run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject benign delivery faults, e.g. "
        "'crash:2@1; omit-send:3:0.5@2; drop:0->4; partition:1,2@3-4; "
        "seed:7' — each injection lands in the trace as a 'fault' event "
        "and agreement is judged crash-tolerantly (excusing the affected "
        "processors)",
    )
    p_run.set_defaults(func=cmd_run)

    p_inspect = sub.add_parser(
        "inspect",
        help="summarise a saved trace: per-phase histograms, adaptive cost, "
        "ledger consistency",
    )
    p_inspect.add_argument("trace", help="a repro-trace/1 JSONL file")
    p_inspect.add_argument(
        "--json", action="store_true",
        help="machine-readable summary instead of the text report",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_cmp = sub.add_parser("compare", help="fault-free comparison table")
    p_cmp.add_argument("--n", type=int, required=True)
    p_cmp.add_argument("--t", type=int, required=True)
    p_cmp.set_defaults(func=cmd_compare)

    p_t1 = sub.add_parser("theorem1", help="run the signature lower-bound proof")
    add_system_args(p_t1)
    p_t1.set_defaults(func=cmd_theorem1)

    p_t2 = sub.add_parser("theorem2", help="run the message lower-bound proof")
    add_system_args(p_t2)
    p_t2.set_defaults(func=cmd_theorem2)

    p_trace = sub.add_parser("trace", help="print a phase-by-phase timeline")
    add_system_args(p_trace)
    p_trace.add_argument("--value", type=int, default=1)
    p_trace.add_argument("--adversary", default=None)
    p_trace.add_argument("--max-messages", type=int, default=12,
                         help="messages shown per phase before eliding")
    p_trace.set_defaults(func=cmd_trace)

    p_conf = sub.add_parser(
        "conformance",
        help="replay the correctness rules and localise behavioural faults",
    )
    add_system_args(p_conf)
    p_conf.add_argument("--value", type=int, default=1)
    p_conf.add_argument("--adversary", default=None)
    p_conf.set_defaults(func=cmd_conformance)

    p_approx = sub.add_parser(
        "approx-smoke",
        help="seeded statistical gate: coin uniformity (KS), Ben-Or's "
        "geometric round tail (chi^2), eps-convergence",
    )
    p_approx.add_argument(
        "--seed", type=int, default=0,
        help="ensemble seed; the gate is deterministic per seed (default: 0)",
    )
    p_approx.set_defaults(func=cmd_approx_smoke)

    p_exp = sub.add_parser(
        "experiments",
        help="fast pass over every paper experiment (E1–E12), verdict table",
    )
    p_exp.set_defaults(func=cmd_experiments)

    p_bench = sub.add_parser(
        "bench",
        help="time the fixed perf basket and write a BENCH JSON "
        "(compare two with scripts/bench_compare.py)",
    )
    p_bench.add_argument(
        "--output", default="BENCH_runner.json", help="where to write the JSON"
    )
    p_bench.add_argument(
        "--workers", type=int, default=None,
        help="sweep worker processes (default: $REPRO_SWEEP_WORKERS or CPU count)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions per runner case; min is reported (default: 3)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="smaller basket for CI smoke runs",
    )
    p_bench.add_argument(
        "--trials", type=int, default=1,
        help="independent timing trials per case; the median of the "
        "per-trial minima is reported, which strips whole-trial outliers "
        "(default: 1)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="run the runner and batch baskets under cProfile and print the "
        "top-20 cumulative hotspots instead of writing the JSON",
    )
    p_bench.set_defaults(func=cmd_bench)

    def add_service_args(p: argparse.ArgumentParser) -> None:
        """Flags shared by the ``loadgen``/``serve`` service pair."""
        p.add_argument(
            "--workers", type=int, default=None,
            help="scheduler pool size (default: $REPRO_SWEEP_WORKERS or CPU "
            "count; 1 serves serially in-process)",
        )
        p.add_argument(
            "--max-stripe", type=int, default=256,
            help="max requests per worker stripe — the batching stripe of "
            "the sizing formula (default: 256)",
        )
        p.add_argument(
            "--telemetry-sample", type=int, default=1,
            help="instrumented representative runs per stripe feeding the "
            "per-phase latency percentiles; 0 disables (default: 1)",
        )
        p.add_argument(
            "--out", default=None, metavar="FILE",
            help="write per-request response records as repro-service/1 JSONL",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="FILE",
            help="export capacity metrics: Prometheus text, or a "
            "repro-bench/1 JSON with a service:loadgen case when FILE ends "
            "in .json (gate it with scripts/bench_compare.py "
            "--min-service-rate)",
        )
        p.add_argument(
            "--json", action="store_true",
            help="also print the full machine-readable stats document",
        )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop Poisson traffic against the agreement "
        "service; prints agreements/sec and latency percentiles",
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=200,
        help="number of requests to generate (default: 200)",
    )
    p_loadgen.add_argument(
        "--rate", type=float, default=500.0,
        help="mean offered load in requests/sec, Poisson arrivals "
        "(default: 500)",
    )
    p_loadgen.add_argument(
        "--seed", type=int, default=0,
        help="master seed: arrivals, mix choices, values, fault plans and "
        "coin seeds all derive from it (default: 0)",
    )
    p_loadgen.add_argument(
        "--mix", default=None,
        help="workload mix 'NAME:k=v,k=v[:WEIGHT]; ...' (n= and t= "
        "required per clause; default: a batch/kernel/approx blend)",
    )
    p_loadgen.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="fraction of exact-family requests carrying a seeded benign "
        "fault plan (default: 0)",
    )
    p_loadgen.add_argument(
        "--emit", default=None, metavar="FILE",
        help="write the generated schedule as repro-service/1 JSONL and "
        "exit without serving (replay it with 'repro serve FILE')",
    )
    add_service_args(p_loadgen)
    p_loadgen.set_defaults(func=cmd_loadgen)

    p_serve = sub.add_parser(
        "serve",
        help="serve repro-service/1 JSONL requests from a file or stdin "
        "(the format 'repro loadgen --emit' writes)",
    )
    p_serve.add_argument(
        "input",
        help="requests file, one JSON object per line ('-' reads stdin); "
        "an arrival_s field per line sets the open-loop arrival offset",
    )
    add_service_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="seeded adversary fuzzing with counterexample shrinking",
    )
    p_fuzz.add_argument(
        "--algorithm", default="all",
        help="registry name, or 'all' for every real algorithm (default)",
    )
    p_fuzz.add_argument(
        "--budget", type=int, default=200,
        help="generated scripts per algorithm (default: 200)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign master seed; per-case seeds are derived by hashing",
    )
    p_fuzz.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: $REPRO_SWEEP_WORKERS or CPU count); "
        "the summary is identical for any worker count",
    )
    p_fuzz.add_argument(
        "--save-corpus", default=None, metavar="DIR",
        help="persist shrunk failures as replayable JSON under DIR",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimising them",
    )
    p_fuzz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-execute one corpus JSON file and check its verdict reproduces",
    )
    p_fuzz.add_argument(
        "--fault-rate", type=float, default=None, metavar="RATE",
        help="chaos mode: fuzz with seeded benign delivery faults "
        "(crash/omission/drop/partition) at this intensity in (0, 1] "
        "instead of Byzantine scripts; verdicts use the crash-tolerant "
        "oracle reading",
    )
    p_fuzz.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-case deadline; wedged workers are terminated and their "
        "chunk retried (default: no deadline)",
    )
    p_fuzz.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="resumable progress file: an interrupted campaign re-run with "
        "the same arguments skips finished chunks (deleted on completion)",
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_lint = sub.add_parser(
        "lint",
        help="static verification of the protocol invariants (BA001-BA010)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="diff findings against a committed baseline; only new ones fail",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the --baseline file from the current findings",
    )
    p_lint.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the rationale for one rule id (e.g. --explain BA006)",
    )
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
