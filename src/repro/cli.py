"""Command-line interface: run scenarios and experiments without writing code.

Usage (also via ``python -m repro``)::

    # run one algorithm against an adversary and print the cost ledger
    python -m repro run --algorithm algorithm-5 --n 100 --t 3 --value 1
    python -m repro run --algorithm algorithm-1 --n 7 --t 3 \
        --adversary silent:1,2 --value 1

    # list everything that is registered
    python -m repro list

    # side-by-side comparison at one (n, t)
    python -m repro compare --n 120 --t 2

    # execute a lower-bound proof
    python -m repro theorem1 --algorithm strawman-undersigning --n 6 --t 2
    python -m repro theorem2 --algorithm algorithm-1 --n 9 --t 4

Adversary specs: ``silent:PIDS``, ``crash:PID@PHASE,...``,
``equivocate`` (transmitter tells odd ids value 1, even ids value 0),
``garbage:PIDS``, ``random:SEED:PIDS``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.adversary.base import Adversary
from repro.adversary.standard import (
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
    RandomizedAdversary,
    SilentAdversary,
)
from repro.algorithms.registry import ALGORITHMS, STRAWMEN, get
from repro.analysis.tables import format_table
from repro.bounds.theorem1 import theorem1_experiment
from repro.bounds.theorem2 import theorem2_experiment
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import run as run_algorithm
from repro.core.validation import check_byzantine_agreement


def _parse_pids(spec: str) -> list[int]:
    return [int(p) for p in spec.split(",") if p]


def parse_adversary(spec: str | None, algorithm: AgreementAlgorithm) -> Adversary | None:
    """Build an adversary from a CLI spec string (see module docstring)."""
    if not spec or spec == "none":
        return None
    kind, _, rest = spec.partition(":")
    if kind == "silent":
        return SilentAdversary(_parse_pids(rest))
    if kind == "crash":
        crashes = {}
        for item in rest.split(","):
            pid, _, phase = item.partition("@")
            crashes[int(pid)] = int(phase) if phase else 1
        return CrashAdversary(crashes)
    if kind == "equivocate":
        return EquivocatingTransmitter(
            algorithm.transmitter,
            {q: q % 2 for q in range(1, algorithm.n)},
        )
    if kind == "garbage":
        return GarbageAdversary(_parse_pids(rest))
    if kind == "random":
        seed, _, pids = rest.partition(":")
        return RandomizedAdversary(_parse_pids(pids), int(seed))
    raise SystemExit(f"unknown adversary spec {spec!r}")


def _build(args: argparse.Namespace) -> AgreementAlgorithm:
    info = get(args.algorithm)
    params = {}
    if args.s is not None:
        params["s"] = args.s
    return info(args.n, args.t, **params)


def cmd_list(_: argparse.Namespace) -> int:
    rows = [
        {
            "name": info.name,
            "authenticated": info.authenticated,
            "source": info.source,
            "phases": info.phases_formula,
            "messages": info.messages_formula,
        }
        for info in list(ALGORITHMS.values()) + list(STRAWMEN.values())
    ]
    print(format_table(rows, title="Registered algorithms"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    result = run_algorithm(algorithm, args.value, adversary)
    report = check_byzantine_agreement(result)

    print(f"algorithm            : {algorithm.name} (n={algorithm.n}, t={algorithm.t})")
    print(f"phases               : {algorithm.num_phases()}")
    print(f"faulty               : {sorted(result.faulty) or 'none'}")
    print(f"decisions            : {result.decided_values()}")
    print(f"messages (correct)   : {result.metrics.messages_by_correct}")
    print(f"signatures (correct) : {result.metrics.signatures_by_correct}")
    bound = algorithm.upper_bound_messages()
    if bound is not None:
        print(f"paper's message bound: {bound}")
    print(f"byzantine agreement  : {report}")
    return 0 if report.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for info in ALGORITHMS.values():
        try:
            algorithm = info(args.n, args.t)
        except Exception as error:  # size constraints differ per algorithm
            rows.append({"algorithm": info.name, "note": str(error)})
            continue
        result = run_algorithm(algorithm, 1, record_history=False)
        report = check_byzantine_agreement(result)
        rows.append(
            {
                "algorithm": info.name,
                "phases": algorithm.num_phases(),
                "messages": result.metrics.messages_by_correct,
                "signatures": result.metrics.signatures_by_correct,
                "agreement": report.ok,
            }
        )
    print(format_table(rows, title=f"Fault-free comparison at n={args.n}, t={args.t}"))
    return 0


def cmd_theorem1(args: argparse.Namespace) -> int:
    report = theorem1_experiment(lambda: _build(args))
    print(f"bound n(t+1)/4         : {float(report.bound):.2f}")
    print(f"signatures in H + G    : {report.signatures_h + report.signatures_g}")
    print(f"min per-processor |A|  : {report.min_exchange} (needs {report.t + 1})")
    if report.attack is None:
        print("verdict                : not splittable — the bound is respected")
        return 0
    attack = report.attack
    print(f"splittable processors  : {report.weak_processors}")
    print(f"attack on {attack.target}: view==pH {attack.target_view_matches_h}, "
          f"decided {attack.target_decision!r} vs others "
          f"{sorted(set(attack.other_decisions.values()))!r}")
    print(f"agreement violated     : {attack.agreement_violated}")
    return 0


def cmd_theorem2(args: argparse.Namespace) -> int:
    report = theorem2_experiment(lambda: _build(args))
    print(f"combined lower bound   : {report.bound}")
    print(f"fault-free messages    : {report.fault_free_messages}")
    print(f"B set                  : {list(report.b_set)}")
    print(f"messages fed to B      : {report.received_by_b} "
          f"(each needs {report.per_member_requirement})")
    if report.attack is None:
        print("verdict                : B cannot be starved — the bound is respected")
        return 0
    attack = report.attack
    print(f"switch attack on {attack.target}: received "
          f"{attack.target_messages_received}, decided {attack.target_decision!r} "
          f"vs others {sorted(set(attack.other_decisions.values()))!r}")
    print(f"agreement violated     : {attack.agreement_violated}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.trace import render_trace

    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    result = run_algorithm(algorithm, args.value, adversary)
    print(render_trace(result, max_messages_per_phase=args.max_messages))
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    from repro.core.conformance import check_conformance

    algorithm = _build(args)
    adversary = parse_adversary(args.adversary, algorithm)
    result = run_algorithm(algorithm, args.value, adversary)
    verdicts = check_conformance(result, _build(args))
    rows = []
    for pid in range(algorithm.n):
        verdict = verdicts[pid]
        rows.append(
            {
                "processor": pid,
                "corrupted": pid in result.faulty,
                "correct in H": verdict.correct_in_history,
                "first deviation": verdict.first_deviation_phase,
                "detail": verdict.deviations[0].describe()
                if verdict.deviations
                else "-",
            }
        )
    print(format_table(rows, title="Section 2 conformance (correct-at-phase-k)"))
    behavioural = [p for p in range(algorithm.n) if not verdicts[p].correct_in_history]
    print(f"\nbehaviourally faulty: {behavioural or 'none'} "
          f"(corrupted: {sorted(result.faulty) or 'none'})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.lint import lint_paths, render_json, render_text

    paths = args.paths or [str(Path(repro.__file__).parent)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not look like a clean bill of health.
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    report = lint_paths(paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def cmd_experiments(_: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_all_experiments

    report = run_all_experiments()
    print(report.to_markdown())
    if report.all_hold:
        print("\nall experiments reproduce the paper's claims")
        return 0
    print(f"\nFAILING: {[r.experiment for r in report.failing()]}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dolev-Reischuk 'Bounds on Information Exchange for "
        "Byzantine Agreement' — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms").set_defaults(
        func=cmd_list
    )

    def add_system_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algorithm", required=True, help="registry name")
        p.add_argument("--n", type=int, required=True)
        p.add_argument("--t", type=int, required=True)
        p.add_argument("--s", type=int, default=None, help="tuning parameter "
                       "(Algorithm 3's chain-set size / Algorithm 5's tree size)")

    p_run = sub.add_parser("run", help="execute one scenario")
    add_system_args(p_run)
    p_run.add_argument("--value", type=int, default=1)
    p_run.add_argument("--adversary", default=None, help="see module docstring")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="fault-free comparison table")
    p_cmp.add_argument("--n", type=int, required=True)
    p_cmp.add_argument("--t", type=int, required=True)
    p_cmp.set_defaults(func=cmd_compare)

    p_t1 = sub.add_parser("theorem1", help="run the signature lower-bound proof")
    add_system_args(p_t1)
    p_t1.set_defaults(func=cmd_theorem1)

    p_t2 = sub.add_parser("theorem2", help="run the message lower-bound proof")
    add_system_args(p_t2)
    p_t2.set_defaults(func=cmd_theorem2)

    p_trace = sub.add_parser("trace", help="print a phase-by-phase timeline")
    add_system_args(p_trace)
    p_trace.add_argument("--value", type=int, default=1)
    p_trace.add_argument("--adversary", default=None)
    p_trace.add_argument("--max-messages", type=int, default=12,
                         help="messages shown per phase before eliding")
    p_trace.set_defaults(func=cmd_trace)

    p_conf = sub.add_parser(
        "conformance",
        help="replay the correctness rules and localise behavioural faults",
    )
    add_system_args(p_conf)
    p_conf.add_argument("--value", type=int, default=1)
    p_conf.add_argument("--adversary", default=None)
    p_conf.set_defaults(func=cmd_conformance)

    p_exp = sub.add_parser(
        "experiments",
        help="fast pass over every paper experiment (E1–E12), verdict table",
    )
    p_exp.set_defaults(func=cmd_experiments)

    p_lint = sub.add_parser(
        "lint",
        help="static verification of the protocol invariants (BA001-BA005)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
