"""Event sinks: the runner's structured trace stream.

The runner can be handed any number of :class:`EventSink` objects via its
``sinks=`` keyword; during the run it emits schema-versioned
(``repro-trace/1``) events — ``run_start``, ``phase_start``, ``send``,
``deliver``, ``decide``, ``run_end`` — each a flat JSON-able mapping.
:class:`JsonlTraceSink` persists the stream as JSON Lines (one event per
line, compact separators, sorted keys), which makes two traces of the same
seeded run byte-comparable; :class:`ListSink` keeps the events in memory
for tests and ad-hoc analysis.

The event vocabulary and the per-event fields are documented in
``docs/telemetry.md``; :mod:`repro.obs.inspect` is the reference consumer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Protocol, runtime_checkable

from repro.core.message import CanonicalisationError, payload_digest

#: Version tag carried by every trace's ``run_start`` event.  Bump on any
#: field change; consumers must reject majors they do not understand.
TRACE_SCHEMA = "repro-trace/1"

#: The complete event vocabulary of ``repro-trace/1``.  ``fault`` events
#: are emitted only by fault-injecting transports; each carries its own
#: ``fault_schema`` (``repro-fault/1``) version tag.
EVENT_KINDS = (
    "run_start",
    "phase_start",
    "send",
    "deliver",
    "fault",
    "decide",
    "run_end",
)

#: Scalars JSON can carry losslessly; anything else is ``repr``-ed.
_JSON_SCALARS = (bool, int, float, str)


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive the runner's trace events.

    Implementations must treat :meth:`emit` as hot-path code: the runner
    calls it once per sent message when tracing is on.  :meth:`close` is
    called by whoever *opened* the sink (the CLI, a sweep worker) — the
    runner never closes sinks it was handed.
    """

    def emit(self, event: Mapping[str, Any]) -> None:
        """Receive one trace event (a flat JSON-able mapping)."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resources."""
        ...


class ListSink:
    """An in-memory sink: events accumulate on :attr:`events`."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: Mapping[str, Any]) -> None:
        """Append a copy of *event* (the runner may reuse its buffers)."""
        self.events.append(dict(event))

    def close(self) -> None:
        """No resources to release."""

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All collected events of one kind, in emission order."""
        return [e for e in self.events if e.get("event") == kind]


class JsonlTraceSink:
    """Persist the event stream as JSON Lines (``repro-trace/1``).

    One event per line, compact separators, sorted keys — so two traces of
    identical runs are byte-identical (timings come from the runner's
    injectable clock; inject a fake clock for full determinism).  Usable as
    a context manager::

        with JsonlTraceSink("run.jsonl") as sink:
            run(algorithm, value, sinks=(sink,))
    """

    __slots__ = ("_handle", "_owns_handle", "path")

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self._handle: IO[str] = open(self.path, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self.path = None
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Mapping[str, Any]) -> None:
        """Serialise one event as a compact, key-sorted JSON line."""
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")

    def close(self) -> None:
        """Close the file if this sink opened it (not a borrowed handle)."""
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def jsonable(value: Any) -> Any:
    """Reduce *value* to something JSON can carry losslessly.

    Scalars pass through; anything richer (tuples, signatures, frozen
    dataclasses) is ``repr``-ed — traces record *what was decided/sent*,
    not reconstructable objects (the digest identifies the payload).
    """
    if value is None or isinstance(value, _JSON_SCALARS):
        return value
    return repr(value)


def safe_digest(payload: Any) -> str | None:
    """:func:`~repro.core.message.payload_digest`, or ``None`` when the
    payload is not canonicalisable (a fuzzing adversary may send anything).
    """
    try:
        return payload_digest(payload)
    except (CanonicalisationError, TypeError):
        return None


def read_events(path: str | Path) -> Iterable[dict[str, Any]]:
    """Iterate the events of a JSONL trace file.

    Raises:
        ValueError: on a line that is not a JSON object.
    """
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not JSON: {error}") from error
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{number}: event is not an object")
            yield event
