"""Run telemetry: phase timings and per-processor handler profiling.

The paper's bounds are counts over a history; this module adds the *time*
axis the counts lack.  When instrumentation is on (any sink attached, or
``collect_telemetry=True``), the runner records per-phase wall/CPU timings
and per-processor message-handling timings into a :class:`RunTelemetry`
attached to the :class:`~repro.core.runner.RunResult`.

All timestamps come from an injectable :class:`Clock`, so tests inject a
:class:`TickClock` and assert byte-identical traces; production uses
:data:`SYSTEM_CLOCK` (``time.perf_counter`` / ``time.process_time``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True, slots=True)
class Clock:
    """A pair of monotonic time sources: wall clock and process CPU time."""

    wall: Callable[[], float] = time.perf_counter
    cpu: Callable[[], float] = time.process_time


#: The production clock (perf_counter wall time, process_time CPU time).
SYSTEM_CLOCK = Clock()


class TickClock:
    """A deterministic fake clock: every reading advances by a fixed step.

    Both ``wall()`` and ``cpu()`` read the same counter, so any quantity
    derived from it is a pure function of *how many* readings were taken —
    which is itself deterministic for a seeded run.  Inject it to make
    traces and telemetry byte-reproducible.
    """

    __slots__ = ("_now", "_step")

    def __init__(self, step: float = 0.001) -> None:
        self._now = 0.0
        self._step = step

    def _tick(self) -> float:
        self._now += self._step
        return self._now

    @property
    def wall(self) -> Callable[[], float]:
        """Wall-time reading (advances the shared counter)."""
        return self._tick

    @property
    def cpu(self) -> Callable[[], float]:
        """CPU-time reading (advances the shared counter)."""
        return self._tick


@dataclass(slots=True)
class PhaseTiming:
    """Wall/CPU seconds spent executing one phase of the lock-step loop."""

    phase: int
    wall_s: float
    cpu_s: float

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (used inside the trace's ``run_end`` event)."""
        return {
            "phase": self.phase,
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
        }


@dataclass(slots=True)
class RunTelemetry:
    """Timing profile of one instrumented execution.

    ``handler_wall_s[pid]`` accumulates the wall time spent inside
    processor *pid*'s ``on_phase`` handler (its message-handling cost);
    ``per_phase`` holds one :class:`PhaseTiming` per executed phase;
    ``wall_s``/``cpu_s`` cover the whole run including routing and
    adversary turns.
    """

    wall_s: float = 0.0
    cpu_s: float = 0.0
    per_phase: list[PhaseTiming] = field(default_factory=list)
    handler_wall_s: dict[int, float] = field(default_factory=dict)
    handler_calls: dict[int, int] = field(default_factory=dict)
    events_emitted: int = 0
    #: Signature-digest memo accounting for this run (hits answered from a
    #: memo, misses that paid the canonical-walk-plus-hash computation).
    digest_memo_hits: int = 0
    digest_memo_misses: int = 0
    #: :func:`~repro.core.message.canonical` tuple accounting for this run:
    #: ``fast`` took the all-primitives shortcut, ``slow`` recursed.
    canonical_fast_hits: int = 0
    canonical_slow_hits: int = 0

    def add_handler_time(self, pid: int, seconds: float) -> None:
        """Account one ``on_phase`` call of processor *pid*."""
        self.handler_wall_s[pid] = self.handler_wall_s.get(pid, 0.0) + seconds
        self.handler_calls[pid] = self.handler_calls.get(pid, 0) + 1

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (the ``telemetry`` field of ``run_end``)."""
        return {
            "wall_s": round(self.wall_s, 9),
            "cpu_s": round(self.cpu_s, 9),
            "per_phase": [timing.to_json_dict() for timing in self.per_phase],
            "handler_wall_s": {
                str(pid): round(seconds, 9)
                for pid, seconds in sorted(self.handler_wall_s.items())
            },
            "handler_calls": {
                str(pid): calls
                for pid, calls in sorted(self.handler_calls.items())
            },
            "events_emitted": self.events_emitted,
            "digest_memo_hits": self.digest_memo_hits,
            "digest_memo_misses": self.digest_memo_misses,
            "canonical_fast_hits": self.canonical_fast_hits,
            "canonical_slow_hits": self.canonical_slow_hits,
        }
