"""Trace inspection: summarise a saved ``repro-trace/1`` JSONL file.

The reference consumer of the event stream written by
:class:`~repro.obs.events.JsonlTraceSink`.  A single pass over the events
rebuilds the per-phase message/signature histograms and the
correct/faulty split *from the send events alone*, then cross-checks them
against the ledger snapshot the runner recorded in ``run_end`` — any
mismatch means the trace is corrupt or the producer and consumer disagree
about the schema, and is surfaced as a consistency error.

The summary also reports *adaptive cost*: how much traffic the run cost
against the number of processors that were **actually** faulty (``f``),
not the tolerance ``t`` it was configured for — the per-actual-fault view
of Cohen–Keidar–Spiegelman (2022), which a totals-only ledger cannot
express after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.events import TRACE_SCHEMA, read_events


class TraceFormatError(ValueError):
    """The file is not a readable ``repro-trace/1`` stream."""


@dataclass(slots=True)
class TraceSummary:
    """Everything :func:`summarize_trace` recovers from one trace file."""

    path: str
    schema: str
    algorithm: str
    n: int
    t: int
    transmitter: int
    input_value: Any
    faulty: list[int]
    phases_configured: int
    rushing: bool
    events: int = 0
    complete: bool = False
    messages_per_phase: dict[int, int] = field(default_factory=dict)
    signatures_per_phase: dict[int, int] = field(default_factory=dict)
    messages_by_correct: int = 0
    messages_by_faulty: int = 0
    signatures_by_correct: int = 0
    signatures_by_faulty: int = 0
    sent_per_processor: dict[int, int] = field(default_factory=dict)
    #: Injected delivery faults, aggregated by kind (``crash``,
    #: ``omission_send``, ...); empty for a perfect-network trace.
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    #: The raw ``fault`` events, in injection order.
    fault_events: list[dict[str, Any]] = field(default_factory=list)
    decisions: dict[int, Any] = field(default_factory=dict)
    recorded_ledger: dict[str, Any] | None = None
    recorded_messages_per_phase: dict[int, int] | None = None
    recorded_signatures_per_phase: dict[int, int] | None = None
    telemetry: dict[str, Any] | None = None

    # ---------------------------------------------------------------- derived

    @property
    def actual_faults(self) -> int:
        """``f``: how many processors were actually corrupted (``<= t``)."""
        return len(self.faulty)

    @property
    def total_messages(self) -> int:
        """Messages sent by anyone, recomputed from the send events."""
        return self.messages_by_correct + self.messages_by_faulty

    @property
    def total_signatures(self) -> int:
        """Signatures appended by anyone, recomputed from the send events."""
        return self.signatures_by_correct + self.signatures_by_faulty

    @property
    def faults_injected(self) -> int:
        """Total ``fault`` events in the trace."""
        return sum(self.faults_by_kind.values())

    def fault_excused(self) -> list[int]:
        """Processors the crash-tolerant oracle would excuse for these
        faults (see :func:`repro.transport.faults.excused_processors`)."""
        from repro.transport.faults import excused_processors

        return sorted(excused_processors(self.fault_events))

    def adaptive_cost(self) -> dict[str, float | int | None]:
        """Correct-sender cost per *actual* fault (``None`` if fault-free)."""
        f = self.actual_faults
        return {
            "actual_faults": f,
            "messages_per_fault": round(self.messages_by_correct / f, 2) if f else None,
            "signatures_per_fault": (
                round(self.signatures_by_correct / f, 2) if f else None
            ),
        }

    def consistency_errors(self) -> list[str]:
        """Disagreements between recomputed counts and the recorded ledger.

        An empty list is the invariant the round-trip tests pin: counts
        aggregated from ``send`` events exactly equal the
        :class:`~repro.core.metrics.MetricsLedger` totals the runner
        recorded in ``run_end``.
        """
        errors: list[str] = []
        if not self.complete:
            errors.append("trace is incomplete: no run_end event")
            return errors
        ledger = self.recorded_ledger or {}
        recomputed = {
            "messages_by_correct": self.messages_by_correct,
            "messages_by_faulty": self.messages_by_faulty,
            "signatures_by_correct": self.signatures_by_correct,
            "signatures_by_faulty": self.signatures_by_faulty,
        }
        for key, value in recomputed.items():
            if key in ledger and ledger[key] != value:
                errors.append(
                    f"{key}: recomputed {value} != recorded {ledger[key]}"
                )
        if (
            self.recorded_messages_per_phase is not None
            and self.recorded_messages_per_phase != self.messages_per_phase
        ):
            errors.append(
                f"messages_per_phase: recomputed {self.messages_per_phase} "
                f"!= recorded {self.recorded_messages_per_phase}"
            )
        if (
            self.recorded_signatures_per_phase is not None
            and self.recorded_signatures_per_phase != self.signatures_per_phase
        ):
            errors.append(
                f"signatures_per_phase: recomputed {self.signatures_per_phase} "
                f"!= recorded {self.recorded_signatures_per_phase}"
            )
        return errors

    def to_json_dict(self) -> dict[str, Any]:
        """The summary as one JSON document (``repro inspect --json``)."""
        return {
            "schema": self.schema,
            "path": self.path,
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "transmitter": self.transmitter,
            "input_value": self.input_value,
            "faulty": list(self.faulty),
            "phases_configured": self.phases_configured,
            "rushing": self.rushing,
            "events": self.events,
            "complete": self.complete,
            "messages_per_phase": {str(k): v for k, v in self.messages_per_phase.items()},
            "signatures_per_phase": {
                str(k): v for k, v in self.signatures_per_phase.items()
            },
            "messages_by_correct": self.messages_by_correct,
            "messages_by_faulty": self.messages_by_faulty,
            "signatures_by_correct": self.signatures_by_correct,
            "signatures_by_faulty": self.signatures_by_faulty,
            "sent_per_processor": {
                str(k): v for k, v in sorted(self.sent_per_processor.items())
            },
            "decisions": {str(k): v for k, v in sorted(self.decisions.items())},
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "fault_excused": self.fault_excused(),
            "adaptive_cost": self.adaptive_cost(),
            "consistency_errors": self.consistency_errors(),
            "telemetry": self.telemetry,
        }


def summarize_trace(path: str | Path) -> TraceSummary:
    """Read one JSONL trace and aggregate it into a :class:`TraceSummary`.

    Raises:
        TraceFormatError: when the first event is not a ``run_start`` with
            a supported schema, or the stream is empty.
    """
    summary: TraceSummary | None = None
    for event in read_events(path):
        kind = event.get("event")
        if summary is None:
            if kind != "run_start":
                raise TraceFormatError(
                    f"{path}: first event is {kind!r}, expected 'run_start'"
                )
            schema = str(event.get("schema", ""))
            if schema != TRACE_SCHEMA:
                raise TraceFormatError(
                    f"{path}: unsupported trace schema {schema!r} "
                    f"(expected {TRACE_SCHEMA!r})"
                )
            summary = TraceSummary(
                path=str(path),
                schema=schema,
                algorithm=str(event.get("algorithm", "?")),
                n=int(event["n"]),
                t=int(event["t"]),
                transmitter=int(event.get("transmitter", 0)),
                input_value=event.get("input_value"),
                faulty=[int(pid) for pid in event.get("faulty", [])],
                phases_configured=int(event.get("phases_configured", 0)),
                rushing=bool(event.get("rushing", False)),
            )
            summary.events = 1
            continue
        summary.events += 1
        if kind == "send":
            phase = int(event["phase"])
            signatures = int(event.get("signatures", 0))
            src = int(event["src"])
            summary.messages_per_phase[phase] = (
                summary.messages_per_phase.get(phase, 0) + 1
            )
            summary.signatures_per_phase[phase] = (
                summary.signatures_per_phase.get(phase, 0) + signatures
            )
            summary.sent_per_processor[src] = (
                summary.sent_per_processor.get(src, 0) + 1
            )
            if event.get("sender_correct", True):
                summary.messages_by_correct += 1
                summary.signatures_by_correct += signatures
            else:
                summary.messages_by_faulty += 1
                summary.signatures_by_faulty += signatures
        elif kind == "fault":
            fault_kind = str(event.get("kind", "?"))
            summary.faults_by_kind[fault_kind] = (
                summary.faults_by_kind.get(fault_kind, 0) + 1
            )
            summary.fault_events.append(dict(event))
        elif kind == "decide":
            summary.decisions[int(event["processor"])] = event.get("decision")
        elif kind == "run_end":
            summary.complete = True
            ledger = event.get("ledger")
            summary.recorded_ledger = dict(ledger) if isinstance(ledger, dict) else None
            for source_key, target in (
                ("messages_per_phase", "recorded_messages_per_phase"),
                ("signatures_per_phase", "recorded_signatures_per_phase"),
            ):
                recorded = event.get(source_key)
                if isinstance(recorded, dict):
                    setattr(
                        summary,
                        target,
                        {int(k): int(v) for k, v in recorded.items()},
                    )
            telemetry = event.get("telemetry")
            summary.telemetry = telemetry if isinstance(telemetry, dict) else None
    if summary is None:
        raise TraceFormatError(f"{path}: empty trace")
    return summary


def render_summary(summary: TraceSummary) -> str:
    """The human-readable ``repro inspect`` report."""
    out = [
        f"trace     : {summary.path} ({summary.schema}, {summary.events} events"
        f"{'' if summary.complete else ', INCOMPLETE'})",
        f"run       : {summary.algorithm} n={summary.n} t={summary.t} "
        f"transmitter={summary.transmitter} input={summary.input_value!r}",
        f"faulty    : {summary.faulty or 'none'} "
        f"(f={summary.actual_faults} of t={summary.t} tolerated)",
    ]
    out.append("phase  messages  signatures")
    for phase in range(1, summary.phases_configured + 1):
        out.append(
            f"{phase:>5}  {summary.messages_per_phase.get(phase, 0):>8}  "
            f"{summary.signatures_per_phase.get(phase, 0):>10}"
        )
    out.append(
        f"totals    : messages {summary.messages_by_correct} correct "
        f"+ {summary.messages_by_faulty} faulty, "
        f"signatures {summary.signatures_by_correct} correct "
        f"+ {summary.signatures_by_faulty} faulty"
    )
    if summary.faults_by_kind:
        kinds = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(summary.faults_by_kind.items())
        )
        out.append(
            f"injected  : {summary.faults_injected} delivery faults ({kinds}), "
            f"excusing {summary.fault_excused() or 'nobody'}"
        )
    adaptive = summary.adaptive_cost()
    if summary.actual_faults:
        out.append(
            f"adaptive  : f={adaptive['actual_faults']}, "
            f"{adaptive['messages_per_fault']} msgs/fault, "
            f"{adaptive['signatures_per_fault']} sigs/fault (correct senders)"
        )
    else:
        out.append("adaptive  : fault-free run (f=0) — no per-fault cost")
    if summary.decisions:
        values = sorted({repr(v) for v in summary.decisions.values()})
        out.append(
            f"decisions : {len(summary.decisions)} correct processors, "
            f"values {values}"
        )
    if summary.telemetry is not None:
        out.append(
            f"timing    : wall {summary.telemetry.get('wall_s')}s, "
            f"cpu {summary.telemetry.get('cpu_s')}s over "
            f"{len(summary.telemetry.get('per_phase', []))} phases"
        )
        if "digest_memo_hits" in summary.telemetry:
            out.append(
                f"caches    : digest memo "
                f"{summary.telemetry.get('digest_memo_hits')} hit / "
                f"{summary.telemetry.get('digest_memo_misses')} miss, "
                f"canonical fast path "
                f"{summary.telemetry.get('canonical_fast_hits')} fast / "
                f"{summary.telemetry.get('canonical_slow_hits')} slow"
            )
    errors = summary.consistency_errors()
    if errors:
        out.append("consistency: FAILED")
        out.extend(f"  - {error}" for error in errors)
    else:
        out.append("consistency: ok (send events match the recorded ledger)")
    return "\n".join(out)
