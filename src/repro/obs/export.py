"""Metrics export: Prometheus text exposition and bench-comparable JSON.

Two render targets for one instrumented :class:`~repro.core.runner.RunResult`:

* :func:`prometheus_metrics` — flat counter/gauge lines in the Prometheus
  text exposition format (scrape-friendly, diff-friendly);
* :func:`bench_json` — a ``repro-bench/1`` document whose single case is
  the run itself, so ``scripts/bench_compare.py`` can diff a run's cost
  point against any committed baseline exactly like a ``repro bench``
  basket.

:func:`write_metrics` picks the format from the file extension
(``.json`` → bench JSON, anything else → Prometheus text), which is how
``repro run --metrics-out`` decides what to write.

The service layer exports through the same two paths:
:func:`prometheus_service_metrics` renders a finished traffic run's
:class:`~repro.service.stats.ServiceStats` (request counters, the
agreements/sec product metric, latency summary families with
p50/p95/p99 quantile labels, per-phase wall-time summaries, dedup and
cache counters), and :func:`service_bench_json` produces a
``repro-bench/1`` document whose ``service:*`` case carries
``agreements_per_sec`` — the field ``scripts/bench_compare.py
--min-service-rate`` gates on.  :func:`write_service_metrics` is the
extension-dispatching writer behind ``repro loadgen --metrics-out``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # break the cycle: core.runner imports repro.obs.*
    from repro.core.runner import RunResult
    from repro.service.stats import LatencySummary, ServiceStats

#: Metric name prefix for every exported Prometheus line.
PROMETHEUS_PREFIX = "repro"


def _escape_label(value: object) -> str:
    """Escape one label value per the Prometheus text-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _line(name: str, value: object, **labels: object) -> str:
    """One exposition line: ``name{labels} value``."""
    rendered = ""
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        rendered = "{" + inner + "}"
    return f"{PROMETHEUS_PREFIX}_{name}{rendered} {value}"


def prometheus_metrics(result: RunResult) -> str:
    """Render *result* as Prometheus text exposition (trailing newline).

    Counters cover the ledger (messages/signatures split by sender class,
    per phase, per processor); gauges cover the phase counts and — when the
    run was instrumented — the wall/CPU timings of
    :class:`~repro.obs.telemetry.RunTelemetry`.
    """
    metrics = result.metrics
    out: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        """Emit the HELP/TYPE header for a metric family once."""
        out.append(f"# HELP {PROMETHEUS_PREFIX}_{name} {help_text}")
        out.append(f"# TYPE {PROMETHEUS_PREFIX}_{name} {kind}")

    header("run_info", "gauge", "Static labels of the traced run")
    out.append(
        _line(
            "run_info",
            1,
            algorithm=result.algorithm_name,
            n=result.n,
            t=result.t,
            transmitter=result.transmitter,
            faults=len(result.faulty),
        )
    )
    header("messages_total", "counter", "Messages sent, by sender class")
    out.append(_line("messages_total", metrics.messages_by_correct, sender="correct"))
    out.append(_line("messages_total", metrics.messages_by_faulty, sender="faulty"))
    header("signatures_total", "counter", "Signatures appended, by sender class")
    out.append(
        _line("signatures_total", metrics.signatures_by_correct, sender="correct")
    )
    out.append(
        _line("signatures_total", metrics.signatures_by_faulty, sender="faulty")
    )
    header(
        "unsigned_correct_messages_total",
        "counter",
        "Correct-sender messages carrying no signature (Theorem 1 assumption)",
    )
    out.append(
        _line("unsigned_correct_messages_total", metrics.unsigned_correct_messages)
    )
    header("phase_messages_total", "counter", "Messages sent during each phase")
    for phase in range(1, metrics.phases_configured + 1):
        out.append(
            _line(
                "phase_messages_total",
                metrics.messages_per_phase.get(phase, 0),
                phase=phase,
            )
        )
    header("phase_signatures_total", "counter", "Signatures appended during each phase")
    for phase in range(1, metrics.phases_configured + 1):
        out.append(
            _line(
                "phase_signatures_total",
                metrics.signatures_per_phase.get(phase, 0),
                phase=phase,
            )
        )
    header("processor_sent_total", "counter", "Messages sent per processor")
    for pid in range(result.n):
        out.append(
            _line(
                "processor_sent_total",
                metrics.sent_per_processor.get(pid, 0),
                processor=pid,
                role="faulty" if pid in result.faulty else "correct",
            )
        )
    header("processor_received_total", "counter", "Messages received per processor")
    for pid in range(result.n):
        out.append(
            _line(
                "processor_received_total",
                metrics.received_per_processor.get(pid, 0),
                processor=pid,
            )
        )
    header("last_active_phase", "gauge", "Highest phase with any traffic")
    out.append(_line("last_active_phase", metrics.last_active_phase))
    header("phases_configured", "gauge", "Phases the algorithm declared")
    out.append(_line("phases_configured", metrics.phases_configured))

    telemetry = result.telemetry
    if telemetry is not None:
        header("run_wall_seconds", "gauge", "Wall-clock duration of the run")
        out.append(_line("run_wall_seconds", round(telemetry.wall_s, 9)))
        header("run_cpu_seconds", "gauge", "Process CPU time of the run")
        out.append(_line("run_cpu_seconds", round(telemetry.cpu_s, 9)))
        header("phase_wall_seconds", "gauge", "Wall-clock duration per phase")
        for timing in telemetry.per_phase:
            out.append(
                _line("phase_wall_seconds", round(timing.wall_s, 9), phase=timing.phase)
            )
        header(
            "processor_handler_wall_seconds",
            "gauge",
            "Wall time inside each correct processor's on_phase handler",
        )
        for pid, seconds in sorted(telemetry.handler_wall_s.items()):
            out.append(
                _line(
                    "processor_handler_wall_seconds",
                    round(seconds, 9),
                    processor=pid,
                )
            )
    return "\n".join(out) + "\n"


def bench_json(result: RunResult) -> dict[str, Any]:
    """*result* as a one-case ``repro-bench/1`` document.

    The case key is ``runner:<algorithm>`` — the same key shape ``repro
    bench`` uses — so ``scripts/bench_compare.py`` can diff this run
    against a committed baseline or against another exported run.
    """
    telemetry = result.telemetry
    seconds = telemetry.wall_s if telemetry is not None else 0.0
    messages = result.metrics.messages_by_correct
    return {
        "schema": "repro-bench/1",
        "source": "repro run --metrics-out",
        "workers": 1,
        "repeat": 1,
        "quick": False,
        "cases": {
            f"runner:{result.algorithm_name}": {
                "kind": "runner",
                "n": result.n,
                "t": result.t,
                "seconds": round(seconds, 6),
                "messages": messages,
                "messages_per_sec": round(messages / seconds, 1) if seconds else None,
            }
        },
    }


def _summary_lines(
    out: list[str], name: str, summary: "LatencySummary", **labels: object
) -> None:
    """Emit one Prometheus summary family instance from a LatencySummary."""
    for quantile, value in (
        ("0.5", summary.p50_s),
        ("0.95", summary.p95_s),
        ("0.99", summary.p99_s),
    ):
        out.append(_line(name, round(value, 9), **labels, quantile=quantile))
    out.append(_line(f"{name}_count", summary.count, **labels))
    out.append(_line(f"{name}_sum", round(summary.mean_s * summary.count, 9), **labels))


def prometheus_service_metrics(stats: "ServiceStats") -> str:
    """Render a traffic run's :class:`ServiceStats` as Prometheus text.

    Families: request counters by outcome and by algorithm, the
    agreements/sec / requests/sec / messages/sec gauges, one summary per
    latency stage (``e2e`` / ``queue`` / ``service``) and per sampled
    phase, and the amortisation counters (run dedup, digest table, setup
    cache).
    """
    out: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        out.append(f"# HELP {PROMETHEUS_PREFIX}_{name} {help_text}")
        out.append(f"# TYPE {PROMETHEUS_PREFIX}_{name} {kind}")

    header("service_requests_total", "counter", "Requests served, by verdict")
    out.append(_line("service_requests_total", stats.ok, outcome="ok"))
    out.append(_line("service_requests_total", stats.failed, outcome="failed"))
    header(
        "service_algorithm_requests_total",
        "counter",
        "Requests served per algorithm, by verdict",
    )
    for name in sorted(stats.per_algorithm):
        counts = stats.per_algorithm[name]
        out.append(
            _line(
                "service_algorithm_requests_total",
                counts.get("ok", 0),
                algorithm=name,
                outcome="ok",
            )
        )
        out.append(
            _line(
                "service_algorithm_requests_total",
                counts.get("requests", 0) - counts.get("ok", 0),
                algorithm=name,
                outcome="failed",
            )
        )
    header("service_wall_seconds", "gauge", "Wall-clock duration of the traffic run")
    out.append(_line("service_wall_seconds", round(stats.wall_s, 9)))
    header("service_waves_total", "counter", "Dispatch waves the scheduler ran")
    out.append(_line("service_waves_total", stats.waves))
    header(
        "service_agreements_per_second",
        "gauge",
        "Verdict-ok agreement instances completed per second",
    )
    out.append(
        _line("service_agreements_per_second", round(stats.agreements_per_sec or 0, 3))
    )
    header("service_requests_per_second", "gauge", "Completions per second")
    out.append(
        _line("service_requests_per_second", round(stats.requests_per_sec or 0, 3))
    )
    header(
        "service_messages_per_second",
        "gauge",
        "Correct-sender messages moved per second",
    )
    out.append(
        _line("service_messages_per_second", round(stats.messages_per_sec or 0, 1))
    )
    header(
        "service_latency_seconds",
        "summary",
        "Request latency by stage (e2e, queue, service)",
    )
    for stage, summary in (
        ("e2e", stats.e2e),
        ("queue", stats.queue),
        ("service", stats.service),
    ):
        if summary is not None:
            _summary_lines(out, "service_latency_seconds", summary, stage=stage)
    header(
        "service_phase_wall_seconds",
        "summary",
        "Sampled per-phase wall time of served instances",
    )
    for phase in sorted(stats.per_phase):
        _summary_lines(
            out, "service_phase_wall_seconds", stats.per_phase[phase], phase=phase
        )
    header(
        "service_runs_total",
        "counter",
        "Run executions by amortisation kind (dedup accounting)",
    )
    for kind, value in (
        ("unique", stats.unique_runs),
        ("replicated", stats.replicated_runs),
        ("kernel", stats.kernel_runs),
        ("scalar", stats.scalar_runs),
    ):
        out.append(_line("service_runs_total", value, kind=kind))
    header(
        "service_digest_lookups_total",
        "counter",
        "Shared digest table lookups across all stripes",
    )
    out.append(_line("service_digest_lookups_total", stats.digest_hits, result="hit"))
    out.append(_line("service_digest_lookups_total", stats.digest_misses, result="miss"))
    header(
        "service_setup_cache_total",
        "counter",
        "Arena/key-registry setup cache lookups across all stripes",
    )
    out.append(_line("service_setup_cache_total", stats.setup_hits, result="hit"))
    out.append(_line("service_setup_cache_total", stats.setup_misses, result="miss"))
    return "\n".join(out) + "\n"


def service_bench_json(
    stats: "ServiceStats", case: str = "service:loadgen"
) -> dict[str, Any]:
    """*stats* as a one-case ``repro-bench/1`` document.

    The case key follows the ``service:*`` convention of ``repro bench``,
    so the document diffs against a committed baseline and passes the
    ``--min-service-rate`` floor of ``scripts/bench_compare.py``.
    """
    seconds = stats.wall_s
    e2e = stats.e2e

    def rounded(value: float | None, digits: int) -> float | None:
        return round(value, digits) if value is not None else None

    return {
        "schema": "repro-bench/1",
        "source": "repro loadgen --metrics-out",
        "workers": 1,
        "repeat": 1,
        "quick": False,
        "cases": {
            case: {
                "kind": "service",
                "requests": stats.requests,
                "ok": stats.ok,
                "failed": stats.failed,
                "waves": stats.waves,
                "seconds": round(seconds, 6),
                "messages": stats.messages_total,
                "messages_per_sec": rounded(stats.messages_per_sec, 1),
                "agreements_per_sec": rounded(stats.agreements_per_sec, 2),
                "p50_s": rounded(e2e.p50_s if e2e else None, 6),
                "p99_s": rounded(e2e.p99_s if e2e else None, 6),
                "unique_runs": stats.unique_runs,
                "dedup_ratio": rounded(stats.dedup_ratio, 2),
            }
        },
    }


def write_service_metrics(stats: "ServiceStats", path: str | Path) -> str:
    """Write a traffic run's metrics; the extension picks the format.

    ``.json`` gets :func:`service_bench_json`; anything else gets
    :func:`prometheus_service_metrics`.  Returns the format written.
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(service_bench_json(stats), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return "json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_service_metrics(stats))
    return "prometheus"


def write_metrics(result: RunResult, path: str | Path) -> str:
    """Write *result*'s metrics to *path*; the extension picks the format.

    ``.json`` gets the :func:`bench_json` document; everything else
    (conventionally ``.prom`` or ``.txt``) gets :func:`prometheus_metrics`.
    Returns the format written (``"json"`` or ``"prometheus"``).
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bench_json(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return "json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_metrics(result))
    return "prometheus"
