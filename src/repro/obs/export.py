"""Metrics export: Prometheus text exposition and bench-comparable JSON.

Two render targets for one instrumented :class:`~repro.core.runner.RunResult`:

* :func:`prometheus_metrics` — flat counter/gauge lines in the Prometheus
  text exposition format (scrape-friendly, diff-friendly);
* :func:`bench_json` — a ``repro-bench/1`` document whose single case is
  the run itself, so ``scripts/bench_compare.py`` can diff a run's cost
  point against any committed baseline exactly like a ``repro bench``
  basket.

:func:`write_metrics` picks the format from the file extension
(``.json`` → bench JSON, anything else → Prometheus text), which is how
``repro run --metrics-out`` decides what to write.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # break the cycle: core.runner imports repro.obs.*
    from repro.core.runner import RunResult

#: Metric name prefix for every exported Prometheus line.
PROMETHEUS_PREFIX = "repro"


def _escape_label(value: object) -> str:
    """Escape one label value per the Prometheus text-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _line(name: str, value: object, **labels: object) -> str:
    """One exposition line: ``name{labels} value``."""
    rendered = ""
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        rendered = "{" + inner + "}"
    return f"{PROMETHEUS_PREFIX}_{name}{rendered} {value}"


def prometheus_metrics(result: RunResult) -> str:
    """Render *result* as Prometheus text exposition (trailing newline).

    Counters cover the ledger (messages/signatures split by sender class,
    per phase, per processor); gauges cover the phase counts and — when the
    run was instrumented — the wall/CPU timings of
    :class:`~repro.obs.telemetry.RunTelemetry`.
    """
    metrics = result.metrics
    out: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        """Emit the HELP/TYPE header for a metric family once."""
        out.append(f"# HELP {PROMETHEUS_PREFIX}_{name} {help_text}")
        out.append(f"# TYPE {PROMETHEUS_PREFIX}_{name} {kind}")

    header("run_info", "gauge", "Static labels of the traced run")
    out.append(
        _line(
            "run_info",
            1,
            algorithm=result.algorithm_name,
            n=result.n,
            t=result.t,
            transmitter=result.transmitter,
            faults=len(result.faulty),
        )
    )
    header("messages_total", "counter", "Messages sent, by sender class")
    out.append(_line("messages_total", metrics.messages_by_correct, sender="correct"))
    out.append(_line("messages_total", metrics.messages_by_faulty, sender="faulty"))
    header("signatures_total", "counter", "Signatures appended, by sender class")
    out.append(
        _line("signatures_total", metrics.signatures_by_correct, sender="correct")
    )
    out.append(
        _line("signatures_total", metrics.signatures_by_faulty, sender="faulty")
    )
    header(
        "unsigned_correct_messages_total",
        "counter",
        "Correct-sender messages carrying no signature (Theorem 1 assumption)",
    )
    out.append(
        _line("unsigned_correct_messages_total", metrics.unsigned_correct_messages)
    )
    header("phase_messages_total", "counter", "Messages sent during each phase")
    for phase in range(1, metrics.phases_configured + 1):
        out.append(
            _line(
                "phase_messages_total",
                metrics.messages_per_phase.get(phase, 0),
                phase=phase,
            )
        )
    header("phase_signatures_total", "counter", "Signatures appended during each phase")
    for phase in range(1, metrics.phases_configured + 1):
        out.append(
            _line(
                "phase_signatures_total",
                metrics.signatures_per_phase.get(phase, 0),
                phase=phase,
            )
        )
    header("processor_sent_total", "counter", "Messages sent per processor")
    for pid in range(result.n):
        out.append(
            _line(
                "processor_sent_total",
                metrics.sent_per_processor.get(pid, 0),
                processor=pid,
                role="faulty" if pid in result.faulty else "correct",
            )
        )
    header("processor_received_total", "counter", "Messages received per processor")
    for pid in range(result.n):
        out.append(
            _line(
                "processor_received_total",
                metrics.received_per_processor.get(pid, 0),
                processor=pid,
            )
        )
    header("last_active_phase", "gauge", "Highest phase with any traffic")
    out.append(_line("last_active_phase", metrics.last_active_phase))
    header("phases_configured", "gauge", "Phases the algorithm declared")
    out.append(_line("phases_configured", metrics.phases_configured))

    telemetry = result.telemetry
    if telemetry is not None:
        header("run_wall_seconds", "gauge", "Wall-clock duration of the run")
        out.append(_line("run_wall_seconds", round(telemetry.wall_s, 9)))
        header("run_cpu_seconds", "gauge", "Process CPU time of the run")
        out.append(_line("run_cpu_seconds", round(telemetry.cpu_s, 9)))
        header("phase_wall_seconds", "gauge", "Wall-clock duration per phase")
        for timing in telemetry.per_phase:
            out.append(
                _line("phase_wall_seconds", round(timing.wall_s, 9), phase=timing.phase)
            )
        header(
            "processor_handler_wall_seconds",
            "gauge",
            "Wall time inside each correct processor's on_phase handler",
        )
        for pid, seconds in sorted(telemetry.handler_wall_s.items()):
            out.append(
                _line(
                    "processor_handler_wall_seconds",
                    round(seconds, 9),
                    processor=pid,
                )
            )
    return "\n".join(out) + "\n"


def bench_json(result: RunResult) -> dict[str, Any]:
    """*result* as a one-case ``repro-bench/1`` document.

    The case key is ``runner:<algorithm>`` — the same key shape ``repro
    bench`` uses — so ``scripts/bench_compare.py`` can diff this run
    against a committed baseline or against another exported run.
    """
    telemetry = result.telemetry
    seconds = telemetry.wall_s if telemetry is not None else 0.0
    messages = result.metrics.messages_by_correct
    return {
        "schema": "repro-bench/1",
        "source": "repro run --metrics-out",
        "workers": 1,
        "repeat": 1,
        "quick": False,
        "cases": {
            f"runner:{result.algorithm_name}": {
                "kind": "runner",
                "n": result.n,
                "t": result.t,
                "seconds": round(seconds, 6),
                "messages": messages,
                "messages_per_sec": round(messages / seconds, 1) if seconds else None,
            }
        },
    }


def write_metrics(result: RunResult, path: str | Path) -> str:
    """Write *result*'s metrics to *path*; the extension picks the format.

    ``.json`` gets the :func:`bench_json` document; everything else
    (conventionally ``.prom`` or ``.txt``) gets :func:`prometheus_metrics`.
    Returns the format written (``"json"`` or ``"prometheus"``).
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bench_json(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return "json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_metrics(result))
    return "prometheus"
