"""Structured run telemetry: event tracing, phase timing, metrics export.

The observability layer over the lock-step runner.  Three pieces:

* :mod:`repro.obs.events` — the :class:`EventSink` protocol and the
  ``repro-trace/1`` JSONL sink the runner streams schema-versioned events
  into (``run_start``, ``phase_start``, ``send``, ``deliver``, ``decide``,
  ``run_end``);
* :mod:`repro.obs.telemetry` — :class:`RunTelemetry` phase/handler timing
  with an injectable :class:`Clock` for deterministic tests;
* :mod:`repro.obs.export` / :mod:`repro.obs.inspect` — render a finished
  run as Prometheus text or bench-comparable JSON, and summarise a saved
  trace back into per-phase histograms and adaptive-cost figures.

See ``docs/telemetry.md`` for the trace schema and worked examples, and
``docs/architecture.md`` for where this layer sits in the package map.
"""

from repro.obs.events import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    EventSink,
    JsonlTraceSink,
    ListSink,
    read_events,
)
from repro.obs.export import (
    bench_json,
    prometheus_metrics,
    prometheus_service_metrics,
    service_bench_json,
    write_metrics,
    write_service_metrics,
)
from repro.obs.inspect import (
    TraceFormatError,
    TraceSummary,
    render_summary,
    summarize_trace,
)
from repro.obs.telemetry import (
    SYSTEM_CLOCK,
    Clock,
    PhaseTiming,
    RunTelemetry,
    TickClock,
)

__all__ = [
    "EVENT_KINDS",
    "SYSTEM_CLOCK",
    "TRACE_SCHEMA",
    "Clock",
    "EventSink",
    "JsonlTraceSink",
    "ListSink",
    "PhaseTiming",
    "RunTelemetry",
    "TickClock",
    "TraceFormatError",
    "TraceSummary",
    "bench_json",
    "prometheus_metrics",
    "prometheus_service_metrics",
    "read_events",
    "render_summary",
    "service_bench_json",
    "summarize_trace",
    "write_metrics",
    "write_service_metrics",
]
