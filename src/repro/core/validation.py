"""Checking the Byzantine Agreement conditions on finished runs.

The paper's conditions (for a ``t``-faulty history ``H``):

(i)  **Agreement** — if processors ``p`` and ``q`` are correct in ``H``,
     then ``F_p(pH) = F_q(qH)``;
(ii) **Validity** — if the transmitter and processor ``p`` are correct in
     ``H``, then ``F_p(pH) = v``, the transmitter's value.

The validator returns a structured report; ``require_agreement`` raises on
violation for use inside tests and the executable lower-bound proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ValidationError
from repro.core.runner import RunResult


@dataclass
class ValidationReport:
    """Outcome of checking the BA conditions on one run."""

    agreement: bool
    validity: bool
    #: True when every correct processor actually decided (no ``None``).
    all_decided: bool
    violations: list[str] = field(default_factory=list)
    #: Processors whose decisions were ignored (fault-excused); empty for
    #: the ordinary full check.
    excused: frozenset[int] = frozenset()

    @property
    def ok(self) -> bool:
        """True iff both BA conditions hold and everyone decided."""
        return self.agreement and self.validity and self.all_decided

    def __str__(self) -> str:
        suffix = (
            f" (excused: {sorted(self.excused)})" if self.excused else ""
        )
        if self.ok:
            return f"Byzantine Agreement holds{suffix}"
        return "; ".join(self.violations) + suffix


def check_byzantine_agreement(
    result: RunResult, *, excused: frozenset[int] = frozenset()
) -> ValidationReport:
    """Evaluate conditions (i) and (ii) on *result*.

    *excused* names correct processors whose decisions are ignored — the
    crash-tolerant reading used when delivery faults were injected: a
    processor whose messages the network tampered with is held to no
    stronger standard than a Byzantine-corrupted one, so only the
    remaining processors' decisions are constrained (and validity only
    applies when the transmitter itself is unexcused).
    """
    violations: list[str] = []
    decisions = {
        pid: value
        for pid, value in result.decisions.items()
        if pid not in excused
    }

    undecided = sorted(pid for pid, v in decisions.items() if v is None)
    all_decided = not undecided
    if undecided:
        violations.append(f"correct processors {undecided} never decided")

    values = set(decisions.values())
    agreement = len(values) <= 1
    if not agreement:
        per_value = {
            repr(v): sorted(p for p, d in decisions.items() if d == v)
            for v in values
        }
        violations.append(f"agreement violated: {per_value}")

    validity = True
    if (
        result.transmitter in result.correct
        and result.transmitter not in excused
        and decisions
    ):
        wrong = sorted(
            pid
            for pid, decided in decisions.items()
            if decided != result.input_value
        )
        if wrong:
            validity = False
            violations.append(
                f"validity violated: transmitter correctly sent "
                f"{result.input_value!r} but {wrong} decided otherwise"
            )

    return ValidationReport(
        agreement=agreement,
        validity=validity,
        all_decided=all_decided,
        violations=violations,
        excused=frozenset(excused) & result.correct,
    )


def require_agreement(result: RunResult) -> None:
    """Raise :class:`~repro.core.errors.ValidationError` unless BA holds."""
    report = check_byzantine_agreement(result)
    if not report.ok:
        raise ValidationError(str(report))
