"""The paper's correctness predicate, executable.

Section 2: *"a processor p is said to be correct at phase k of history H
if each edge from p to a processor q in phase k has a label as specified
by the correctness rule for p when it is applied to the individual
subhistory of H for p consisting of the previous k − 1 phases.  A
processor p is correct in history H if it is correct at each phase."*

This module decides that predicate for a recorded run: it replays each
processor's protocol (its correctness rule ``R_p``) against its individual
subhistory and compares, phase by phase, what the rule *specifies* with
what the history *records*.  Three uses:

* a strong self-check — the runner's correct processors must conform at
  every phase (tested);
* fault localisation — for faulty processors the report names the first
  phase at which behaviour deviated and how;
* the paper's subtlety made concrete — a "faulty" processor driven by an
  unmodified :class:`~repro.adversary.standard.SimulatingAdversary` is
  *correct in the history* even though the adversary controlled it:
  correctness is a property of behaviour, not of allegiance.

The replay signs through a :meth:`~repro.crypto.signatures.SignatureService.clone`
of the run's registry: recorded signatures verify (the issued set is
copied) and replay-produced signatures are deterministic, so a conforming
processor reproduces its recorded labels *bit for bit*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.history import History, edge_payloads
from repro.core.message import Envelope, canonical
from repro.core.protocol import AgreementAlgorithm, Context
from repro.core.runner import RunResult
from repro.core.types import INPUT_SOURCE, ProcessorId


@dataclass
class PhaseDeviation:
    """One phase at which recorded behaviour differs from the rule."""

    phase: int
    missing: list[str] = field(default_factory=list)  # rule said, history lacks
    extra: list[str] = field(default_factory=list)  # history has, rule did not say

    def describe(self) -> str:
        parts = []
        if self.missing:
            parts.append(f"missing {len(self.missing)} specified sends")
        if self.extra:
            parts.append(f"{len(self.extra)} unspecified sends")
        return f"phase {self.phase}: " + ", ".join(parts)


@dataclass
class ProcessorConformance:
    """Verdict for one processor over a whole history."""

    pid: ProcessorId
    deviations: list[PhaseDeviation]

    @property
    def correct_in_history(self) -> bool:
        """The paper's "correct in H": correct at every phase."""
        return not self.deviations

    @property
    def first_deviation_phase(self) -> int | None:
        return self.deviations[0].phase if self.deviations else None


def _sends_of_edge_list(edges) -> list[tuple[ProcessorId, str]]:
    sends: list[tuple[ProcessorId, str]] = []
    for edge in edges:
        for payload in edge_payloads(edge.label):
            sends.append((edge.dst, repr(canonical(payload))))
    return sends


def _inbox_for(history: History, pid: ProcessorId, phase: int) -> list[Envelope]:
    """Reconstruct the envelopes delivered to *pid* at the start of *phase*
    (i.e. the edges to *pid* in phase ``phase − 1``), source-ordered as the
    runner delivers them."""
    if phase - 1 >= len(history.phases):
        return []
    envelopes: list[Envelope] = []
    for edge in history.phases[phase - 1].edges_to(pid):
        for payload in edge_payloads(edge.label):
            envelopes.append(
                Envelope(src=edge.src, dst=pid, phase=phase - 1, payload=payload)
            )
    return envelopes


def conformance_of(
    result: RunResult, algorithm: AgreementAlgorithm, pid: ProcessorId
) -> ProcessorConformance:
    """Decide the Section 2 predicate for one processor of a finished run."""
    if result.service is None:
        raise ConfigurationError("the run did not retain its signature service")
    if result.history.num_phases == 0:
        raise ConfigurationError("the run did not record its history")

    service = result.service.clone()
    # Coin-flipping protocols are deterministic given their coin stream:
    # rebuild the run's CoinSource from the recorded seed so the replayed
    # rule specifies the exact same flips as the history.
    coins = None
    if result.coin_seed is not None:
        make_coins = getattr(algorithm, "make_coin_source", None)
        if make_coins is not None:
            coins = make_coins(result.coin_seed)
    processor = algorithm.make_processor(pid)
    processor.bind(
        Context(
            pid=pid,
            n=algorithm.n,
            t=algorithm.t,
            transmitter=algorithm.transmitter,
            key=service.key_for(pid),
            service=service,
            coins=coins,
        )
    )

    deviations: list[PhaseDeviation] = []
    for phase in range(1, result.history.num_phases + 1):
        inbox = _inbox_for(result.history, pid, phase)
        try:
            specified = [
                (dst, repr(canonical(payload)))
                for dst, payload in processor.on_phase(phase, tuple(inbox))
            ]
        except Exception as error:  # the rule itself choked on the history
            deviations.append(
                PhaseDeviation(phase=phase, missing=[f"rule raised: {error!r}"])
            )
            break
        recorded = _sends_of_edge_list(
            result.history.phases[phase].edges_from(pid)
        )
        specified_sorted = sorted(specified)
        recorded_sorted = sorted(recorded)
        if specified_sorted != recorded_sorted:
            missing = _multiset_difference(specified_sorted, recorded_sorted)
            extra = _multiset_difference(recorded_sorted, specified_sorted)
            deviations.append(
                PhaseDeviation(
                    phase=phase,
                    missing=[f"{dst}: {text[:48]}" for dst, text in missing],
                    extra=[f"{dst}: {text[:48]}" for dst, text in extra],
                )
            )
    return ProcessorConformance(pid=pid, deviations=deviations)


def _multiset_difference(left: Sequence, right: Sequence) -> list:
    remainder = list(right)
    out = []
    for item in left:
        if item in remainder:
            remainder.remove(item)
        else:
            out.append(item)
    return out


def check_conformance(
    result: RunResult, algorithm: AgreementAlgorithm
) -> dict[ProcessorId, ProcessorConformance]:
    """The predicate for every processor of the run.

    For the runner's correct processors this must report conformance at
    every phase (anything else is a simulator bug); for the faulty ones it
    localises the behavioural deviations — which may be none at all, when
    the adversary chose to behave.
    """
    return {
        pid: conformance_of(result, algorithm, pid) for pid in range(result.n)
    }


def behaviourally_faulty(
    result: RunResult, algorithm: AgreementAlgorithm
) -> frozenset[ProcessorId]:
    """The processors that are *incorrect in the history* — the set the
    paper's ``t``-faulty definition actually constrains (always a subset
    of the adversary's corrupted set)."""
    verdicts = check_conformance(result, algorithm)
    return frozenset(
        pid for pid, verdict in verdicts.items() if not verdict.correct_in_history
    )
