"""Core model: messages, histories, protocols, the runner, validation."""

from repro.core.conformance import (
    PhaseDeviation,
    ProcessorConformance,
    behaviourally_faulty,
    check_conformance,
    conformance_of,
)
from repro.core.errors import (
    AdversaryError,
    ConfigurationError,
    ForgeryError,
    ProtocolViolationError,
    ReproError,
    ValidationError,
)
from repro.core.history import History, IndividualSubhistory, LabeledEdge, PhaseGraph
from repro.core.message import Envelope, Outgoing, canonical, payload_digest
from repro.core.metrics import MetricsLedger, count_signatures
from repro.core.protocol import AgreementAlgorithm, Context, Processor
from repro.core.runner import RunResult, run
from repro.core.types import (
    BINARY_VALUES,
    INPUT_SOURCE,
    TRANSMITTER,
    ProcessorId,
    Value,
)
from repro.core.validation import (
    ValidationReport,
    check_byzantine_agreement,
    require_agreement,
)

__all__ = [
    "AdversaryError",
    "AgreementAlgorithm",
    "BINARY_VALUES",
    "ConfigurationError",
    "Context",
    "Envelope",
    "ForgeryError",
    "History",
    "INPUT_SOURCE",
    "IndividualSubhistory",
    "LabeledEdge",
    "MetricsLedger",
    "Outgoing",
    "PhaseDeviation",
    "PhaseGraph",
    "Processor",
    "ProcessorConformance",
    "ProcessorId",
    "ProtocolViolationError",
    "ReproError",
    "RunResult",
    "TRANSMITTER",
    "ValidationError",
    "behaviourally_faulty",
    "ValidationReport",
    "Value",
    "canonical",
    "check_byzantine_agreement",
    "check_conformance",
    "conformance_of",
    "count_signatures",
    "payload_digest",
    "require_agreement",
    "run",
]
