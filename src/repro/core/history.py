"""The formal model of Section 2: phases, histories, individual subhistories.

A *phase* for a processor set PR is a directed labelled graph: an edge
``(p, q)`` labelled ``m`` means *p sent message m to q during that phase*;
no edge means no message.  A *history* is a finite sequence of phases,
preceded by the special *initial phase* (phase 0) containing the single
inedge to the transmitter labelled with its private value.

For a history ``H`` and processor ``p``, the *individual subhistory*
``pH`` consists of only those edges with target ``p``.  The paper's lower
bound proofs are indistinguishability arguments over individual
subhistories: if ``pH = pH'`` then ``p`` decides identically in both — this
module makes that comparison executable (:meth:`History.individual`).

Histories are recorded automatically by the runner; they can also be built
by hand for the constructive proofs in :mod:`repro.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.message import Envelope, canonical
from repro.core.types import INPUT_SOURCE, ProcessorId, Value


@dataclass(frozen=True, slots=True)
class LabeledEdge:
    """One edge of a phase graph: *src* sent *label* to *dst*."""

    src: ProcessorId
    dst: ProcessorId
    label: object


def edge_payloads(label: object) -> tuple:
    """The individual message payloads behind an edge label.

    Inverse of the composite-label merging done by
    :meth:`History.append_phase` — used by replay adversaries that resend
    recorded traffic message by message.
    """
    if (
        isinstance(label, tuple)
        and len(label) == 2
        and label[0] == "composite-label"
        and isinstance(label[1], tuple)
    ):
        return label[1]
    return (label,)


class PhaseGraph:
    """The labelled directed graph of one phase.

    At most one edge per ordered pair — the model treats everything a
    processor sends to one target in one phase as a single label.
    """

    __slots__ = ("_edges",)

    def __init__(self, edges: Iterable[LabeledEdge] = ()) -> None:
        self._edges: dict[tuple[ProcessorId, ProcessorId], LabeledEdge] = {}
        for edge in edges:
            self.add(edge)

    def add(self, edge: LabeledEdge) -> None:
        """Insert an edge; a duplicate ``(src, dst)`` pair is an error."""
        pair = (edge.src, edge.dst)
        if pair in self._edges:
            raise ValueError(f"duplicate edge {pair} in one phase")
        self._edges[pair] = edge

    def edges(self) -> Iterator[LabeledEdge]:
        yield from self._edges.values()

    def edges_to(self, pid: ProcessorId) -> list[LabeledEdge]:
        """Edges with target *pid*, in deterministic (source) order."""
        return sorted(
            (e for e in self._edges.values() if e.dst == pid), key=lambda e: e.src
        )

    def edges_from(self, pid: ProcessorId) -> list[LabeledEdge]:
        """Edges with source *pid*, in deterministic (target) order."""
        return sorted(
            (e for e in self._edges.values() if e.src == pid), key=lambda e: e.dst
        )

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhaseGraph):
            return NotImplemented
        if self._edges.keys() != other._edges.keys():
            return False
        return all(
            canonical(self._edges[k].label) == canonical(other._edges[k].label)
            for k in self._edges
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are not dict keys
        return hash(frozenset(self._edges))


@dataclass
class History:
    """A finite sequence of phases, with phase 0 the initial phase.

    ``phases[0]`` holds exactly the transmitter's inedge; ``phases[k]`` for
    ``k >= 1`` holds the messages sent during phase ``k``.
    """

    phases: list[PhaseGraph] = field(default_factory=list)

    @classmethod
    def with_input(cls, transmitter: ProcessorId, value: Value) -> "History":
        """A fresh history containing only the initial phase."""
        phase0 = PhaseGraph(
            [LabeledEdge(src=INPUT_SOURCE, dst=transmitter, label=value)]
        )
        return cls(phases=[phase0])

    # ------------------------------------------------------------- recording

    def append_phase(self, envelopes: Iterable[Envelope]) -> None:
        """Record one executed phase from the envelopes sent during it.

        The model has (at most) one labelled edge per ordered pair and
        phase; when a protocol sends several messages to one destination in
        one phase they are recorded as a single composite label (their
        tuple, tagged) — "the information sent from p to q during the given
        phase".
        """
        grouped: dict[tuple[ProcessorId, ProcessorId], list[object]] = {}
        for envelope in envelopes:
            grouped.setdefault((envelope.src, envelope.dst), []).append(
                envelope.payload
            )
        graph = PhaseGraph(
            LabeledEdge(
                src=src,
                dst=dst,
                label=payloads[0]
                if len(payloads) == 1
                else ("composite-label", tuple(payloads)),
            )
            for (src, dst), payloads in grouped.items()
        )
        self.phases.append(graph)

    # ----------------------------------------------------------- projections

    @property
    def num_phases(self) -> int:
        """Number of recorded phases *excluding* the initial phase."""
        return max(0, len(self.phases) - 1)

    def subhistory(self, k: int) -> "History":
        """The initial segment consisting of phases ``0 .. k``."""
        if k < 0 or k >= len(self.phases):
            raise IndexError(f"no subhistory of length {k}")
        return History(phases=self.phases[: k + 1])

    def individual(self, pid: ProcessorId) -> "IndividualSubhistory":
        """The individual subhistory ``pid·H``: edges with target *pid*."""
        per_phase = tuple(
            tuple((e.src, canonical(e.label)) for e in phase.edges_to(pid))
            for phase in self.phases
        )
        return IndividualSubhistory(pid=pid, per_phase=per_phase)

    def individual_subhistory(self, pid: ProcessorId, k: int) -> "IndividualSubhistory":
        """``pid``'s view of the first ``k`` phases (``pid·H_k``)."""
        return self.subhistory(k).individual(pid)

    def transmitter_value(self) -> Value:
        """The label of the phase-0 inedge."""
        (edge,) = list(self.phases[0].edges())
        return edge.label

    def edges_sent_by(self, pid: ProcessorId) -> list[tuple[int, LabeledEdge]]:
        """All ``(phase, edge)`` pairs with source *pid*."""
        result = []
        for k, phase in enumerate(self.phases):
            for edge in phase.edges_from(pid):
                result.append((k, edge))
        return result


@dataclass(frozen=True)
class IndividualSubhistory:
    """Everything processor *pid* has seen: its inedges, phase by phase.

    Two individual subhistories compare equal iff the processor received
    exactly the same labels from the same sources in the same phases — the
    equality the paper's indistinguishability arguments rely on.  Labels are
    stored in canonical form so structurally identical payloads compare
    equal even if built independently.
    """

    pid: ProcessorId
    per_phase: tuple[tuple[tuple[ProcessorId, object], ...], ...]

    @property
    def num_phases(self) -> int:
        return max(0, len(self.per_phase) - 1)

    def received_in_phase(self, k: int) -> tuple[tuple[ProcessorId, object], ...]:
        """The ``(source, canonical label)`` pairs delivered in phase *k*."""
        return self.per_phase[k]

    def total_received(self) -> int:
        """Messages received over the whole subhistory (input edge included)."""
        return sum(len(phase) for phase in self.per_phase)
