"""Protocol abstractions: processors, contexts, and agreement algorithms.

The paper models an agreement algorithm as a family of *correctness rules*
``R_p : ISH × PR → MSG`` (given p's individual subhistory of the first
``k-1`` phases, what p sends to each q in phase ``k``) together with
*decision functions* ``F_p : ISH → 2^V``.

Here a :class:`Processor` is the stateful executable form of ``(R_p, F_p)``:
the runner calls :meth:`Processor.on_phase` once per phase with the messages
delivered since the previous call (p's new inedges), and the processor
returns the edges it wants to send; after the last phase the runner reads
:meth:`Processor.decision`.  A processor that follows its algorithm's rules
at every phase is *correct at every phase* in the paper's sense — the runner
executes correct processors exactly this way, while faulty processors are
driven by an :class:`~repro.adversary.base.Adversary` instead.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.types import (
    TRANSMITTER,
    ProcessorId,
    Value,
    check_population,
)
from repro.crypto.signatures import Signature, SignatureService, SigningKey

if TYPE_CHECKING:
    from repro.approx.coins import CoinSource


@dataclass
class Context:
    """Per-processor runtime context supplied by the runner.

    Carries the processor's identity, the system parameters, and its signing
    capability.  Verification needs no capability; signing does.
    """

    pid: ProcessorId
    n: int
    t: int
    transmitter: ProcessorId
    key: SigningKey
    service: SignatureService
    #: Seeded coin stream for randomized algorithms; ``None`` for the
    #: deterministic exact-BA zoo (which must never consult it).
    coins: "CoinSource | None" = None

    def sign(self, payload: Any) -> Signature:
        """Sign *payload* as this processor."""
        return self.service.sign(self.key, payload)

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check any processor's signature over *payload*."""
        return self.service.verify(signature, payload)

    def others(self) -> list[ProcessorId]:
        """Every processor id except this one."""
        return [q for q in range(self.n) if q != self.pid]


class Processor(abc.ABC):
    """The executable form of one processor's correctness rule and decision.

    Subclasses implement :meth:`on_phase`; state lives on the instance.  The
    runner guarantees:

    * :meth:`bind` is called exactly once, before any phase;
    * :meth:`on_phase` is called for phases ``1, 2, ..., num_phases`` in
      order, with *inbox* holding exactly the messages sent to this
      processor in the previous phase (for the transmitter, phase 1's inbox
      contains the phase-0 input edge);
    * :meth:`decision` is read only after the final phase.
    """

    ctx: Context

    def bind(self, ctx: Context) -> None:
        """Attach the runtime context; called once by the runner."""
        self.ctx = ctx
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclass initialisation that needs the context."""

    @abc.abstractmethod
    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        """Process the inedges of phase ``phase - 1``; return phase-``phase`` sends.

        Returns an iterable of ``(destination, payload)`` pairs.  Sending
        nothing is expressed by returning an empty iterable — the model has
        no edge when no message is sent.
        """

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        """Receive the messages sent during the algorithm's last phase.

        In the paper's model a decision function ``F_p`` maps the *complete*
        individual subhistory to a value, so messages sent in the final
        phase still influence decisions even though nothing can be sent in
        response.  The runner calls this exactly once, after the last
        :meth:`on_phase`, and then reads :meth:`decision`.
        """

    @abc.abstractmethod
    def decision(self) -> Value | None:
        """The processor's decided value (``None`` while undecided)."""

    def has_terminated(self) -> bool:
        """Whether this processor is done under variable-round execution.

        Only consulted when the algorithm declares
        ``variable_rounds = True``; the run stops early once every correct
        processor reports ``True``.  Fixed-round algorithms never see this
        called, so the default keeps exact-BA runs byte-identical.
        """
        return False


class AgreementAlgorithm(abc.ABC):
    """A complete agreement algorithm for ``n`` processors tolerating ``t`` faults.

    Concrete algorithms (Dolev–Strong, the paper's Algorithms 1–5, ...)
    subclass this.  An instance is a *configured* algorithm — it knows its
    ``n``, ``t`` and any tuning parameters (like Algorithm 3's chain-set
    size ``s``) — and acts as a factory for per-processor
    :class:`Processor` instances.

    Every concrete subclass must declare its information-exchange budget as
    class attributes — ``phase_bound``, ``message_bound`` and (when
    authenticated) ``signature_bound`` — written in the expression language
    of :mod:`repro.bounds.expressions` over its system parameters.  The
    paper's bounds are only meaningful for algorithms that state their
    budgets up front; ``repro lint`` rule BA002 verifies the declarations
    statically and cross-checks them against the closed forms in
    :mod:`repro.bounds.formulas`.
    """

    #: Short identifier used in tables and reports.
    name: ClassVar[str] = "abstract"
    #: Whether the algorithm relies on the signature scheme.
    authenticated: ClassVar[bool] = True
    #: The set of values the transmitter may send (``None`` = any hashable).
    #: The paper's Algorithms 1–5 are binary — value 1 is structurally
    #: special (only 1-messages are relayed) — so they declare ``{0, 1}``
    #: and the runner rejects other inputs instead of silently deciding 0.
    value_domain: ClassVar[frozenset[Any] | None] = None

    #: Declared worst-case number of phases, as a bound expression.
    phase_bound: ClassVar[str | None] = None
    #: Declared worst-case messages sent by correct processors.
    message_bound: ClassVar[str | None] = None
    #: Declared worst-case signatures sent by correct processors (required
    #: for authenticated algorithms; ``"unstated"`` when the paper gives no
    #: closed form).
    signature_bound: ClassVar[str | None] = None
    #: Per-round contraction rate of the correct-value diameter, as a bound
    #: expression evaluating into ``(0, 1)`` (approximate-agreement
    #: algorithms only; lint rule BA010 requires it on every
    #: ``ApproximateAgreement`` subclass).
    convergence_rate: ClassVar[str | None] = None

    #: Whether the run length is a predicate (``Processor.has_terminated``)
    #: rather than the fixed ``num_phases()`` schedule.  When ``True`` the
    #: runner stops as soon as every correct processor has terminated;
    #: ``num_phases()`` becomes the cap.
    variable_rounds: ClassVar[bool] = False
    #: Whether processors consult ``Context.coins``.  Drives coin-seed
    #: derivation in the fuzz campaign and the ``--seed`` CLI flag.
    uses_coins: ClassVar[bool] = False

    def __init__(self, n: int, t: int, *, transmitter: ProcessorId = TRANSMITTER) -> None:
        check_population(n, t)
        if transmitter != TRANSMITTER:
            # All algorithm descriptions in the paper index processors from
            # the transmitter; relabeling is trivial for callers, so the
            # library standardises on transmitter == 0.
            raise ConfigurationError("this library fixes the transmitter at id 0")
        self.n = n
        self.t = t
        self.transmitter = transmitter

    @abc.abstractmethod
    def num_phases(self) -> int:
        """The (fixed) number of phases a run of this algorithm executes."""

    @abc.abstractmethod
    def make_processor(self, pid: ProcessorId) -> Processor:
        """Create the protocol instance for processor *pid*."""

    # ------------------------------------------------------- paper's bounds

    def bound_parameters(self) -> dict[str, int]:
        """The parameter values the declared bound expressions close over.

        Always ``n`` and ``t``; tuning parameters (``s``, ``m``, ``alpha``,
        ``width``) are included when the instance defines them as ints.
        """
        parameters = {"n": self.n, "t": self.t}
        for extra in ("s", "m", "alpha", "width"):
            value = getattr(self, extra, None)
            if isinstance(value, int) and not isinstance(value, bool):
                parameters[extra] = value
        return parameters

    def declared_bound(self, declaration: str | None) -> int | None:
        """Evaluate one declared bound expression at this configuration."""
        # Imported lazily: repro.bounds pulls in the executable proofs,
        # which themselves run algorithms through repro.core.
        from repro.bounds.expressions import evaluate_bound

        return evaluate_bound(declaration, self.bound_parameters())

    def upper_bound_phases(self) -> int | None:
        """The declared worst-case phase count (``num_phases`` never
        exceeds it), or ``None`` if no closed form is declared."""
        return self.declared_bound(self.phase_bound)

    def upper_bound_messages(self) -> int | None:
        """The paper's worst-case bound on messages sent by correct
        processors, or ``None`` if the paper states no closed form."""
        return self.declared_bound(self.message_bound)

    def upper_bound_signatures(self) -> int | None:
        """The paper's worst-case bound on signatures sent by correct
        processors, or ``None`` if the paper states no closed form."""
        return self.declared_bound(self.signature_bound)

    def describe(self) -> dict[str, object]:
        """Metadata row for comparison tables."""
        return {
            "name": self.name,
            "authenticated": self.authenticated,
            "n": self.n,
            "t": self.t,
            "phases": self.num_phases(),
            "message_bound": self.upper_bound_messages(),
            "signature_bound": self.upper_bound_signatures(),
        }
