"""Exception hierarchy for the reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An algorithm or scenario was configured with invalid parameters.

    Examples: ``n != 2t + 1`` for Algorithm 1, a non-square grid for
    Algorithm 4, a fault bound ``t >= n``.
    """


class ProtocolViolationError(ReproError):
    """A processor's protocol produced output the model forbids.

    Raised by the runner when, for instance, a protocol addresses a message
    to a non-existent processor or to itself, or returns output after the
    algorithm's last phase.
    """


class ForgeryError(ReproError):
    """An attempt to sign on behalf of a processor without its key.

    The simulated signature scheme is *structurally* unforgeable: producing a
    correct processor's signature requires its :class:`~repro.crypto.signatures.SigningKey`,
    which only that processor's runtime context holds.  Any other attempt
    raises this error.
    """


class AdversaryError(ReproError):
    """The adversary emitted a message that violates the model.

    A faulty processor can send arbitrary *content*, but it can neither spoof
    the source of a message (the paper assumes each receiver knows the true
    immediate sender) nor act on behalf of a correct processor.
    """


class ValidationError(ReproError):
    """A finished run violated the Byzantine Agreement conditions.

    Only raised by the strict checking entry points; the ordinary validator
    returns a report instead of raising.
    """


class DisagreementError(ReproError, ValueError):
    """Correct processors decided different values.

    Raised by :meth:`~repro.core.runner.RunResult.unanimous_value`;
    subclasses :class:`ValueError` so pre-existing ``except ValueError``
    callers keep working.  Carries the full per-processor decision map so
    oracles and tests can assert on *who* disagreed instead of
    string-matching the message.
    """

    def __init__(self, decisions: dict) -> None:
        self.decisions = dict(decisions)
        values = sorted(map(repr, set(self.decisions.values())))
        super().__init__(f"correct processors disagree: {values}")
