"""Information-exchange accounting.

The paper measures *"the total number of messages the participating
processors have to send in the worst case"* and, for authenticated
algorithms, *"the number of signatures appended to messages"*.  Every lower
and upper bound is stated for messages/signatures **sent by correct
processors**, so the ledger keeps correct and faulty traffic separate.

A message's signature count is the number of
:class:`~repro.crypto.signatures.Signature` objects reachable inside its
payload (the paper's "signatures appended to a message"); the technical
assumption of Theorem 1 — every authenticated message carries at least its
sender's signature — is checked by :meth:`MetricsLedger.unsigned_correct_messages`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.message import Envelope, iter_payload_parts
from repro.core.types import ProcessorId
from repro.crypto.signatures import Signature


def count_signatures(payload: object) -> int:
    """Number of signatures appended to *payload* (nested ones included)."""
    return sum(
        1 for part in iter_payload_parts(payload) if isinstance(part, Signature)
    )


@dataclass(slots=True)
class MetricsLedger:
    """Running totals for one execution.

    All counters exclude the phase-0 inedge (the transmitter's private
    input), which is not a message between processors.
    """

    messages_by_correct: int = 0
    messages_by_faulty: int = 0
    signatures_by_correct: int = 0
    signatures_by_faulty: int = 0
    #: correct-sender messages that carried no signature at all — relevant
    #: only for authenticated algorithms (Theorem 1's technical assumption).
    unsigned_correct_messages: int = 0
    #: highest phase in which any processor (correct or faulty) sent.
    last_active_phase: int = 0
    #: configured number of phases the algorithm declared.
    phases_configured: int = 0

    sent_per_processor: Counter[ProcessorId] = field(default_factory=Counter)
    received_per_processor: Counter[ProcessorId] = field(default_factory=Counter)
    messages_per_phase: Counter[int] = field(default_factory=Counter)
    signatures_per_phase: Counter[int] = field(default_factory=Counter)
    #: messages sent by correct processors *to* each receiver — Theorem 2
    #: reasons about how many messages each member of the faulty set B
    #: receives from correct processors.
    correct_messages_received_by: Counter[ProcessorId] = field(default_factory=Counter)

    def record_send(self, envelope: Envelope, sender_correct: bool) -> None:
        """Account for one sent message."""
        if envelope.is_input_edge():
            return
        n_sigs = count_signatures(envelope.payload)
        self.sent_per_processor[envelope.src] += 1
        self.received_per_processor[envelope.dst] += 1
        self.messages_per_phase[envelope.phase] += 1
        self.signatures_per_phase[envelope.phase] += n_sigs
        self.last_active_phase = max(self.last_active_phase, envelope.phase)
        if sender_correct:
            self.messages_by_correct += 1
            self.signatures_by_correct += n_sigs
            self.correct_messages_received_by[envelope.dst] += 1
            if n_sigs == 0:
                self.unsigned_correct_messages += 1
        else:
            self.messages_by_faulty += 1
            self.signatures_by_faulty += n_sigs

    # ------------------------------------------------------------- summaries

    @property
    def total_messages(self) -> int:
        """Messages sent by anyone, correct or faulty."""
        return self.messages_by_correct + self.messages_by_faulty

    @property
    def total_signatures(self) -> int:
        """Signatures appended by anyone, correct or faulty."""
        return self.signatures_by_correct + self.signatures_by_faulty

    def summary(self) -> dict[str, int]:
        """Compact dict of headline counters (for tables and reports)."""
        return {
            "messages_by_correct": self.messages_by_correct,
            "messages_by_faulty": self.messages_by_faulty,
            "signatures_by_correct": self.signatures_by_correct,
            "signatures_by_faulty": self.signatures_by_faulty,
            "last_active_phase": self.last_active_phase,
            "phases_configured": self.phases_configured,
        }
