"""Lock-step synchronous execution of an agreement algorithm.

The runner implements the paper's synchronous model directly: a run is a
sequence of phases; in phase ``k`` every processor sends messages computed
from what it received in phases ``< k``; everything sent in phase ``k`` is
delivered at the beginning of phase ``k + 1``.  Correct processors execute
their algorithm's :class:`~repro.core.protocol.Processor`; faulty ones are
driven by an :class:`~repro.adversary.base.Adversary`.

The runner also records the complete :class:`~repro.core.history.History`
(the formal object of Section 2) and a
:class:`~repro.core.metrics.MetricsLedger` with the paper's cost measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.adversary.base import Adversary, AdversaryEnvironment, NullAdversary, PhaseView
from repro.core.errors import (
    AdversaryError,
    ConfigurationError,
    DisagreementError,
    ProtocolViolationError,
)
from repro.core.history import History
from repro.core.message import CANONICAL_STATS, Envelope
from repro.core.metrics import MetricsLedger, count_signatures
from repro.core.protocol import AgreementAlgorithm, Context, Processor
from repro.core.types import INPUT_SOURCE, ProcessorId, Value
from repro.crypto.signatures import SignatureService
from repro.obs.events import TRACE_SCHEMA, EventSink, jsonable, safe_digest
from repro.obs.telemetry import SYSTEM_CLOCK, Clock, PhaseTiming, RunTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.approx.coins import CoinSource
    from repro.transport.base import Transport


@dataclass
class RunResult:
    """Everything observable about one finished execution."""

    algorithm_name: str
    n: int
    t: int
    transmitter: ProcessorId
    input_value: Value
    correct: frozenset[ProcessorId]
    faulty: frozenset[ProcessorId]
    #: Decisions of the *correct* processors only — the BA conditions
    #: constrain nobody else.
    decisions: dict[ProcessorId, Value]
    metrics: MetricsLedger
    history: History
    #: The live protocol instances of correct processors, for postcondition
    #: checks (e.g. Algorithm 2's transferable proof of agreement).
    processors: Mapping[ProcessorId, Processor] = field(default_factory=dict)
    #: The run's signature registry — needed to re-verify recorded payloads
    #: (e.g. by the conformance checker or an external proof auditor).
    service: SignatureService | None = None
    #: Timing profile, recorded only when the run was instrumented (any
    #: sink attached or ``collect_telemetry=True``); ``None`` on the
    #: un-instrumented fast path.
    telemetry: RunTelemetry | None = None
    #: Fault events the transport recorded (``repro-fault/1`` dicts, in
    #: injection order); empty for the default perfect network.
    fault_events: tuple[dict[str, Any], ...] = ()
    #: Seed of the :class:`~repro.approx.coins.CoinSource` the run used,
    #: or ``None`` for deterministic algorithms.  Replay layers rebuild
    #: the identical coin stream from this.
    coin_seed: int | None = None

    def decision_of(self, pid: ProcessorId) -> Value:
        """Decision of correct processor *pid*."""
        return self.decisions[pid]

    def decided_values(self) -> set[Value]:
        """The set of distinct values decided by correct processors."""
        return set(self.decisions.values())

    def unanimous_value(self) -> Value:
        """The single agreed value.

        Raises:
            DisagreementError: (a :class:`ValueError` subclass carrying
                the per-processor decisions) if correct processors
                disagree.
        """
        values = self.decided_values()
        if len(values) != 1:
            raise DisagreementError(self.decisions)
        return next(iter(values))


def _route_sorted(sent: list[Envelope]) -> dict[ProcessorId, list[Envelope]]:
    """Reference delivery: bucket every sent envelope by destination, then
    stable-sort each inbox by source.

    This is the seed implementation, kept verbatim as the oracle for the
    equivalence tests of :func:`_route_merged` (``tests/core``); production
    runs use the merge-based routing below.
    """
    pending: dict[ProcessorId, list[Envelope]] = {}
    for envelope in sent:
        pending.setdefault(envelope.dst, []).append(envelope)
    for inbox in pending.values():
        inbox.sort(key=lambda e: e.src)
    return pending


def _merge_by_src(base: list[Envelope], extra: list[Envelope]) -> list[Envelope]:
    """Merge two src-sorted envelope lists, *base* winning ties.

    Correct and faulty sender sets are disjoint, so ties cannot actually
    occur; base-first matches the stable sort of the reference routing.
    """
    merged: list[Envelope] = []
    i = j = 0
    while i < len(base) and j < len(extra):
        if extra[j].src < base[i].src:
            merged.append(extra[j])
            j += 1
        else:
            merged.append(base[i])
            i += 1
    merged.extend(base[i:])
    merged.extend(extra[j:])
    return merged


def _route_merged(
    sent: list[Envelope], correct_count: int
) -> dict[ProcessorId, list[Envelope]]:
    """Optimised delivery: exploit that the first *correct_count* envelopes
    of *sent* were produced by iterating correct processors in ascending pid
    order, so per destination they are already sorted by source.  Only the
    adversary's sends (which may name sources in any order) are sorted, and
    the two src-sorted streams merge in linear time.
    """
    pending: dict[ProcessorId, list[Envelope]] = {}
    for envelope in sent[:correct_count]:
        pending.setdefault(envelope.dst, []).append(envelope)
    if correct_count < len(sent):
        adversarial: dict[ProcessorId, list[Envelope]] = {}
        for envelope in sent[correct_count:]:
            adversarial.setdefault(envelope.dst, []).append(envelope)
        for dst, extra in adversarial.items():
            extra.sort(key=lambda e: e.src)
            base = pending.get(dst)
            pending[dst] = extra if base is None else _merge_by_src(base, extra)
    return pending


def _emit(
    sinks: Sequence[EventSink],
    event: dict[str, Any],
    telemetry: RunTelemetry | None = None,
) -> None:
    """Deliver one trace event to every sink.

    Every call site is guarded by ``if sinks:`` — with no sinks attached
    this function is never entered, which is what keeps the fast path free
    of per-message tracing work (``tests/obs`` pins that with a
    raise-on-call guard).
    """
    for sink in sinks:
        sink.emit(event)
    if telemetry is not None:
        telemetry.events_emitted += 1


def run(
    algorithm: AgreementAlgorithm,
    input_value: Value,
    adversary: Adversary | None = None,
    *,
    rushing: bool = False,
    record_history: bool = True,
    delivery: str = "merged",
    transport: "Transport | None" = None,
    sinks: Sequence[EventSink] = (),
    collect_telemetry: bool = False,
    clock: Clock | None = None,
    service: SignatureService | None = None,
    coins: "CoinSource | None" = None,
) -> RunResult:
    """Execute *algorithm* on *input_value* against *adversary*.

    Args:
        algorithm: a configured algorithm (knows its ``n`` and ``t``).
        input_value: the private value on the transmitter's phase-0 inedge.
        adversary: strategy for the faulty processors; defaults to the
            fault-free :class:`~repro.adversary.base.NullAdversary`.
        rushing: expose the current phase's correct traffic to the
            adversary before it chooses its own sends (off by default to
            match the paper's history model).
        record_history: set ``False`` to skip history recording for large
            parameter sweeps (metrics are always recorded).
        delivery: inbox routing strategy — ``"merged"`` (default, linear
            merge of the already-sorted correct traffic with the sorted
            adversary traffic) or ``"sorted"`` (the straightforward
            per-inbox sort, kept as the reference for equivalence tests).
            Both produce identical inboxes; see ``tests/core``.
        transport: a :class:`~repro.transport.base.Transport` that owns
            phase delivery — e.g.
            :class:`~repro.transport.faulty.FaultyTransport` to inject
            crash/omission/partition faults.  ``None`` (the default)
            keeps the guarded in-line lockstep fast path, which is
            byte-identical to ``LockstepTransport`` (pinned by
            ``tests/transport``).  When a transport is given, *delivery*
            must stay ``"merged"`` — the transport owns the strategy.
            Fault events the transport records are forwarded to *sinks*
            and collected on :attr:`RunResult.fault_events`.  Faults
            affect delivery only: the history and the metrics ledger
            record what was *sent*, which is the paper's cost measure.
        sinks: :class:`~repro.obs.events.EventSink` objects receiving the
            ``repro-trace/1`` event stream (``run_start``, ``phase_start``,
            ``send``, ``deliver``, ``decide``, ``run_end``).  The default
            empty tuple is a strict no-op: no event objects are built and
            no per-message work is added.  The runner never closes sinks.
        collect_telemetry: record phase/handler timings into
            :attr:`RunResult.telemetry` even without sinks attached.
        clock: time source for the telemetry (defaults to
            :data:`~repro.obs.telemetry.SYSTEM_CLOCK`); inject a
            :class:`~repro.obs.telemetry.TickClock` for deterministic,
            byte-reproducible traces.
        service: the signature registry for this run; ``None`` (the
            default) mints a fresh one.  Must be unused and unsealed.
            The batch engine injects per-run
            :class:`~repro.crypto.signatures.InternedSignatureService`
            instances so digest computations are shared across a batch
            while the issued-signature sets stay strictly per-run.
        coins: seeded :class:`~repro.approx.coins.CoinSource` for
            randomized algorithms; exposed to every correct processor as
            ``Context.coins`` and recorded as
            :attr:`RunResult.coin_seed`.  ``None`` (the default) for the
            deterministic zoo.

    Returns:
        A :class:`RunResult`.

    Raises:
        ConfigurationError: if the adversary corrupts more than ``t``
            processors or names ids outside the system.
        AdversaryError / ProtocolViolationError: on model violations.
    """
    adversary = adversary if adversary is not None else NullAdversary()
    if delivery not in ("merged", "sorted"):
        raise ConfigurationError(
            f"unknown delivery strategy {delivery!r}; expected 'merged' or 'sorted'"
        )
    if transport is not None and delivery != "merged":
        raise ConfigurationError(
            "delivery= and transport= are mutually exclusive: the transport "
            "owns the routing strategy (LockstepTransport('sorted') is the "
            "transport spelling of delivery='sorted')"
        )
    route_sorted = delivery == "sorted"
    n, t = algorithm.n, algorithm.t
    if (
        algorithm.value_domain is not None
        and input_value not in algorithm.value_domain
    ):
        raise ConfigurationError(
            f"{algorithm.name} only agrees on values in "
            f"{sorted(algorithm.value_domain, key=repr)}; got {input_value!r} "
            f"(wrap a binary algorithm with MultivaluedAgreement for wider "
            f"domains)"
        )
    faulty = adversary.faulty
    if len(faulty) > t:
        raise ConfigurationError(
            f"adversary corrupts {len(faulty)} processors but the algorithm "
            f"only claims to tolerate t={t}"
        )
    if any(not 0 <= pid < n for pid in faulty):
        raise ConfigurationError(f"faulty set {sorted(faulty)} not within range({n})")
    correct = frozenset(range(n)) - faulty

    service = service if service is not None else SignatureService()
    processors: dict[ProcessorId, Processor] = {}
    for pid in sorted(correct):
        processor = algorithm.make_processor(pid)
        processor.bind(
            Context(
                pid=pid,
                n=n,
                t=t,
                transmitter=algorithm.transmitter,
                key=service.key_for(pid),
                service=service,
                coins=coins,
            )
        )
        processors[pid] = processor

    adversary.bind(
        AdversaryEnvironment(
            n=n,
            t=t,
            transmitter=algorithm.transmitter,
            input_value=input_value,
            service=service,
            keys={pid: service.key_for(pid) for pid in sorted(faulty)},
            algorithm=algorithm,
            coins=coins,
        )
    )
    # Key distribution is complete: every correct processor holds its own
    # key, the adversary holds exactly the faulty coalition's.  Sealing the
    # registry makes that allocation final — from here on, key_for() raises,
    # so nothing running inside the phase loop (a protocol, an adversary, a
    # generated fuzz primitive) can acquire a correct processor's signing
    # capability.
    service.seal()

    sinks = tuple(sinks)
    telemetry: RunTelemetry | None = None
    clk = clock if clock is not None else SYSTEM_CLOCK
    run_wall_started = run_cpu_started = 0.0
    digest_hits_0 = digest_misses_0 = canonical_fast_0 = canonical_slow_0 = 0
    if sinks or collect_telemetry:
        telemetry = RunTelemetry()
        run_wall_started, run_cpu_started = clk.wall(), clk.cpu()
        digest_hits_0 = service.digest_memo_hits
        digest_misses_0 = service.digest_memo_misses
        canonical_fast_0 = CANONICAL_STATS["fast"]
        canonical_slow_0 = CANONICAL_STATS["slow"]

    metrics = MetricsLedger(phases_configured=algorithm.num_phases())
    history = History.with_input(algorithm.transmitter, input_value)

    fault_events: list[dict[str, Any]] = []
    if transport is not None:
        transport.begin_run(
            n=n, num_phases=algorithm.num_phases(), correct=correct
        )

    if sinks:
        run_start_event = {
            "event": "run_start",
            "schema": TRACE_SCHEMA,
            "algorithm": algorithm.name,
            "n": n,
            "t": t,
            "transmitter": algorithm.transmitter,
            "input_value": jsonable(input_value),
            "faulty": sorted(faulty),
            "phases_configured": algorithm.num_phases(),
            "rushing": rushing,
        }
        if coins is not None:
            # Key added only for randomized runs so that exact-BA traces
            # stay byte-identical to the fixed-round runner's.
            run_start_event["coin_seed"] = coins.seed
        _emit(sinks, run_start_event, telemetry)
        # The phase-0 inedge is delivered at the beginning of phase 1, like
        # every other phase-k message is delivered at phase k + 1.
        _emit(
            sinks,
            {
                "event": "deliver",
                "phase": 1,
                "dst": algorithm.transmitter,
                "messages": 1,
            },
            telemetry,
        )

    input_edge = Envelope(
        src=INPUT_SOURCE, dst=algorithm.transmitter, phase=0, payload=input_value
    )
    pending: dict[ProcessorId, list[Envelope]] = {algorithm.transmitter: [input_edge]}

    # Variable-round algorithms (randomized consensus) terminate by
    # predicate; num_phases() is their cap.  The flag is read once so the
    # fixed-round zoo never pays a has_terminated() call per phase.
    variable = algorithm.variable_rounds

    for phase in range(1, algorithm.num_phases() + 1):
        inboxes = pending
        sent: list[Envelope] = []
        phase_wall_started = phase_cpu_started = 0.0
        if telemetry is not None:
            phase_wall_started, phase_cpu_started = clk.wall(), clk.cpu()
        if sinks:
            _emit(
                sinks,
                {"event": "phase_start", "phase": phase, "ledger": metrics.summary()},
                telemetry,
            )

        for pid in sorted(correct):
            handler_started = clk.wall() if telemetry is not None else 0.0
            outgoing = processors[pid].on_phase(phase, tuple(inboxes.get(pid, ())))
            if telemetry is not None:
                telemetry.add_handler_time(pid, clk.wall() - handler_started)
            for dst, payload in outgoing:
                if not 0 <= dst < n:
                    raise ProtocolViolationError(
                        f"processor {pid} addressed non-existent processor {dst}"
                    )
                if dst == pid:
                    raise ProtocolViolationError(
                        f"processor {pid} sent a message to itself"
                    )
                sent.append(Envelope(src=pid, dst=dst, phase=phase, payload=payload))
        correct_count = len(sent)

        view = PhaseView(
            phase=phase,
            inboxes={pid: tuple(inboxes.get(pid, ())) for pid in sorted(faulty)},
            history=history,
            rushing_outbox=tuple(sent) if rushing else (),
        )
        for src, dst, payload in adversary.on_phase(view):
            if src not in faulty:
                raise AdversaryError(
                    f"adversary tried to send as processor {src}, which it "
                    f"does not control"
                )
            if not 0 <= dst < n or dst == src:
                raise AdversaryError(f"invalid adversary destination {dst}")
            sent.append(Envelope(src=src, dst=dst, phase=phase, payload=payload))

        if sinks:
            for envelope in sent:
                sender_correct = envelope.src in correct
                metrics.record_send(envelope, sender_correct=sender_correct)
                _emit(
                    sinks,
                    {
                        "event": "send",
                        "phase": phase,
                        "src": envelope.src,
                        "dst": envelope.dst,
                        "digest": safe_digest(envelope.payload),
                        "signatures": count_signatures(envelope.payload),
                        "sender_correct": sender_correct,
                        "messages_total": metrics.total_messages,
                        "signatures_total": metrics.total_signatures,
                    },
                    telemetry,
                )
        else:
            for envelope in sent:
                metrics.record_send(envelope, sender_correct=envelope.src in correct)
        if transport is None:
            pending = (
                _route_sorted(sent)
                if route_sorted
                else _route_merged(sent, correct_count)
            )
        else:
            pending = transport.deliver(phase, sent, correct_count)
            injected = transport.drain_faults()
            if injected:
                fault_events.extend(injected)
                if sinks:
                    for fault in injected:
                        _emit(sinks, fault, telemetry)
        if sinks:
            for dst in sorted(pending):
                _emit(
                    sinks,
                    {
                        "event": "deliver",
                        "phase": phase + 1,
                        "dst": dst,
                        "messages": len(pending[dst]),
                    },
                    telemetry,
                )
        if record_history:
            history.append_phase(sent)
        if telemetry is not None:
            telemetry.per_phase.append(
                PhaseTiming(
                    phase=phase,
                    wall_s=clk.wall() - phase_wall_started,
                    cpu_s=clk.cpu() - phase_cpu_started,
                )
            )
        if (
            variable
            and processors
            and all(processors[pid].has_terminated() for pid in processors)
        ):
            break

    if transport is not None:
        leftover = transport.end_run(algorithm.num_phases())
        if leftover:
            fault_events.extend(leftover)
            if sinks:
                for fault in leftover:
                    _emit(sinks, fault, telemetry)

    for pid in sorted(correct):
        processors[pid].on_final(tuple(pending.get(pid, ())))

    decisions = {pid: processors[pid].decision() for pid in sorted(correct)}
    if telemetry is not None:
        telemetry.wall_s = clk.wall() - run_wall_started
        telemetry.cpu_s = clk.cpu() - run_cpu_started
        telemetry.digest_memo_hits = service.digest_memo_hits - digest_hits_0
        telemetry.digest_memo_misses = service.digest_memo_misses - digest_misses_0
        telemetry.canonical_fast_hits = CANONICAL_STATS["fast"] - canonical_fast_0
        telemetry.canonical_slow_hits = CANONICAL_STATS["slow"] - canonical_slow_0
    if sinks:
        for pid in sorted(correct):
            _emit(
                sinks,
                {"event": "decide", "processor": pid, "decision": jsonable(decisions[pid])},
                telemetry,
            )
        _emit(
            sinks,
            {
                "event": "run_end",
                "ledger": metrics.summary(),
                "messages_per_phase": {
                    str(p): c for p, c in sorted(metrics.messages_per_phase.items())
                },
                "signatures_per_phase": {
                    str(p): c for p, c in sorted(metrics.signatures_per_phase.items())
                },
                "telemetry": telemetry.to_json_dict() if telemetry is not None else None,
            },
            telemetry,
        )
    return RunResult(
        algorithm_name=algorithm.name,
        n=n,
        t=t,
        transmitter=algorithm.transmitter,
        input_value=input_value,
        correct=correct,
        faulty=faulty,
        decisions=decisions,
        metrics=metrics,
        history=history,
        processors=processors,
        service=service,
        telemetry=telemetry,
        fault_events=tuple(fault_events),
        coin_seed=coins.seed if coins is not None else None,
    )
