"""Batched execution: thousands of runs of one algorithm in one process.

The scalar runner (:func:`repro.core.runner.run`) pays per run for work
that is identical across a sweep: algorithm construction, signature-digest
computation over payloads whose *values* repeat run after run, and — for
fault-free grids — the entire execution itself, which is a pure function
of ``(algorithm configuration, input value, fault plan)``.  This module
amortises all three:

* **one arena per batch** — a single algorithm instance serves every run
  (processors are still minted fresh per run; they are the only stateful
  parts), and one :class:`~repro.crypto.signatures.SharedDigestTable`
  backs every run's signature registry, so equal payloads are digested
  once per batch instead of once per run;
* **run-class deduplication** — adversary-free cases are grouped by
  ``(input value, fault plan)`` under type-tagged
  :func:`~repro.core.message.intern_key` keys (so ``1`` and ``True`` stay
  distinct classes); each class executes once and its outcome is
  replicated to the other members, which is sound because such runs are
  deterministic pure functions of the class key;
* **vectorised kernels** — algorithms may register a batch kernel
  (:func:`register_batch_kernel`) that computes the outcomes of *all*
  fault-free classes at once over ``(classes, processors)`` integer
  arrays (numpy majority votes and threshold tests instead of per-run
  Counters); ``oral-messages`` and ``phase-king`` ship kernels.

``strict=True`` re-executes every unique class through the scalar runner
and asserts byte-identical decisions and metrics — the equivalence gate
the property suite (``tests/properties/test_batch_equivalence.py``) runs
across the whole algorithm zoo.

The per-run signature registries stay strictly isolated: sharing issued
signatures across runs would let a signature issued in one run validate a
forgery in another.  Only value-pure computations (digests) are shared.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.adversary.base import Adversary
from repro.core.errors import ConfigurationError
from repro.core.message import UninternableError, intern_key
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import RunResult, run
from repro.core.types import ProcessorId, Value
from repro.core.validation import check_byzantine_agreement
from repro.crypto.signatures import InternedSignatureService, SharedDigestTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.transport.faults import FaultPlan

#: Builds the adversary for one case; ``None`` means fault-free.
AdversaryFactory = Callable[[AgreementAlgorithm], "Adversary | None"]


class BatchEquivalenceError(AssertionError):
    """Strict mode found a batch outcome differing from the scalar runner."""


@dataclass(frozen=True, slots=True)
class BatchCase:
    """One scenario of a batch: the per-run inputs the engine varies.

    The algorithm itself is batch-wide; a case contributes the input
    value, optionally an adversary factory (which disables deduplication
    for that case — adversaries may close over mutable state) and
    optionally a :class:`~repro.transport.faults.FaultPlan` routed through
    a :class:`~repro.transport.faulty.FaultyTransport`.
    """

    value: Value
    adversary_name: str = "fault-free"
    adversary_factory: AdversaryFactory | None = None
    fault_plan: "FaultPlan | None" = None


@dataclass(frozen=True, slots=True)
class BatchOutcome:
    """Everything the batch engine reports about one finished run.

    Mirrors the scalar runner's observable surface for a history-free run:
    the correct processors' decisions and the full
    :class:`~repro.core.metrics.MetricsLedger` headline/per-phase counters.
    ``replicated`` marks outcomes copied from a deduplicated class mate;
    ``kernel`` marks outcomes computed by a vectorised kernel.
    """

    decisions: tuple[tuple[ProcessorId, Value], ...]
    messages_by_correct: int
    messages_by_faulty: int
    signatures_by_correct: int
    signatures_by_faulty: int
    phases_used: int
    phases_configured: int
    messages_per_phase: tuple[tuple[int, int], ...]
    signatures_per_phase: tuple[tuple[int, int], ...]
    agreement_ok: bool
    replicated: bool = False
    kernel: bool = False

    def decisions_dict(self) -> dict[ProcessorId, Value]:
        """The decisions as a pid-keyed dict (the runner's shape)."""
        return dict(self.decisions)

    def comparable(self) -> "BatchOutcome":
        """The outcome with provenance flags cleared, for equality checks."""
        return dataclasses.replace(self, replicated=False, kernel=False)


@dataclass(slots=True)
class BatchStats:
    """Amortisation accounting for one :func:`run_batch` call."""

    runs: int = 0
    #: Distinct run classes actually executed (kernel or scalar).
    unique_runs: int = 0
    #: Outcomes replicated from an already-executed class mate.
    replicated_runs: int = 0
    #: Unique classes computed by a vectorised kernel.
    kernel_runs: int = 0
    #: Unique classes (plus non-dedupable cases) run through the runner.
    scalar_runs: int = 0
    #: Shared digest table accounting across the whole batch.
    digest_hits: int = 0
    digest_misses: int = 0

    @property
    def digest_hit_rate(self) -> float | None:
        """Fraction of digest lookups served by the table (``None``: unused)."""
        total = self.digest_hits + self.digest_misses
        return (self.digest_hits / total) if total else None

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (used by the ``repro bench`` batch cases)."""
        rate = self.digest_hit_rate
        return {
            "runs": self.runs,
            "unique_runs": self.unique_runs,
            "replicated_runs": self.replicated_runs,
            "kernel_runs": self.kernel_runs,
            "scalar_runs": self.scalar_runs,
            "digest_hits": self.digest_hits,
            "digest_misses": self.digest_misses,
            "digest_hit_rate": round(rate, 4) if rate is not None else None,
        }


@dataclass(slots=True)
class BatchResult:
    """Outcomes (in case order) plus the batch's amortisation stats."""

    outcomes: list[BatchOutcome] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)


#: A vectorised fault-free executor: ``(algorithm, values)`` → one outcome
#: per value, or ``None`` to decline (e.g. numpy unavailable).  *values*
#: are the representatives of the batch's fault-free run classes.
BatchKernel = Callable[
    [AgreementAlgorithm, Sequence[Value]], "list[BatchOutcome] | None"
]

_KERNELS: dict[str, BatchKernel] = {}


def register_batch_kernel(name: str) -> Callable[[BatchKernel], BatchKernel]:
    """Register *fn* as the batch kernel for the algorithm named *name*.

    A kernel receives the batch's algorithm instance and the input values
    of every fault-free, adversary-free, plan-free run class, and returns
    one :class:`BatchOutcome` per value — byte-identical to what the
    scalar runner would produce — or ``None`` to decline the whole batch
    (the engine then falls back to scalar execution).  Kernels must
    type-check the instance (``type(algorithm) is …``) so subclasses with
    overridden behaviour fall back to the scalar path.
    """

    def decorate(fn: BatchKernel) -> BatchKernel:
        _KERNELS[name] = fn
        return fn

    return decorate


def batch_kernel_for(name: str) -> BatchKernel | None:
    """The registered kernel for algorithm *name*, if any."""
    return _KERNELS.get(name)


def kernel_value_table(
    values: Sequence[Value], default: Value
) -> tuple[list[Value], list[int], int]:
    """Map run-class values (plus the algorithm default) to small ints.

    Returns ``(table, indices, default_index)``: *table* holds one
    representative per distinct value (distinct under
    :func:`~repro.core.message.intern_key`, so ``1`` and ``True`` get
    separate rows) sorted by ``repr`` — the tie-break order the scalar
    majority votes use — and ``indices[i]`` is the table row of
    ``values[i]``.  Raises
    :class:`~repro.core.message.UninternableError` for values that cannot
    be keyed; kernels decline such batches and the scalar path takes over.
    """
    reps: list[tuple[Any, Value]] = []
    seen: set[Any] = set()
    for value in [*values, default]:
        key = intern_key(value)
        if key not in seen:
            seen.add(key)
            reps.append((key, value))
    reps.sort(key=lambda item: repr(item[1]))
    index_of = {key: row for row, (key, _) in enumerate(reps)}
    table = [value for _, value in reps]
    indices = [index_of[intern_key(value)] for value in values]
    return table, indices, index_of[intern_key(default)]


def kernel_agreement_ok(
    algorithm: AgreementAlgorithm,
    value: Value,
    decisions: dict[ProcessorId, Value],
) -> bool:
    """The BA verdict for a kernel-computed fault-free run.

    Evaluates the same :func:`~repro.core.validation.check_byzantine_agreement`
    conditions the scalar sweep applies, over a probe object carrying the
    only fields the validator reads (all processors correct — the kernel
    precondition).
    """
    from types import SimpleNamespace

    probe = SimpleNamespace(
        decisions=dict(decisions),
        transmitter=algorithm.transmitter,
        correct=frozenset(range(algorithm.n)),
        faulty=frozenset(),
        input_value=value,
    )
    return check_byzantine_agreement(probe).ok  # type: ignore[arg-type]


def _class_key(case: BatchCase) -> Any | None:
    """Deduplication key of *case*, or ``None`` when it must not be deduped.

    Adversary cases never dedupe (factories may close over state and the
    adversary itself is stateful).  Fault plans are frozen value objects,
    and :class:`~repro.transport.faulty.FaultyTransport` is deterministic
    in them, so ``(value, plan)`` fully determines an adversary-free run.
    """
    if case.adversary_factory is not None:
        return None
    try:
        return (intern_key(case.value), case.fault_plan)
    except (UninternableError, TypeError):
        return None


def _outcome_from_result(result: RunResult, agreement_ok: bool) -> BatchOutcome:
    """Condense a scalar :class:`RunResult` into a :class:`BatchOutcome`."""
    metrics = result.metrics
    return BatchOutcome(
        decisions=tuple(sorted(result.decisions.items())),
        messages_by_correct=metrics.messages_by_correct,
        messages_by_faulty=metrics.messages_by_faulty,
        signatures_by_correct=metrics.signatures_by_correct,
        signatures_by_faulty=metrics.signatures_by_faulty,
        phases_used=metrics.last_active_phase,
        phases_configured=metrics.phases_configured,
        messages_per_phase=tuple(sorted(metrics.messages_per_phase.items())),
        signatures_per_phase=tuple(sorted(metrics.signatures_per_phase.items())),
        agreement_ok=agreement_ok,
    )


def _transport_for(case: BatchCase, delivery: str) -> Any | None:
    """The case's transport: a fault-plan decorator, or ``None``."""
    if case.fault_plan is None or case.fault_plan.is_empty:
        return None
    from repro.transport.base import LockstepTransport
    from repro.transport.faulty import FaultyTransport

    # The requested delivery strategy survives as the base transport's
    # routing (the runner itself requires delivery="merged" whenever a
    # transport is supplied).
    return FaultyTransport(case.fault_plan, LockstepTransport(delivery))


def _run_scalar(
    algorithm: AgreementAlgorithm,
    case: BatchCase,
    delivery: str,
    table: SharedDigestTable | None,
) -> BatchOutcome:
    """Execute one case through the runner (the batch's non-kernel path).

    With *table* given, the run's registry shares the batch digest table;
    with ``None`` the run is a fully independent scalar reference (used by
    strict mode).
    """
    adversary = (
        case.adversary_factory(algorithm)
        if case.adversary_factory is not None
        else None
    )
    transport = _transport_for(case, delivery)
    service = InternedSignatureService(table) if table is not None else None
    result = run(
        algorithm,
        case.value,
        adversary,
        record_history=False,
        delivery="merged" if transport is not None else delivery,
        transport=transport,
        service=service,
    )
    return _outcome_from_result(result, check_byzantine_agreement(result).ok)


def _describe_diff(batch: BatchOutcome, scalar: BatchOutcome) -> str:
    """Field-by-field difference report for :class:`BatchEquivalenceError`."""
    lines = []
    for f in dataclasses.fields(BatchOutcome):
        if f.name in ("replicated", "kernel"):
            continue
        a, b = getattr(batch, f.name), getattr(scalar, f.name)
        if a != b or repr(a) != repr(b):
            lines.append(f"  {f.name}: batch {a!r} != scalar {b!r}")
    return "\n".join(lines) or "  (values equal but reprs differ)"


def _check_strict(
    algorithm: AgreementAlgorithm,
    case: BatchCase,
    outcome: BatchOutcome,
    delivery: str,
) -> None:
    """Assert *outcome* equals an independent scalar-runner execution."""
    reference = _run_scalar(algorithm, case, delivery, table=None)
    # repr-compare on top of ==: the decisions must be *byte*-identical,
    # and Python's 1 == True would otherwise let a kernel that decides
    # True where the runner decides 1 slip through.
    if outcome.comparable() != reference or repr(outcome.comparable()) != repr(
        reference
    ):
        raise BatchEquivalenceError(
            f"batch outcome diverged from the scalar runner for "
            f"{algorithm.name} value={case.value!r} "
            f"adversary={case.adversary_name}:\n"
            f"{_describe_diff(outcome, reference)}"
        )


def run_batch(
    algorithm_or_factory: AgreementAlgorithm | Callable[[], AgreementAlgorithm],
    cases: Iterable[BatchCase | Value],
    *,
    strict: bool = False,
    delivery: str = "merged",
    table: SharedDigestTable | None = None,
) -> BatchResult:
    """Execute many runs of one algorithm, amortising shared work.

    Args:
        algorithm_or_factory: a configured algorithm instance, or a
            zero-argument factory for one; either way a **single**
            instance serves the whole batch (the arena).
        cases: :class:`BatchCase` objects (bare values are accepted and
            wrapped as fault-free cases).
        strict: re-run every unique class through the scalar runner and
            raise :class:`BatchEquivalenceError` on any difference in
            decisions or metrics.
        delivery: inbox routing strategy, as for the runner.
        table: the shared digest table (defaults to a fresh one; pass an
            existing table to share digests across several batches).

    Returns:
        A :class:`BatchResult` with one outcome per case, in case order.
    """
    algorithm = (
        algorithm_or_factory
        if isinstance(algorithm_or_factory, AgreementAlgorithm)
        else algorithm_or_factory()
    )
    case_list = [
        case if isinstance(case, BatchCase) else BatchCase(value=case)
        for case in cases
    ]
    if algorithm.value_domain is not None:
        for case in case_list:
            if case.value not in algorithm.value_domain:
                raise ConfigurationError(
                    f"{algorithm.name} only agrees on values in "
                    f"{sorted(algorithm.value_domain, key=repr)}; got "
                    f"{case.value!r}"
                )
    table = table if table is not None else SharedDigestTable()
    stats = BatchStats(runs=len(case_list))
    outcomes: list[BatchOutcome | None] = [None] * len(case_list)

    # Partition: dedupable classes (key -> case indices) and singletons.
    classes: dict[Any, list[int]] = {}
    singletons: list[int] = []
    for index, case in enumerate(case_list):
        key = _class_key(case)
        if key is None:
            singletons.append(index)
        else:
            classes.setdefault(key, []).append(index)

    # Kernel dispatch: every fault-free plan-free class in one shot.
    kernel = _KERNELS.get(algorithm.name)
    kernel_classes: list[list[int]] = []
    scalar_classes: list[list[int]] = []
    for key, indices in classes.items():
        plan = key[1]
        if kernel is not None and plan is None:
            kernel_classes.append(indices)
        else:
            scalar_classes.append(indices)
    if kernel_classes:
        values = [case_list[indices[0]].value for indices in kernel_classes]
        kernel_outcomes = kernel(algorithm, values) if kernel else None
        if kernel_outcomes is None:
            scalar_classes.extend(kernel_classes)
        else:
            for indices, outcome in zip(kernel_classes, kernel_outcomes):
                outcome = dataclasses.replace(outcome, kernel=True)
                stats.unique_runs += 1
                stats.kernel_runs += 1
                if strict:
                    _check_strict(
                        algorithm, case_list[indices[0]], outcome, delivery
                    )
                _fill(outcomes, indices, outcome, stats)

    # Scalar path: one runner execution per remaining class / singleton.
    for indices in scalar_classes:
        case = case_list[indices[0]]
        outcome = _run_scalar(algorithm, case, delivery, table)
        stats.unique_runs += 1
        stats.scalar_runs += 1
        if strict:
            _check_strict(algorithm, case, outcome, delivery)
        _fill(outcomes, indices, outcome, stats)
    for index in singletons:
        case = case_list[index]
        outcome = _run_scalar(algorithm, case, delivery, table)
        stats.unique_runs += 1
        stats.scalar_runs += 1
        if strict:
            _check_strict(algorithm, case, outcome, delivery)
        outcomes[index] = outcome

    stats.digest_hits = table.hits
    stats.digest_misses = table.misses
    final = [outcome for outcome in outcomes if outcome is not None]
    assert len(final) == len(case_list), "every case must produce an outcome"
    return BatchResult(outcomes=final, stats=stats)


def _fill(
    outcomes: list[BatchOutcome | None],
    indices: Sequence[int],
    outcome: BatchOutcome,
    stats: BatchStats,
) -> None:
    """Place *outcome* at the class representative and replicate to mates."""
    outcomes[indices[0]] = outcome
    if len(indices) > 1:
        replica = dataclasses.replace(outcome, replicated=True)
        for index in indices[1:]:
            outcomes[index] = replica
        stats.replicated_runs += len(indices) - 1
