"""Fundamental types for the Byzantine Agreement reproduction.

The model follows Section 2 of Dolev & Reischuk, *Bounds on Information
Exchange for Byzantine Agreement*: a system of ``n`` processors, completely
interconnected, of which up to ``t`` may be faulty.  One distinguished
processor — the *transmitter* — receives a private value ``v`` on a special
phase-0 inedge and the correct processors must reach Byzantine Agreement on
that value.

Processors are identified by small integers ``0 .. n-1``.  By convention the
transmitter is processor ``0`` throughout the library (every published
algorithm in the paper is described with an arbitrary but fixed transmitter,
so fixing it costs no generality).
"""

from __future__ import annotations

from typing import Final, Hashable, TypeAlias

#: Identifier of a processor.  Always in ``range(n)`` for a system of size n.
ProcessorId: TypeAlias = int

#: A value the transmitter may send.  The paper's proofs use ``V = {0, 1}``;
#: the library accepts any hashable value.
Value: TypeAlias = Hashable

#: The distinguished transmitter processor.
TRANSMITTER: Final[ProcessorId] = 0

#: Pseudo-source of the phase-0 inedge carrying the transmitter's private
#: value (the single edge of the paper's "initial phase").
INPUT_SOURCE: Final[ProcessorId] = -1

#: Default binary value domain used by the paper's proofs and algorithms.
BINARY_VALUES: Final[tuple[Value, ...]] = (0, 1)


def check_population(n: int, t: int) -> None:
    """Validate a system size against a fault bound.

    Raises :class:`ValueError` unless ``n >= 1`` and ``0 <= t < n``.  The
    individual algorithms impose stronger requirements (e.g. ``n = 2t + 1``
    for Algorithm 1, ``n > 3t`` for oral messages); those are checked by the
    algorithm constructors, not here.
    """
    if n < 1:
        raise ValueError(f"need at least one processor, got n={n}")
    if t < 0:
        raise ValueError(f"fault bound must be non-negative, got t={t}")
    if t >= n:
        raise ValueError(f"fault bound t={t} must be smaller than n={n}")


def check_processor_id(pid: ProcessorId, n: int) -> None:
    """Validate that *pid* identifies a processor in a system of size *n*."""
    if not 0 <= pid < n:
        raise ValueError(f"processor id {pid} out of range for n={n}")


def all_processors(n: int) -> range:
    """All processor ids of a system of size *n*, transmitter first."""
    return range(n)


def other_processors(n: int, pid: ProcessorId) -> list[ProcessorId]:
    """All processor ids except *pid* (the usual broadcast destination set)."""
    return [q for q in range(n) if q != pid]
