"""Message model: envelopes and canonical payload digests.

A *message* in the paper's model is a label on a directed edge of a phase
graph.  Here a sent message is an :class:`Envelope` — an immutable record of
``(src, dst, phase, payload)``.  The network stamps ``src`` and ``phase``;
protocols only choose ``(dst, payload)``.  This enforces the paper's
assumption that *"for each labeled edge, processor p knows the source of
that edge — no processor can send a message to p claiming to be somebody
else."*

Payloads must be canonicalisable: built from hashable immutables (ints,
strings, tuples, frozensets, frozen dataclasses).  :func:`payload_digest`
computes a deterministic digest used by the simulated signature scheme; it
is stable across processes (unlike :func:`hash`, which Python salts).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator

from repro.core.types import INPUT_SOURCE, ProcessorId


@dataclass(frozen=True, slots=True)
class Envelope:
    """One delivered message: an edge label of a phase graph.

    Attributes:
        src: true sender (stamped by the network, never spoofable); the
            special value :data:`~repro.core.types.INPUT_SOURCE` marks the
            phase-0 inedge that carries the transmitter's private value.
        dst: receiver.
        phase: the phase in which the message was *sent*; it is delivered to
            (and acted on by) the receiver at the beginning of ``phase + 1``.
        payload: arbitrary canonicalisable content.
    """

    src: ProcessorId
    dst: ProcessorId
    phase: int
    payload: Any

    def is_input_edge(self) -> bool:
        """True for the phase-0 inedge carrying the transmitter's value."""
        return self.src == INPUT_SOURCE and self.phase == 0


#: What a protocol returns from ``on_phase``: destination plus payload.
Outgoing = tuple[ProcessorId, Any]


class CanonicalisationError(TypeError):
    """Raised when a payload contains an object we cannot canonicalise."""


#: Scalar types that are their own canonical form.
_PRIMITIVES = (bool, int, float, str, bytes)

#: Fast-path accounting for :func:`canonical`: ``fast`` counts tuples that
#: took the all-primitives shortcut, ``slow`` counts tuples that needed the
#: per-item recursion.  Monotonic process-wide counters — consumers (the
#: runner's telemetry) snapshot and diff them around a region of interest.
CANONICAL_STATS = {"fast": 0, "slow": 0}


def canonical(payload: Any) -> Any:
    """Reduce *payload* to a canonical nested-tuple form.

    The canonical form is built only from ``None``, ``bool``, ``int``,
    ``float``, ``str``, ``bytes`` and tuples, with explicit type tags so
    that, e.g., ``(1, 2)`` and ``[1, 2]`` and ``frozenset({1, 2})`` cannot
    collide.  Frozen dataclasses are canonicalised field by field (tagged
    with their qualified class name), which covers every message type in
    this library.
    """
    if payload is None or isinstance(payload, _PRIMITIVES):
        return payload
    if isinstance(payload, Enum):
        return ("enum", type(payload).__qualname__, payload.name)
    if isinstance(payload, tuple):
        # Fast path: a tuple of primitives (the dominant payload shape on
        # hot sign/verify paths) needs no per-item recursion — each item is
        # already its own canonical form.
        if all(item is None or isinstance(item, _PRIMITIVES) for item in payload):
            CANONICAL_STATS["fast"] += 1
            return ("tuple", *payload)
        CANONICAL_STATS["slow"] += 1
        return ("tuple", *(canonical(item) for item in payload))
    if isinstance(payload, list):
        return ("list", *(canonical(item) for item in payload))
    if isinstance(payload, (frozenset, set)):
        members = sorted((repr(canonical(item)) for item in payload))
        return ("set", *members)
    if isinstance(payload, dict):
        items = sorted((repr(canonical(k)), canonical(v)) for k, v in payload.items())
        return ("dict", *items)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        fields = tuple(
            canonical(getattr(payload, f.name)) for f in dataclasses.fields(payload)
        )
        return ("dc", type(payload).__qualname__, *fields)
    raise CanonicalisationError(
        f"cannot canonicalise payload of type {type(payload).__qualname__}"
    )


def payload_digest(payload: Any) -> str:
    """Deterministic short digest of a payload's canonical form.

    Used as the "contents" a signature binds to.  Collision resistance at
    simulation scale is ample with 16 hex chars (64 bits); the scheme's
    unforgeability does **not** rest on the digest (it rests on the key
    registry), so the digest only needs to distinguish payloads honestly
    produced within one run.
    """
    text = repr(canonical(payload)).encode("utf-8")
    return hashlib.sha256(text).hexdigest()[:16]


class UninternableError(TypeError):
    """Raised by :func:`intern_key` for payloads it cannot key by value."""


def intern_key(payload: Any) -> Any:
    """A hashable, type-tagged mirror of *payload*'s canonical form.

    Two payloads get equal keys **iff** their canonical forms (and hence
    their :func:`payload_digest`) are equal — unlike raw payloads used as
    dict keys, where Python's cross-type equalities (``1 == True``,
    ``1 == 1.0``) would conflate values whose digests differ.  The batch
    engine uses these keys for its shared digest table and for run-class
    deduplication.

    Floats are keyed by ``repr`` (the digest is a function of the repr, so
    ``0.0`` and ``-0.0`` stay distinct).  Mutable containers are keyed by
    their *current* contents — safe here because keys are recomputed on
    every lookup, never stored against the object.  Payload types outside
    the canonicalisable set raise :class:`UninternableError` (callers fall
    back to direct digest computation or skip deduplication).
    """
    if payload is None:
        return None
    if isinstance(payload, bool):
        return ("b", payload)
    if isinstance(payload, int):
        return ("i", payload)
    if isinstance(payload, float):
        return ("f", repr(payload))
    if isinstance(payload, str):
        return ("s", payload)
    if isinstance(payload, bytes):
        return ("y", payload)
    if isinstance(payload, Enum):
        return ("e", type(payload).__qualname__, payload.name)
    if isinstance(payload, tuple):
        return ("t", *(intern_key(item) for item in payload))
    if isinstance(payload, list):
        return ("l", *(intern_key(item) for item in payload))
    if isinstance(payload, (frozenset, set)):
        # Sort by repr (not a frozenset of keys): a set can hold several
        # NaN objects, and multiplicity must survive into the key exactly
        # as it survives into the canonical form.
        return ("fs", *sorted((intern_key(item) for item in payload), key=repr))
    if isinstance(payload, dict):
        return (
            "m",
            *sorted(
                ((intern_key(k), intern_key(v)) for k, v in payload.items()),
                key=repr,
            ),
        )
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return (
            "d",
            type(payload).__qualname__,
            *(
                intern_key(getattr(payload, f.name))
                for f in dataclasses.fields(payload)
            ),
        )
    raise UninternableError(
        f"cannot intern payload of type {type(payload).__qualname__}"
    )


def iter_payload_parts(payload: Any) -> Iterator[Any]:
    """Depth-first iteration over a payload and its nested components.

    Used by the metrics layer to count signatures appended to a message
    regardless of how the algorithm nests them.
    """
    yield payload
    if isinstance(payload, (tuple, list, frozenset, set)):
        for item in payload:
            yield from iter_payload_parts(item)
    elif isinstance(payload, dict):
        for key, value in payload.items():
            yield from iter_payload_parts(key)
            yield from iter_payload_parts(value)
    elif dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        for field in dataclasses.fields(payload):
            yield from iter_payload_parts(getattr(payload, field.name))
