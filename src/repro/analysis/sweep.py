"""Parameter sweeps: run scenario grids and collect cost records.

This is the workhorse behind the benchmark harness and EXPERIMENTS.md —
the paper's evaluation is a family of worst-case cost claims over
``(n, t, s, α)``, so reproducing it means sweeping those parameters and
recording messages / signatures / phases per run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Iterable, Mapping

from repro.adversary.base import Adversary
from repro.core.protocol import AgreementAlgorithm
from repro.approx.validation import check_run_conditions
from repro.core.runner import run
from repro.core.types import Value


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One measured execution."""

    algorithm: str
    n: int
    t: int
    params: tuple[tuple[str, object], ...]
    adversary: str
    value: Value
    messages: int
    signatures: int
    phases_used: int
    phases_configured: int
    message_bound: int | None
    agreement_ok: bool

    def param(self, key: str, default: object = None) -> object:
        return dict(self.params).get(key, default)

    def as_row(self) -> dict[str, object]:
        """Flatten the point into a table row.

        Sweep params are appended as extra columns.  A param whose name
        collides with a base column (e.g. a grid swept over ``"n"``) is
        prefixed with ``param_`` — repeatedly, until the name is free —
        instead of silently overwriting the measured value.  Float axes
        (``eps``, ``coin_bias``) land verbatim; they are never folded into
        a string here, so CSV/JSON export keeps their exact value.
        """
        row: dict[str, object] = {
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "adversary": self.adversary,
            "value": self.value,
            "messages": self.messages,
            "signatures": self.signatures,
            "phases": self.phases_configured,
            "bound": self.message_bound,
            "ok": self.agreement_ok,
        }
        for key, value in self.params:
            column = key
            while column in row:
                column = f"param_{column}"
            row[column] = value
        return row


def measure(
    algorithm: AgreementAlgorithm,
    value: Value,
    adversary: Adversary | None = None,
    *,
    adversary_name: str = "fault-free",
    params: Mapping[str, object] | None = None,
    record_history: bool = False,
    sinks: tuple = (),
) -> SweepPoint:
    """Run one scenario and condense it into a :class:`SweepPoint`.

    *sinks* (``repro.obs`` event sinks) are forwarded to the runner so
    sweeps can opt into per-scenario traces; the default keeps the
    un-instrumented fast path.
    """
    result = run(
        algorithm, value, adversary, record_history=record_history, sinks=sinks
    )
    # Family-aware: exact BA for the zoo, ε-agreement / randomized
    # conditions for the workloads — float-ε sweep grids judge the right
    # predicate instead of demanding bit-equality of float decisions.
    report = check_run_conditions(result, algorithm)
    return SweepPoint(
        algorithm=algorithm.name,
        n=algorithm.n,
        t=algorithm.t,
        params=tuple(sorted((params or {}).items())),
        adversary=adversary_name,
        value=value,
        messages=result.metrics.messages_by_correct,
        signatures=result.metrics.signatures_by_correct,
        phases_used=result.metrics.last_active_phase,
        phases_configured=algorithm.num_phases(),
        message_bound=algorithm.upper_bound_messages(),
        agreement_ok=report.ok,
    )


def sweep(
    configurations: Iterable[tuple[Mapping[str, object], Callable[[], AgreementAlgorithm]]],
    values: Iterable[Value] = (0, 1),
    adversaries: Iterable[tuple[str, Callable[[AgreementAlgorithm], Adversary | None]]] = (
        ("fault-free", lambda _: None),
    ),
) -> list[SweepPoint]:
    """Cartesian sweep: configurations × adversaries × values."""
    points: list[SweepPoint] = []
    adversaries = list(adversaries)
    values = list(values)
    for params, factory in configurations:
        for adversary_name, adversary_factory in adversaries:
            for value in values:
                algorithm = factory()
                points.append(
                    measure(
                        algorithm,
                        value,
                        adversary_factory(algorithm),
                        adversary_name=adversary_name,
                        params=params,
                    )
                )
    return points


#: Fields of :class:`SweepPoint` that :func:`worst_case` may maximise.
WORST_CASE_KEYS = frozenset(
    f.name for f in fields(SweepPoint) if f.name not in ("params",)
)


def worst_case(points: Iterable[SweepPoint], key: str = "messages") -> SweepPoint:
    """The point maximising *key* — the paper's bounds are worst-case.

    *key* must name a :class:`SweepPoint` field; besides the default
    ``"messages"``, the bound-relevant choices are ``"signatures"`` (the
    Theorem 1 cost measure) and ``"phases_used"`` (the trade-off axis).
    An unknown key raises :class:`ValueError`.
    """
    if key not in WORST_CASE_KEYS:
        raise ValueError(
            f"unknown worst_case key {key!r}; expected one of "
            f"{sorted(WORST_CASE_KEYS)}"
        )
    points = list(points)
    if not points:
        raise ValueError("no sweep points")
    return max(points, key=lambda p: getattr(p, key))
