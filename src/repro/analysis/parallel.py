"""Parallel sweep executor: the same scenario grids, across processes.

The paper's claims are worst-case counts over ``(n, t, s, α)`` grids, so
the repo's empirical reach is bounded by how many scenarios it can run per
second.  Scenarios are embarrassingly parallel — every
:class:`~repro.analysis.sweep.SweepPoint` is a pure function of its
scenario spec — so :func:`sweep_parallel` fans a grid out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and still returns the
*exact* point stream the serial :func:`~repro.analysis.sweep.sweep` would
produce, in the same deterministic order.

Requirements for the parallel path (``workers > 1``):

* factories must be picklable — module-level callables, classes, or
  :func:`functools.partial` over them (the algorithm registry and every
  algorithm class qualify); closures and lambdas are not, and are rejected
  with a clear error before any process is spawned;
* the fault-free adversary is spelled ``None`` (not a lambda returning
  ``None``).

``workers=1`` is a guaranteed-serial fallback that never pickles anything,
so it accepts the same lambdas :func:`~repro.analysis.sweep.sweep` does.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Protocol, Sequence, TypeVar

from repro.adversary.base import Adversary
from repro.analysis.sweep import SweepPoint, measure
from repro.core.protocol import AgreementAlgorithm
from repro.core.types import Value

#: Builds a fresh, configured algorithm instance (one per measurement).
AlgorithmFactory = Callable[[], AgreementAlgorithm]
#: Builds the adversary for one measurement; ``None`` means fault-free.
AdversaryFactory = Callable[[AgreementAlgorithm], "Adversary | None"]

#: The default adversary axis: a single fault-free column.
FAULT_FREE: tuple[tuple[str, AdversaryFactory | None], ...] = (("fault-free", None),)

#: Environment knob consulted when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One picklable scenario: everything needed to produce one point."""

    params: tuple[tuple[str, object], ...]
    factory: AlgorithmFactory
    adversary_name: str
    adversary_factory: AdversaryFactory | None
    value: Value
    #: Opt-in observability: when set, the scenario's run is traced into a
    #: deterministically named ``repro-trace/1`` JSONL file under this
    #: directory (a plain string so the spec stays picklable).
    trace_dir: str | None = None

    def trace_file_name(self, algorithm_name: str) -> str:
        """Deterministic, filesystem-safe trace name for this scenario."""
        parts = [algorithm_name]
        parts.extend(f"{key}{value}" for key, value in self.params)
        parts.append(self.adversary_name)
        parts.append(f"v{self.value}")
        stem = "-".join(parts)
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in stem)
        return f"{safe}.jsonl"

    def run(self) -> SweepPoint:
        """Execute the scenario (fresh algorithm instance, fresh run)."""
        algorithm = self.factory()
        adversary = (
            self.adversary_factory(algorithm)
            if self.adversary_factory is not None
            else None
        )
        if self.trace_dir is None:
            return measure(
                algorithm,
                self.value,
                adversary,
                adversary_name=self.adversary_name,
                params=dict(self.params),
            )
        from pathlib import Path

        from repro.obs import JsonlTraceSink

        directory = Path(self.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        with JsonlTraceSink(directory / self.trace_file_name(algorithm.name)) as sink:
            return measure(
                algorithm,
                self.value,
                adversary,
                adversary_name=self.adversary_name,
                params=dict(self.params),
                sinks=(sink,),
            )


def expand(
    configurations: Iterable[tuple[Mapping[str, object], AlgorithmFactory]],
    values: Iterable[Value] = (0, 1),
    adversaries: Iterable[tuple[str, AdversaryFactory | None]] = FAULT_FREE,
    *,
    trace_dir: str | None = None,
) -> list[ScenarioSpec]:
    """Flatten a cartesian grid into scenario specs.

    The nesting order (configurations → adversaries → values) matches
    :func:`~repro.analysis.sweep.sweep` exactly, so running the specs in
    list order reproduces the serial point stream.  *trace_dir* opts every
    scenario into a per-run JSONL trace (see :class:`ScenarioSpec`).
    """
    adversaries = list(adversaries)
    values = list(values)
    return [
        ScenarioSpec(
            params=tuple(sorted(params.items())),
            factory=factory,
            adversary_name=adversary_name,
            adversary_factory=adversary_factory,
            value=value,
            trace_dir=trace_dir,
        )
        for params, factory in configurations
        for adversary_name, adversary_factory in adversaries
        for value in values
    ]


class Task(Protocol):
    """Anything with a zero-argument ``run()`` — the pool's unit of work."""

    def run(self) -> object: ...


_TaskT = TypeVar("_TaskT", bound=Task)


def _run_chunk(tasks: Sequence[Task]) -> list[object]:
    """Worker entry point: execute one chunk of tasks in order."""
    return [task.run() for task in tasks]


def default_workers() -> int:
    """Worker count when none is given: ``$REPRO_SWEEP_WORKERS`` or the
    machine's CPU count."""
    configured = os.environ.get(WORKERS_ENV, "").strip()
    if configured:
        return max(1, int(configured))
    return os.cpu_count() or 1


def _ensure_picklable(tasks: Sequence[Task]) -> None:
    try:
        pickle.dumps(list(tasks))
    except Exception as error:
        raise ValueError(
            "run_tasks(workers>1) needs picklable tasks: use module-level "
            "callables, algorithm classes or functools.partial as factories "
            "(not lambdas/closures), and spell the fault-free adversary as "
            f"None; pickling failed with: {error!r}"
        ) from error


def _chunked(tasks: Sequence[_TaskT], size: int) -> list[Sequence[_TaskT]]:
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


def run_tasks(
    tasks: Sequence[Task],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list:
    """Execute *tasks* (anything with a picklable ``.run()``) in order.

    The generic engine behind :func:`run_specs` — the fuzz campaign reuses
    it with :class:`~repro.fuzz.campaign.FuzzCase` tasks.  The returned
    list is identical (element-wise equal, same order) to
    ``[task.run() for task in tasks]`` regardless of *workers* and
    *chunk_size* — chunks preserve submission order and results are
    concatenated in that order.
    """
    tasks = list(tasks)
    workers = default_workers() if workers is None else max(1, workers)
    workers = min(workers, len(tasks)) if tasks else 1
    if workers <= 1 or len(tasks) <= 1:
        return _run_chunk(tasks)
    _ensure_picklable(tasks)
    if chunk_size is None:
        # A few chunks per worker keeps the pool busy when scenario costs
        # are uneven (large-n points dwarf small-n ones) without drowning
        # the run in inter-process traffic.
        chunk_size = max(1, -(-len(tasks) // (workers * 4)))
    chunks = _chunked(tasks, max(1, chunk_size))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return [result for chunk in pool.map(_run_chunk, chunks) for result in chunk]


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[SweepPoint]:
    """Execute sweep *specs* in grid order (see :func:`run_tasks`)."""
    return run_tasks(specs, workers=workers, chunk_size=chunk_size)


def sweep_parallel(
    configurations: Iterable[tuple[Mapping[str, object], AlgorithmFactory]],
    values: Iterable[Value] = (0, 1),
    adversaries: Iterable[tuple[str, AdversaryFactory | None]] = FAULT_FREE,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    trace_dir: str | None = None,
) -> list[SweepPoint]:
    """Drop-in parallel :func:`~repro.analysis.sweep.sweep`.

    Same grid semantics and point order as ``sweep``; *workers* defaults to
    :func:`default_workers` (clamped to the grid size), ``workers=1`` runs
    serially in-process.  *trace_dir* opts every scenario into a per-run
    ``repro-trace/1`` JSONL file under that directory (traces are written
    by the worker that executes the scenario; names are deterministic, so
    the file set is identical for any worker count).
    """
    return run_specs(
        expand(configurations, values, adversaries, trace_dir=trace_dir),
        workers=workers,
        chunk_size=chunk_size,
    )
