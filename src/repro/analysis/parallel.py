"""Parallel sweep executor: the same scenario grids, across processes.

The paper's claims are worst-case counts over ``(n, t, s, α)`` grids, so
the repo's empirical reach is bounded by how many scenarios it can run per
second.  Scenarios are embarrassingly parallel — every
:class:`~repro.analysis.sweep.SweepPoint` is a pure function of its
scenario spec — so :func:`sweep_parallel` fans a grid out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and still returns the
*exact* point stream the serial :func:`~repro.analysis.sweep.sweep` would
produce, in the same deterministic order.

Requirements for the parallel path (``workers > 1``):

* factories must be picklable — module-level callables, classes, or
  :func:`functools.partial` over them (the algorithm registry and every
  algorithm class qualify); closures and lambdas are not, and are rejected
  with a clear error before any process is spawned;
* the fault-free adversary is spelled ``None`` (not a lambda returning
  ``None``).

``workers=1`` is a guaranteed-serial fallback that never pickles anything,
so it accepts the same lambdas :func:`~repro.analysis.sweep.sweep` does.

The engine is *self-healing*: long grids survive wedged or killed workers.
Each chunk gets a deadline (``task_timeout`` × chunk length), failed
chunks are retried with exponential backoff, a broken or timed-out pool
is torn down (stuck workers terminated best-effort) and rebuilt, and a
chunk that exhausts its retries falls back to a serial in-process run —
so a transient fault costs a retry, while a deterministic task bug still
surfaces with its real traceback.  An optional ``checkpoint`` file
persists finished chunks (pickle frames behind a fingerprinted header),
letting an interrupted sweep or fuzz campaign resume instead of starting
over; a corrupt tail costs only the partial frame.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Protocol, Sequence, TypeVar

from repro.adversary.base import Adversary
from repro.analysis.sweep import SweepPoint, measure
from repro.core.protocol import AgreementAlgorithm
from repro.core.types import Value

#: Builds a fresh, configured algorithm instance (one per measurement).
AlgorithmFactory = Callable[[], AgreementAlgorithm]
#: Builds the adversary for one measurement; ``None`` means fault-free.
AdversaryFactory = Callable[[AgreementAlgorithm], "Adversary | None"]

#: The default adversary axis: a single fault-free column.
FAULT_FREE: tuple[tuple[str, AdversaryFactory | None], ...] = (("fault-free", None),)

#: Environment knob consulted when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One picklable scenario: everything needed to produce one point."""

    params: tuple[tuple[str, object], ...]
    factory: AlgorithmFactory
    adversary_name: str
    adversary_factory: AdversaryFactory | None
    value: Value
    #: Opt-in observability: when set, the scenario's run is traced into a
    #: deterministically named ``repro-trace/1`` JSONL file under this
    #: directory (a plain string so the spec stays picklable).
    trace_dir: str | None = None

    def trace_file_name(self, algorithm_name: str) -> str:
        """Deterministic, filesystem-safe trace name for this scenario.

        Float params (``eps``, ``coin_bias``) use ``repr`` — Python's
        shortest round-trip form — so ``0.25`` names the file ``eps0.25``
        on every platform.  When sanitization is lossy (a param value
        containing ``/`` or spaces), a short digest of the unsanitized
        stem is appended: two distinct scenarios can never silently share
        one trace file.
        """
        parts = [algorithm_name]
        parts.extend(
            f"{key}{value!r}" if isinstance(value, float) else f"{key}{value}"
            for key, value in self.params
        )
        parts.append(self.adversary_name)
        parts.append(f"v{self.value}")
        stem = "-".join(parts)
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in stem)
        if safe != stem:
            import hashlib

            digest = hashlib.sha256(stem.encode("utf-8")).hexdigest()[:8]
            safe = f"{safe}-{digest}"
        return f"{safe}.jsonl"

    def run(self) -> SweepPoint:
        """Execute the scenario (fresh algorithm instance, fresh run)."""
        algorithm = self.factory()
        adversary = (
            self.adversary_factory(algorithm)
            if self.adversary_factory is not None
            else None
        )
        if self.trace_dir is None:
            return measure(
                algorithm,
                self.value,
                adversary,
                adversary_name=self.adversary_name,
                params=dict(self.params),
            )
        from pathlib import Path

        from repro.obs import JsonlTraceSink

        directory = Path(self.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        with JsonlTraceSink(directory / self.trace_file_name(algorithm.name)) as sink:
            return measure(
                algorithm,
                self.value,
                adversary,
                adversary_name=self.adversary_name,
                params=dict(self.params),
                sinks=(sink,),
            )


def expand(
    configurations: Iterable[tuple[Mapping[str, object], AlgorithmFactory]],
    values: Iterable[Value] = (0, 1),
    adversaries: Iterable[tuple[str, AdversaryFactory | None]] = FAULT_FREE,
    *,
    trace_dir: str | None = None,
) -> list[ScenarioSpec]:
    """Flatten a cartesian grid into scenario specs.

    The nesting order (configurations → adversaries → values) matches
    :func:`~repro.analysis.sweep.sweep` exactly, so running the specs in
    list order reproduces the serial point stream.  *trace_dir* opts every
    scenario into a per-run JSONL trace (see :class:`ScenarioSpec`).
    """
    adversaries = list(adversaries)
    values = list(values)
    return [
        ScenarioSpec(
            params=tuple(sorted(params.items())),
            factory=factory,
            adversary_name=adversary_name,
            adversary_factory=adversary_factory,
            value=value,
            trace_dir=trace_dir,
        )
        for params, factory in configurations
        for adversary_name, adversary_factory in adversaries
        for value in values
    ]


class Task(Protocol):
    """Anything with a zero-argument ``run()`` — the pool's unit of work."""

    def run(self) -> object: ...


_TaskT = TypeVar("_TaskT", bound=Task)


def _run_chunk(tasks: Sequence[Task]) -> list[object]:
    """Worker entry point: execute one chunk of tasks in order."""
    return [task.run() for task in tasks]


def default_workers() -> int:
    """Worker count when none is given: ``$REPRO_SWEEP_WORKERS`` or the
    machine's CPU count."""
    configured = os.environ.get(WORKERS_ENV, "").strip()
    if configured:
        return max(1, int(configured))
    return os.cpu_count() or 1


def _ensure_picklable(tasks: Sequence[Task]) -> None:
    try:
        pickle.dumps(list(tasks))
    except Exception as error:
        raise ValueError(
            "run_tasks(workers>1) needs picklable tasks: use module-level "
            "callables, algorithm classes or functools.partial as factories "
            "(not lambdas/closures), and spell the fault-free adversary as "
            f"None; pickling failed with: {error!r}"
        ) from error


def _chunked(tasks: Sequence[_TaskT], size: int) -> list[Sequence[_TaskT]]:
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


#: Version tag in every checkpoint file's header frame.
CHECKPOINT_MAGIC = "repro-checkpoint/1"


def _fingerprint(tasks: Sequence[Task], chunk_size: int) -> str:
    """Identity of one (task list, chunking) pair.

    Resuming is only sound when the chunks of this run are byte-identical
    to the ones the checkpoint was written for — the frames are keyed by
    chunk index.  Any change to the tasks or the chunking gets a fresh
    fingerprint and the stale file is discarded wholesale.
    """
    blob = pickle.dumps((list(tasks), int(chunk_size)))
    return hashlib.sha256(blob).hexdigest()


class SweepCheckpoint:
    """Resumable ledger of finished chunks (pickle frames on disk).

    Layout: one header frame ``{"magic", "fingerprint"}`` followed by one
    ``(chunk_index, results)`` frame per finished chunk, appended and
    flushed as chunks complete.  :meth:`open` loads whatever frames a
    previous (interrupted) run managed to write — a corrupt or truncated
    tail is tolerated, costing only the partial frame — then rewrites the
    file from the surviving frames so later appends land on a clean tail.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        #: chunk index -> that chunk's result list, loaded by :meth:`open`.
        self.completed: dict[int, list] = {}
        self._handle = None

    def open(self) -> None:
        """Load prior progress (if compatible) and start a clean file."""
        self.completed = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "wb")
        pickle.dump(
            {"magic": CHECKPOINT_MAGIC, "fingerprint": self.fingerprint},
            self._handle,
        )
        for index in sorted(self.completed):
            pickle.dump((index, self.completed[index]), self._handle)
        self._handle.flush()

    def _load(self) -> dict[int, list]:
        completed: dict[int, list] = {}
        try:
            handle = open(self.path, "rb")
        except OSError:
            return completed
        with handle:
            try:
                header = pickle.load(handle)
            except Exception:
                return completed
            if (
                not isinstance(header, dict)
                or header.get("magic") != CHECKPOINT_MAGIC
                or header.get("fingerprint") != self.fingerprint
            ):
                return completed
            while True:
                try:
                    index, results = pickle.load(handle)
                    completed[int(index)] = list(results)
                except EOFError:
                    break
                except Exception:
                    # Corrupt tail (the writer died mid-frame): keep every
                    # frame read so far, drop the rest.
                    break
        return completed

    def record(self, index: int, results: list) -> None:
        """Append one finished chunk and flush it to disk."""
        assert self._handle is not None, "open() before record()"
        pickle.dump((index, list(results)), self._handle)
        self._handle.flush()

    def close(self, *, remove: bool = False) -> None:
        """Close the file; *remove* deletes it (the run completed)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if remove:
            try:
                self.path.unlink()
            except OSError:
                pass


def _rebuild_pool(
    pool: ProcessPoolExecutor, workers: int
) -> ProcessPoolExecutor:
    """Tear a suspect pool down (stuck workers terminated best-effort)
    and hand back a fresh one."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    return ProcessPoolExecutor(max_workers=workers)


def _run_chunks_parallel(
    chunks: Sequence[Sequence[Task]],
    pending: Sequence[int],
    results: dict[int, list],
    *,
    workers: int,
    task_timeout: float | None,
    max_retries: int,
    backoff: float,
    checkpoint: "SweepCheckpoint | None",
) -> None:
    """The self-healing harvest loop: fill ``results`` for *pending*."""
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {
            index: pool.submit(_run_chunk, chunks[index]) for index in pending
        }
        attempts = {index: 0 for index in pending}
        queue = list(pending)
        while queue:
            index = queue.pop(0)
            deadline = (
                task_timeout * len(chunks[index])
                if task_timeout is not None
                else None
            )
            try:
                chunk_results = futures[index].result(timeout=deadline)
            except Exception as error:
                attempts[index] += 1
                # A timeout means a worker is wedged mid-chunk; a broken
                # pool means one died.  Either way every in-flight future
                # is suspect: rebuild and resubmit the survivors.
                pool_suspect = isinstance(
                    error, (BrokenProcessPool, FutureTimeoutError)
                )
                if pool_suspect:
                    pool = _rebuild_pool(pool, workers)
                    for waiting in queue:
                        futures[waiting] = pool.submit(
                            _run_chunk, chunks[waiting]
                        )
                if attempts[index] > max_retries:
                    # Last resort: run the chunk here, in-process.  A
                    # transient fault heals; a real task bug raises with
                    # its true traceback instead of a pool autopsy.
                    chunk_results = _run_chunk(chunks[index])
                else:
                    time.sleep(backoff * (2 ** (attempts[index] - 1)))
                    futures[index] = pool.submit(_run_chunk, chunks[index])
                    queue.insert(0, index)
                    continue
            results[index] = chunk_results
            if checkpoint is not None:
                checkpoint.record(index, chunk_results)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    tasks: Sequence[Task],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.1,
    checkpoint: str | Path | None = None,
) -> list:
    """Execute *tasks* (anything with a picklable ``.run()``) in order.

    The generic engine behind :func:`run_specs` — the fuzz campaign reuses
    it with :class:`~repro.fuzz.campaign.FuzzCase` tasks.  The returned
    list is identical (element-wise equal, same order) to
    ``[task.run() for task in tasks]`` regardless of *workers* and
    *chunk_size* — chunks preserve submission order and results are
    concatenated in that order.

    Robustness knobs (see the module docstring):

    * *task_timeout* — per-task seconds; a chunk's deadline is the timeout
      times its length.  Expired chunks count as pool failures.  Only
      enforceable on the multi-process path (a serial run cannot interrupt
      itself), where workers can be terminated.
    * *max_retries* / *backoff* — how often a failed chunk is resubmitted,
      sleeping ``backoff * 2**(attempt-1)`` seconds in between; after the
      retries the chunk runs serially in-process (which surfaces real task
      bugs with their original traceback).
    * *checkpoint* — path to a resumable progress file: finished chunks
      are flushed as pickle frames, a rerun with identical tasks and
      chunking skips them, and the file is deleted when the run completes.
      Requires picklable tasks and results even for ``workers=1``.
    """
    tasks = list(tasks)
    workers = default_workers() if workers is None else max(1, workers)
    workers = min(workers, len(tasks)) if tasks else 1
    serial = workers <= 1 or len(tasks) <= 1
    if serial and checkpoint is None:
        return _run_chunk(tasks)
    _ensure_picklable(tasks)
    if chunk_size is None:
        # Serial checkpointing gets per-task granularity; the pool gets a
        # few chunks per worker — enough to keep it busy when scenario
        # costs are uneven (large-n points dwarf small-n ones) without
        # drowning the run in inter-process traffic.
        chunk_size = 1 if serial else max(1, -(-len(tasks) // (workers * 4)))
    chunk_size = max(1, chunk_size)
    chunks = _chunked(tasks, chunk_size)

    ledger: SweepCheckpoint | None = None
    results: dict[int, list] = {}
    if checkpoint is not None:
        ledger = SweepCheckpoint(checkpoint, _fingerprint(tasks, chunk_size))
        ledger.open()
        results.update(
            (index, rows)
            for index, rows in ledger.completed.items()
            if 0 <= index < len(chunks)
        )
    pending = [index for index in range(len(chunks)) if index not in results]
    try:
        if serial:
            for index in pending:
                results[index] = _run_chunk(chunks[index])
                if ledger is not None:
                    ledger.record(index, results[index])
        elif pending:
            _run_chunks_parallel(
                chunks,
                pending,
                results,
                workers=workers,
                task_timeout=task_timeout,
                max_retries=max_retries,
                backoff=backoff,
                checkpoint=ledger,
            )
    except BaseException:
        if ledger is not None:
            ledger.close(remove=False)
        raise
    if ledger is not None:
        ledger.close(remove=True)
    return [
        result for index in range(len(chunks)) for result in results[index]
    ]


def run_specs(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    checkpoint: str | Path | None = None,
) -> list[SweepPoint]:
    """Execute sweep *specs* in grid order (see :func:`run_tasks`)."""
    return run_tasks(
        specs,
        workers=workers,
        chunk_size=chunk_size,
        task_timeout=task_timeout,
        max_retries=max_retries,
        checkpoint=checkpoint,
    )


def sweep_parallel(
    configurations: Iterable[tuple[Mapping[str, object], AlgorithmFactory]],
    values: Iterable[Value] = (0, 1),
    adversaries: Iterable[tuple[str, AdversaryFactory | None]] = FAULT_FREE,
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    trace_dir: str | None = None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    checkpoint: str | Path | None = None,
    batch: bool = False,
    batch_strict: bool = False,
    shared_results: bool = False,
) -> list[SweepPoint]:
    """Drop-in parallel :func:`~repro.analysis.sweep.sweep`.

    Same grid semantics and point order as ``sweep``; *workers* defaults to
    :func:`default_workers` (clamped to the grid size), ``workers=1`` runs
    serially in-process.  *trace_dir* opts every scenario into a per-run
    ``repro-trace/1`` JSONL file under that directory (traces are written
    by the worker that executes the scenario; names are deterministic, so
    the file set is identical for any worker count).  *task_timeout*,
    *max_retries* and *checkpoint* are the self-healing knobs of
    :func:`run_tasks`.

    ``batch=True`` routes the grid through the batch engine
    (:mod:`repro.analysis.batchsweep`): same-factory scenarios share one
    arena, repeated run classes execute once, and workers run whole
    stripes instead of per-scenario chunks — same points, same order.
    *batch_strict* re-checks every unique batch run against the scalar
    runner; *shared_results* (batch only) moves result counters through
    shared memory instead of pickling point lists.  *checkpoint* is
    incompatible with *batch* (stripes are not the chunk layout the
    checkpoint fingerprint covers).
    """
    if shared_results and not batch:
        raise ValueError("shared_results requires batch=True")
    specs = expand(configurations, values, adversaries, trace_dir=trace_dir)
    if batch:
        if checkpoint is not None:
            raise ValueError(
                "checkpoint is not supported with batch=True: batch stripes "
                "do not match the checkpoint's chunk fingerprinting"
            )
        from repro.analysis.batchsweep import run_specs_batched

        return run_specs_batched(
            specs,
            workers=workers,
            strict=batch_strict,
            shared_results=shared_results,
            task_timeout=task_timeout,
            max_retries=max_retries,
        )
    return run_specs(
        specs,
        workers=workers,
        chunk_size=chunk_size,
        task_timeout=task_timeout,
        max_retries=max_retries,
        checkpoint=checkpoint,
    )
