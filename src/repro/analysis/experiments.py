"""Programmatic runner for the paper's experiments E1–E12.

The benchmark suite under ``benchmarks/`` is the full-resolution version;
this module runs a fast pass of every experiment and returns one
:class:`~repro.analysis.report.ExperimentReport` — the table EXPERIMENTS.md
is built from, available to library users and the ``python -m repro
experiments`` CLI command.

Each ``experiment_*`` function is independent and returns the records it
appended, so callers can run a single experiment cheaply.

The grid-shaped experiments (E7, E9, E10, E11, E12) execute through
:func:`repro.analysis.parallel.sweep_parallel`, so they use every core by
default; set ``REPRO_SWEEP_WORKERS=1`` to force serial execution.
"""

from __future__ import annotations

from functools import partial

from repro.adversary.standard import SilentAdversary
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm4 import Algorithm4, check_lemma2
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages
from repro.analysis.parallel import sweep_parallel
from repro.analysis.report import ExperimentReport
from repro.bounds import formulas
from repro.bounds.theorem1 import theorem1_experiment
from repro.bounds.theorem2 import theorem2_experiment
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def experiment_e1(report: ExperimentReport) -> None:
    """Theorem 1: signature budgets plus the splitting attack."""
    t1 = theorem1_experiment(lambda: DolevStrong(10, 2))
    report.add(
        "E1 / Theorem 1",
        "every processor exchanges ≥ t+1 signatures; total ≥ n(t+1)/4",
        "dolev-strong, n=10, t=2, fault-free H and G",
        f"min |A(p)| = {t1.min_exchange} ≥ 3; sigs H+G = "
        f"{t1.signatures_h + t1.signatures_g} ≥ {float(t1.bound):g}",
        not t1.weak_processors and t1.bound_respected,
    )
    attack = theorem1_experiment(lambda: UnderSigningBroadcast(6, 2)).attack
    report.add(
        "E1 / Theorem 1 (attack)",
        "an under-signing algorithm is split by corrupting A(p)",
        "strawman, n=6, t=2",
        f"pH' == pH: {attack.target_view_matches_h}; agreement broken: "
        f"{attack.agreement_violated}",
        attack is not None
        and attack.target_view_matches_h
        and attack.agreement_violated,
    )


def experiment_e2(report: ExperimentReport) -> None:
    """Corollary 1: the unauthenticated message bound."""
    n, t = 7, 2
    result = run(OralMessages(n, t), 1)
    bound = float(formulas.corollary1_message_lower_bound(n, t))
    report.add(
        "E2 / Corollary 1",
        "unauthenticated algorithms send ≥ n(t+1)/4 messages",
        f"oral-messages, n={n}, t={t}",
        f"{result.metrics.messages_by_correct} ≥ {bound:g}, 0 signatures",
        result.metrics.messages_by_correct >= bound
        and result.metrics.signatures_by_correct == 0,
    )


def experiment_e3(report: ExperimentReport) -> None:
    """Theorem 2: the message bound, B-set feeding, and the switch attack."""
    t2 = theorem2_experiment(lambda: Algorithm1(9, 4))
    report.add(
        "E3 / Theorem 2",
        "messages ≥ max{⌈(n−1)/2⌉, ⌊1+t/2⌋⌈1+t/2⌉}; B fed ≥ ⌈1+t/2⌉ each",
        "algorithm-1, n=9, t=4, ignore-first adversary on B",
        f"fault-free {t2.fault_free_messages} ≥ {t2.bound}; min fed "
        f"{t2.min_received} ≥ {t2.per_member_requirement}",
        t2.fault_free_messages >= t2.bound and not t2.starvable,
    )
    attack = theorem2_experiment(lambda: UnderSigningBroadcast(8, 2)).attack
    report.add(
        "E3 / Theorem 2 (attack)",
        "a starvable algorithm is broken by the switch history H''",
        "strawman, n=8, t=2",
        f"target received {attack.target_messages_received}; agreement "
        f"broken: {attack.agreement_violated}",
        attack is not None and attack.agreement_violated,
    )


def experiment_e4(report: ExperimentReport) -> None:
    """Theorem 3: Algorithm 1's exact bound."""
    t = 4
    result = run(Algorithm1(2 * t + 1, t), 1)
    bound = formulas.theorem3_message_upper_bound(t)
    report.add(
        "E4 / Theorem 3",
        "Algorithm 1: t+2 phases, ≤ 2t²+2t messages",
        f"n={2 * t + 1}, t={t}, fault-free value 1 (the worst case)",
        f"{result.metrics.messages_by_correct} == {bound} (attained exactly)",
        result.metrics.messages_by_correct == bound
        and check_byzantine_agreement(result).ok,
    )


def experiment_e5(report: ExperimentReport) -> None:
    """Theorem 4: Algorithm 2's exact bound and proof possession."""
    t = 3
    result = run(Algorithm2(2 * t + 1, t), 1)
    bound = formulas.theorem4_message_upper_bound(t)
    proofs = all(p.has_agreement_proof() for p in result.processors.values())
    report.add(
        "E5 / Theorem 4",
        "Algorithm 2: 3t+3 phases, ≤ 5t²+5t messages, everyone holds a proof",
        f"n={2 * t + 1}, t={t}, fault-free value 1",
        f"{result.metrics.messages_by_correct} == {bound}; proofs: {proofs}",
        result.metrics.messages_by_correct == bound and proofs,
    )


def experiment_e6(report: ExperimentReport) -> None:
    """Lemma 1: Algorithm 3 under faulty roots."""
    n, t, s = 30, 2, 3
    algorithm = Algorithm3(n, t, s=s)
    roots = [cs.root for cs in algorithm.sets[:t]]
    result = run(algorithm, 1, SilentAdversary(roots))
    bound = formulas.lemma1_message_upper_bound(n, t, s)
    report.add(
        "E6 / Lemma 1",
        "Algorithm 3: ≤ 2n + 4tn/s + 3t²s messages (faulty-root worst case)",
        f"n={n}, t={t}, s={s}, t silent roots",
        f"{result.metrics.messages_by_correct} ≤ {bound}",
        result.metrics.messages_by_correct <= bound
        and check_byzantine_agreement(result).ok,
    )


def experiment_e7(report: ExperimentReport) -> None:
    """Theorem 5: linearity in n at s = 4t."""
    t = 2
    points = sweep_parallel(
        [({"n": n}, partial(Algorithm3, n, t)) for n in (60, 240)],
        values=(1,),
    )
    counts = {p.n: p.messages for p in points}
    marginal = (counts[240] - counts[60]) / 180
    report.add(
        "E7 / Theorem 5",
        "Algorithm 3 at s = 4t sends O(n + t³) messages",
        f"t={t}, n ∈ {{60, 240}}",
        f"marginal cost {marginal:.2f} msgs/processor (flat in n)",
        marginal <= 4.0,
    )


def experiment_e8(report: ExperimentReport) -> None:
    """Theorem 6 / Lemma 2: the grid exchange."""
    m, t = 4, 2
    algorithm = Algorithm4(m, t, {pid: ("v", pid) for pid in range(16)})
    result = run(algorithm, 0, SilentAdversary([0, 1]))
    p_set, violations = check_lemma2(result, algorithm)
    report.add(
        "E8 / Theorem 6",
        "N=m² exchange: ≤ 3(m−1)m² messages, ≥ N−2t fully succeed",
        f"m={m}, t={t}, faults packed into one row",
        f"|P| = {len(p_set)} ≥ {16 - 2 * t}; violations: {len(violations)}",
        not violations,
    )


def experiment_e9(report: ExperimentReport) -> None:
    """Lemma 5 / Theorem 7: Algorithm 5's scales."""
    t = 2
    alpha = Algorithm5(60, t).alpha
    points = sweep_parallel(
        [({"n": n}, partial(Algorithm5, n, t)) for n in (alpha + 30, alpha + 90)],
        values=(1,),
    )
    ratios = [p.messages / formulas.theorem7_message_scale(p.n, t) for p in points]
    report.add(
        "E9 / Theorem 7",
        "Algorithm 5 at s = t sends O(n + t²) messages",
        f"t={t}, n ∈ {{{alpha + 30}, {alpha + 90}}}",
        f"messages/(n+t²) = {ratios[0]:.1f} → {ratios[1]:.1f} (non-increasing)",
        ratios[1] <= ratios[0] + 0.5,
    )


def experiment_e10(report: ExperimentReport) -> None:
    """The introduction's trade-off."""
    t, n = 2, 80
    points = [
        (p.phases_configured, p.messages)
        for p in sweep_parallel(
            [({"s": s}, partial(Algorithm5, n, t, s=s)) for s in (1, 7)],
            values=(1,),
        )
    ]
    report.add(
        "E10 / trade-off",
        "more phases buy fewer messages (s sweep)",
        f"algorithm-5, n={n}, t={t}, s ∈ {{1, 7}}",
        f"(phases, msgs): {points[0]} → {points[1]}",
        points[1][0] > points[0][0] and points[1][1] < points[0][1],
    )


def experiment_e11(report: ExperimentReport) -> None:
    """The Section 1 comparison ordering."""
    n, t = 60, 2
    grid = [
        ({"family": name}, partial(build, n, t))
        for name, build in (
            ("oral", OralMessages),
            ("ds", DolevStrong),
            ("active", ActiveSetBroadcast),
            ("a3", Algorithm3),
        )
    ]
    messages = {
        p.param("family"): p.messages for p in sweep_parallel(grid, values=(1,))
    }
    ordered = (
        messages["a3"] < messages["active"] < messages["ds"] < messages["oral"]
    )
    report.add(
        "E11 / comparison",
        "algorithm-3 < active-set < dolev-strong < OM(t) in messages",
        f"n={n}, t={t}, fault-free",
        f"{messages['a3']} < {messages['active']} < {messages['ds']} < "
        f"{messages['oral']}",
        ordered,
    )


def experiment_e12(report: ExperimentReport) -> None:
    """The informing ablation: chains beat fan-outs fault-free."""
    from repro.algorithms.informed import InformedAlgorithm2

    n, t = 60, 2
    grid = [
        ({"strategy": name}, partial(build, n, t))
        for name, build in (
            ("chain", Algorithm3),
            ("proof", InformedAlgorithm2),
            ("direct", ActiveSetBroadcast),
        )
    ]
    by_strategy = {
        p.param("strategy"): p.messages for p in sweep_parallel(grid, values=(1,))
    }
    chain, proof, direct = (
        by_strategy["chain"],
        by_strategy["proof"],
        by_strategy["direct"],
    )
    report.add(
        "E12 / ablation",
        "informing strategies: chains < proof fan-out < direct fan-out",
        f"n={n}, t={t}, fault-free",
        f"{chain} < {proof} < {direct}",
        chain < proof < direct,
    )


ALL_EXPERIMENTS = [
    experiment_e1,
    experiment_e2,
    experiment_e3,
    experiment_e4,
    experiment_e5,
    experiment_e6,
    experiment_e7,
    experiment_e8,
    experiment_e9,
    experiment_e10,
    experiment_e11,
    experiment_e12,
]


def run_all_experiments() -> ExperimentReport:
    """One fast pass over every experiment; see ``benchmarks/`` for the
    full-resolution sweeps."""
    report = ExperimentReport()
    for experiment in ALL_EXPERIMENTS:
        experiment(report)
    return report
