"""JSON export of runs, sweeps, and experiment reports.

Downstream analysis (plotting, regression tracking, spreadsheets) wants
machine-readable output; this module serialises the library's result
objects to plain JSON-compatible dicts and files.  Payload contents are
rendered as reprs — the numbers (counts, phases, decisions) are the data
of record, not the message bodies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.report import ExperimentReport
from repro.analysis.sweep import SweepPoint
from repro.core.runner import RunResult


def run_to_dict(result: RunResult) -> dict:
    """A JSON-compatible summary of one run."""
    return {
        "algorithm": result.algorithm_name,
        "n": result.n,
        "t": result.t,
        "transmitter": result.transmitter,
        "input_value": repr(result.input_value),
        "faulty": sorted(result.faulty),
        "decisions": {str(pid): repr(v) for pid, v in result.decisions.items()},
        "metrics": {
            **result.metrics.summary(),
            "messages_per_phase": {
                str(k): v for k, v in sorted(result.metrics.messages_per_phase.items())
            },
            "signatures_per_phase": {
                str(k): v
                for k, v in sorted(result.metrics.signatures_per_phase.items())
            },
            "sent_per_processor": {
                str(k): v for k, v in sorted(result.metrics.sent_per_processor.items())
            },
        },
    }


def sweep_to_dicts(points: Iterable[SweepPoint]) -> list[dict]:
    """JSON-compatible rows for a sweep."""
    rows = []
    for point in points:
        row = point.as_row()
        row["value"] = repr(row["value"])
        rows.append(row)
    return rows


def report_to_dict(report: ExperimentReport) -> dict:
    """JSON-compatible form of an experiment report."""
    return {
        "all_hold": report.all_hold,
        "records": [record.as_row() for record in report.records],
    }


def write_json(data: object, path: str | Path) -> Path:
    """Write *data* as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def read_json(path: str | Path) -> object:
    """Load previously exported JSON."""
    return json.loads(Path(path).read_text())
