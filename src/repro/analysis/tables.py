"""Plain-text table rendering for benchmark output and EXPERIMENTS.md.

No dependency on any plotting stack — the paper's evaluation is tabular
(worst-case counts), so the reproduction's outputs are tables too.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned monospace table.

    Column order follows *columns* when given, else the keys of the first
    row.  Values render via ``str``; ``None`` renders as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(row: Mapping[str, object], col: str) -> str:
        """Format one value for its column."""
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[cell(row, col) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "  ".join("-" * widths[i] for i in range(len(cols)))
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(cols))) for r in rendered
    )
    table = f"{header}\n{rule}\n{body}"
    return f"{title}\n{table}" if title else table


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """The same rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(row: Mapping[str, object], col: str) -> str:
        """Format one value for its column."""
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    lines = [
        "| " + " | ".join(cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(row, c) for c in cols) + " |")
    return "\n".join(lines)


def ratio_series(
    rows: Iterable[Mapping[str, object]],
    numerator: str,
    denominator: str,
) -> list[float]:
    """Per-row ``numerator / denominator`` — used to check O-bounds: the
    series must stay bounded as the swept parameter grows."""
    out: list[float] = []
    for row in rows:
        denom = row[denominator]
        out.append(float(row[numerator]) / float(denom) if denom else float("inf"))
    return out
