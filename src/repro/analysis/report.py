"""Paper-vs-measured experiment records (the EXPERIMENTS.md backbone).

Each benchmark produces :class:`ExperimentRecord` rows: the paper's claim,
what we measured, and whether the claim's *shape* holds.  ``shape_holds``
is the honest criterion for worst-case/asymptotic claims — exact constants
are testbed-dependent, but who wins, by what growth order, and where the
crossovers fall must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.tables import format_markdown_table


@dataclass(slots=True)
class ExperimentRecord:
    """One paper-claim-vs-measurement row."""

    experiment: str  # e.g. "E4 / Theorem 3"
    claim: str  # the paper's statement
    setup: str  # workload and parameters
    measured: str  # what we observed
    holds: bool

    def as_row(self) -> dict[str, object]:
        return {
            "experiment": self.experiment,
            "claim": self.claim,
            "setup": self.setup,
            "measured": self.measured,
            "holds": "yes" if self.holds else "NO",
        }


@dataclass(slots=True)
class ExperimentReport:
    """A collection of records with rendering helpers."""

    records: list[ExperimentRecord] = field(default_factory=list)

    def add(
        self, experiment: str, claim: str, setup: str, measured: str, holds: bool
    ) -> ExperimentRecord:
        record = ExperimentRecord(experiment, claim, setup, measured, holds)
        self.records.append(record)
        return record

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.records)

    def failing(self) -> Sequence[ExperimentRecord]:
        return [r for r in self.records if not r.holds]

    def to_markdown(self) -> str:
        return format_markdown_table([r.as_row() for r in self.records])

    def __str__(self) -> str:
        return self.to_markdown()
