"""Worst-case probing: search over adversary strategies.

The paper's upper bounds are worst-case over *all* t-faulty histories; the
benchmarks exercise hand-constructed worst cases (silent roots, packed
rows, equivocators).  This module adds breadth: it enumerates a structured
family of adversaries — silent/crash/garbage/randomized over systematic
and random fault placements — runs them all, and reports the costliest.

Used two ways:

* as evidence: probing Algorithm 3 with hundreds of adversaries and never
  exceeding Lemma 1's bound is a much stronger empirical statement than
  three scenarios;
* as a research tool: ``worst_case_probe(...)`` surfaces *which* fault
  placement maximises traffic, which is how the faulty-root scenarios in
  the benchmarks were found in the first place.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.adversary.base import Adversary
from repro.adversary.standard import (
    CrashAdversary,
    GarbageAdversary,
    RandomizedAdversary,
    SilentAdversary,
)
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import run
from repro.core.types import Value
from repro.core.validation import check_byzantine_agreement

AlgorithmFactory = Callable[[], AgreementAlgorithm]


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Outcome of one probed scenario."""

    adversary: str
    faulty: tuple[int, ...]
    value: Value
    messages: int
    signatures: int
    agreement_ok: bool


def fault_placements(n: int, t: int, *, samples: int, rng: random.Random) -> Iterator[tuple[int, ...]]:
    """Systematic plus random fault placements of every size up to *t*.

    Systematic: prefixes, suffixes, and evenly spread sets — these hit the
    structured roles (transmitter, actives, roots, leaves) of every
    algorithm in the library.  Random: *samples* uniform subsets.
    """
    seen: set[tuple[int, ...]] = set()

    def emit(placement: Iterable[int]) -> Iterator[tuple[int, ...]]:
        """Record one explored scenario in the search log."""
        key = tuple(sorted(set(placement)))
        if key and key not in seen and len(key) <= t:
            seen.add(key)
            yield key

    for size in range(1, t + 1):
        yield from emit(range(size))  # transmitter + low ids
        yield from emit(range(1, size + 1))  # low ids, transmitter spared
        yield from emit(range(n - size, n))  # high ids (passives/leaves)
        stride = max(1, n // size)
        yield from emit(range(0, n, stride))  # spread
    for _ in range(samples):
        size = rng.randint(1, t)
        yield from emit(rng.sample(range(n), size))


def adversary_family(
    faulty: tuple[int, ...], rng: random.Random
) -> Iterator[tuple[str, Adversary]]:
    """The behaviours probed for one fault placement."""
    yield f"silent{list(faulty)}", SilentAdversary(faulty)
    crash_at = {pid: 2 + (i % 3) for i, pid in enumerate(faulty)}
    yield f"crash{crash_at}", CrashAdversary(crash_at)
    yield f"garbage{list(faulty)}", GarbageAdversary(faulty)
    seed = rng.randrange(2**31)
    yield f"random{list(faulty)}#{seed}", RandomizedAdversary(faulty, seed)


def probe(
    factory: AlgorithmFactory,
    *,
    values: Iterable[Value] = (0, 1),
    samples: int = 10,
    seed: int = 0,
) -> list[ProbeResult]:
    """Run the full probe grid against *factory*'s algorithm."""
    rng = random.Random(seed)
    reference = factory()
    results: list[ProbeResult] = []
    for value in values:
        results.append(_measure(factory, value, "fault-free", None, ()))
    for faulty in fault_placements(reference.n, reference.t, samples=samples, rng=rng):
        for value in values:
            for name, adversary in adversary_family(faulty, rng):
                results.append(_measure(factory, value, name, adversary, faulty))
    return results


def _measure(
    factory: AlgorithmFactory,
    value: Value,
    name: str,
    adversary: Adversary | None,
    faulty: tuple[int, ...],
) -> ProbeResult:
    result = run(factory(), value, adversary, record_history=False)
    report = check_byzantine_agreement(result)
    return ProbeResult(
        adversary=name,
        faulty=faulty,
        value=value,
        messages=result.metrics.messages_by_correct,
        signatures=result.metrics.signatures_by_correct,
        agreement_ok=report.ok,
    )


def worst_case_probe(
    factory: AlgorithmFactory,
    *,
    values: Iterable[Value] = (0, 1),
    samples: int = 10,
    seed: int = 0,
    key: str = "messages",
) -> tuple[ProbeResult, list[ProbeResult]]:
    """Probe and return ``(costliest scenario, all results)``.

    Raises :class:`AssertionError` if any probed scenario breaks agreement
    — a probe that finds a correctness bug should never pass silently.
    """
    results = probe(factory, values=values, samples=samples, seed=seed)
    broken = [r for r in results if not r.agreement_ok]
    if broken:
        raise AssertionError(
            f"probing broke agreement: {[(r.adversary, r.value) for r in broken[:5]]}"
        )
    worst = max(results, key=lambda r: getattr(r, key))
    return worst, results
