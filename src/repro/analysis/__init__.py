"""Sweeps, tables, and paper-vs-measured experiment reports."""

from repro.analysis.experiments import run_all_experiments
from repro.analysis.fitting import (
    LinearFit,
    PowerFit,
    crossover_point,
    fit_linear,
    fit_power,
    history_to_networkx,
)
from repro.analysis.export import (
    read_json,
    report_to_dict,
    run_to_dict,
    sweep_to_dicts,
    write_json,
)
from repro.analysis.parallel import (
    ScenarioSpec,
    default_workers,
    expand,
    run_specs,
    sweep_parallel,
)
from repro.analysis.report import ExperimentRecord, ExperimentReport
from repro.analysis.search import ProbeResult, probe, worst_case_probe
from repro.analysis.sweep import SweepPoint, measure, sweep, worst_case
from repro.analysis.tables import format_markdown_table, format_table, ratio_series
from repro.analysis.trace import (
    phase_summary,
    processor_summary,
    render_trace,
    trace_lines,
)

__all__ = [
    "ExperimentRecord",
    "LinearFit",
    "PowerFit",
    "ProbeResult",
    "crossover_point",
    "fit_linear",
    "fit_power",
    "history_to_networkx",
    "ExperimentReport",
    "ScenarioSpec",
    "SweepPoint",
    "default_workers",
    "expand",
    "run_specs",
    "sweep_parallel",
    "format_markdown_table",
    "format_table",
    "measure",
    "phase_summary",
    "probe",
    "processor_summary",
    "ratio_series",
    "read_json",
    "render_trace",
    "report_to_dict",
    "run_all_experiments",
    "run_to_dict",
    "sweep",
    "sweep_to_dicts",
    "trace_lines",
    "worst_case",
    "worst_case_probe",
    "write_json",
]
