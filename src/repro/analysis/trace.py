"""Human-readable execution traces.

Renders a finished run's :class:`~repro.core.history.History` as a
phase-by-phase timeline — who sent what to whom, how many signatures each
message carried, which phases were silent — plus per-phase and per-
processor summaries.  Useful for debugging new algorithms and for
teaching: the paper's algorithms are much easier to follow watching the
correct 1-messages hop across the bipartite graph or the chain sets being
walked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.history import History, edge_payloads
from repro.core.metrics import count_signatures
from repro.core.runner import RunResult
from repro.core.types import INPUT_SOURCE, ProcessorId


@dataclass(frozen=True, slots=True)
class TraceLine:
    """One rendered message."""

    phase: int
    src: ProcessorId
    dst: ProcessorId
    summary: str
    signatures: int


def _escape_length(text: str, index: int) -> int:
    """Length of the ``repr`` escape sequence starting at *index*.

    ``repr`` of strings/bytes emits ``\\\\``-style two-character escapes,
    fixed-width ``\\xHH`` / ``\\uHHHH`` / ``\\UHHHHHHHH`` codes, and (from
    ``unicodedata``-aware reprs) ``\\N{NAME}``.  Anything not starting a
    backslash escape has length 1.
    """
    if text[index] != "\\" or index + 1 >= len(text):
        return 1
    marker = text[index + 1]
    if marker == "x":
        return 4
    if marker == "u":
        return 6
    if marker == "U":
        return 10
    if marker == "N" and index + 2 < len(text) and text[index + 2] == "{":
        closing = text.find("}", index + 2)
        if closing != -1:
            return closing - index + 1
    return 2


def _clean_cut(text: str, limit: int) -> str:
    """The longest prefix of *text* of length <= *limit* that does not end
    mid-escape: a cut point never lands inside a ``\\xHH``-style sequence.
    """
    index = 0
    while index < limit:
        step = _escape_length(text, index)
        if index + step > limit:
            break
        index += step
    return text[:index]


def describe_payload(payload: object, max_length: int = 60) -> str:
    """A one-line, truncated description of a message payload.

    Truncation respects escape-sequence boundaries: a payload whose
    ``repr`` contains ``\\xHH`` / ``\\uHHHH`` escapes near the cut point is
    shortened to the last *complete* escape, never leaving a dangling
    backslash fragment before the ellipsis.
    """
    text = repr(payload)
    if len(text) > max_length:
        text = _clean_cut(text, max_length - 3) + "..."
    return text


def trace_lines(
    history: History,
    *,
    processors: set[ProcessorId] | None = None,
    phases: range | None = None,
) -> list[TraceLine]:
    """Flatten a history into trace lines, optionally filtered.

    *processors* keeps only messages touching one of the given ids;
    *phases* keeps only the given phase numbers.
    """
    lines: list[TraceLine] = []
    for phase_number, phase in enumerate(history.phases):
        if phases is not None and phase_number not in phases:
            continue
        for edge in phase.edges():
            if processors is not None and not (
                edge.src in processors or edge.dst in processors
            ):
                continue
            for payload in edge_payloads(edge.label):
                lines.append(
                    TraceLine(
                        phase=phase_number,
                        src=edge.src,
                        dst=edge.dst,
                        summary=describe_payload(payload),
                        signatures=count_signatures(payload),
                    )
                )
    return lines


def render_trace(
    result: RunResult,
    *,
    processors: set[ProcessorId] | None = None,
    max_messages_per_phase: int = 12,
) -> str:
    """The full timeline of a run as text.

    Messages from faulty processors are marked with ``!``; the phase-0
    input edge renders as ``input``.  Phases with more traffic than
    *max_messages_per_phase* are elided with a count.
    """
    out: list[str] = [
        f"run of {result.algorithm_name}: n={result.n}, t={result.t}, "
        f"input={result.input_value!r}, faulty={sorted(result.faulty) or 'none'}"
    ]
    lines = trace_lines(result.history, processors=processors)
    by_phase: dict[int, list[TraceLine]] = {}
    for line in lines:
        by_phase.setdefault(line.phase, []).append(line)

    for phase_number in range(len(result.history.phases)):
        phase_lines = by_phase.get(phase_number, [])
        phase_signatures = sum(line.signatures for line in phase_lines)
        header = (
            f"--- phase {phase_number} ({len(phase_lines)} messages, "
            f"{phase_signatures} signatures) ---"
        )
        out.append(header)
        if not phase_lines:
            out.append("    (silent)")
            continue
        shown = phase_lines[:max_messages_per_phase]
        for line in shown:
            marker = "!" if line.src in result.faulty else " "
            src = "input" if line.src == INPUT_SOURCE else f"{line.src:>3}"
            sigs = f" [{line.signatures} sig]" if line.signatures else ""
            out.append(f"  {marker} {src} -> {line.dst:>3}: {line.summary}{sigs}")
        if len(phase_lines) > len(shown):
            out.append(f"    ... {len(phase_lines) - len(shown)} more")

    decisions = {pid: result.decisions[pid] for pid in sorted(result.decisions)}
    out.append(f"decisions: {decisions}")
    return "\n".join(out)


def phase_summary(result: RunResult) -> list[dict[str, object]]:
    """Per-phase totals: rows for tables/plots."""
    rows: list[dict[str, object]] = []
    metrics = result.metrics
    for phase in range(1, metrics.phases_configured + 1):
        rows.append(
            {
                "phase": phase,
                "messages": metrics.messages_per_phase.get(phase, 0),
                "signatures": metrics.signatures_per_phase.get(phase, 0),
            }
        )
    return rows


def processor_summary(result: RunResult) -> list[dict[str, object]]:
    """Per-processor totals: sent, received, role, decision."""
    rows: list[dict[str, object]] = []
    for pid in range(result.n):
        role = "faulty" if pid in result.faulty else "correct"
        if pid == result.transmitter:
            role = f"transmitter/{role}"
        rows.append(
            {
                "processor": pid,
                "role": role,
                "sent": result.metrics.sent_per_processor.get(pid, 0),
                "received": result.metrics.received_per_processor.get(pid, 0),
                "decision": result.decisions.get(pid, "-"),
            }
        )
    return rows
