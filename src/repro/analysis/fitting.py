"""Numeric fitting of cost curves (numpy) and graph export (networkx).

The paper's claims are asymptotic; the honest empirical counterpart is to
fit measured cost curves and compare *growth parameters* — the marginal
message cost per processor, the exponent of a power law, the crossover
point of two linear regimes.  This module provides those fits plus a
networkx exporter for histories (communication-pattern analysis,
visualisation in external tools).

Both numpy and networkx are optional extras: the module imports them
lazily and raises a clear error if they are missing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.history import History, edge_payloads
from repro.core.metrics import count_signatures


@dataclass(frozen=True, slots=True)
class LinearFit:
    """Least-squares line ``y ≈ slope · x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares over the points ``(xs, ys)``."""
    import numpy as np

    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points with matching lengths")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


@dataclass(frozen=True, slots=True)
class PowerFit:
    """Power law ``y ≈ coefficient · x^exponent`` (log–log least squares)."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Fit a power law through positive points.

    Used to check growth *orders*: e.g. Algorithm 4's messages vs N should
    fit an exponent near 1.5, OM(t)'s messages vs n (at t = n//3) an
    exponent well above any fixed polynomial's.
    """
    if any(v <= 0 for v in xs) or any(v <= 0 for v in ys):
        raise ValueError("power-law fits need strictly positive data")
    log_fit = fit_linear([math.log(v) for v in xs], [math.log(v) for v in ys])
    return PowerFit(
        coefficient=math.exp(log_fit.intercept),
        exponent=log_fit.slope,
        r_squared=log_fit.r_squared,
    )


def crossover_point(fit_a: LinearFit, fit_b: LinearFit) -> float | None:
    """The ``x`` at which two fitted lines intersect (None if parallel).

    E.g. where Algorithm 5's message bill undercuts the active-set
    baseline: both are linear in n, the crossover is where the lower
    slope's higher intercept is amortised.
    """
    if math.isclose(fit_a.slope, fit_b.slope):
        return None
    return (fit_b.intercept - fit_a.intercept) / (fit_a.slope - fit_b.slope)


def history_to_networkx(history: History, *, collapse_phases: bool = False):
    """Export a history as a networkx ``MultiDiGraph``.

    Each message becomes an edge with attributes ``phase`` and
    ``signatures``; with ``collapse_phases=True`` a plain ``DiGraph`` is
    returned whose edge weights count messages over the whole run (the
    communication pattern, e.g. for drawing Algorithm 1's bipartite relay
    structure or Algorithm 5's tree walks).
    """
    import networkx as nx

    if collapse_phases:
        graph = nx.DiGraph()
        for phase_number, phase in enumerate(history.phases):
            if phase_number == 0:
                continue
            for edge in phase.edges():
                payloads = edge_payloads(edge.label)
                if graph.has_edge(edge.src, edge.dst):
                    graph[edge.src][edge.dst]["weight"] += len(payloads)
                else:
                    graph.add_edge(edge.src, edge.dst, weight=len(payloads))
        return graph

    graph = nx.MultiDiGraph()
    for phase_number, phase in enumerate(history.phases):
        if phase_number == 0:
            continue
        for edge in phase.edges():
            for payload in edge_payloads(edge.label):
                graph.add_edge(
                    edge.src,
                    edge.dst,
                    phase=phase_number,
                    signatures=count_signatures(payload),
                )
    return graph
