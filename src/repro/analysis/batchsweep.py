"""Batched sweep execution: scenario grids through the batch engine.

:func:`~repro.analysis.parallel.sweep_parallel` amortises nothing — every
:class:`~repro.analysis.sweep.SweepPoint` pays algorithm construction,
digest computation and a full scalar run, even when thousands of grid
points differ only in their seed or repeat index.  This module routes a
spec list through :func:`~repro.core.batch.run_batch` instead:

* specs are **grouped by factory** (equal pickled factories share one
  arena — one algorithm instance, one shared digest table, one run-class
  dedup space);
* each group is split into **stripes** that the self-healing
  :func:`~repro.analysis.parallel.run_tasks` pool executes as single
  tasks, so one worker runs a whole sub-batch instead of pickling
  per-scenario results back one by one;
* with ``shared_results=True`` workers write each point's four counters
  straight into a POSIX shared-memory block (32 bytes per spec) and the
  parent rebuilds the :class:`~repro.analysis.sweep.SweepPoint` stream
  from the specs it already holds — no result pickling at all.

The output is element-wise equal to ``[spec.run() for spec in specs]`` in
the same order (the property suite asserts this); traced specs
(``trace_dir`` set) keep the scalar path so their per-run JSONL files come
out byte-identical.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from math import ceil
from typing import Any, Iterable, Sequence

from repro.analysis.parallel import ScenarioSpec, default_workers, run_tasks
from repro.analysis.sweep import SweepPoint
from repro.core.batch import BatchCase, BatchStats, run_batch
from repro.core.protocol import AgreementAlgorithm

#: Below this many specs a group is not worth splitting across workers —
#: smaller stripes would shrink each stripe's dedup/digest-sharing scope.
MIN_STRIPE = 64

#: Shared-memory slot layout: messages, signatures, phases_used,
#: agreement_ok — four little-endian int64 per spec.
_SLOT = struct.Struct("<qqqq")


def _spec_case(spec: ScenarioSpec) -> BatchCase:
    """The batch case of one (untraced) scenario spec."""
    return BatchCase(
        value=spec.value,
        adversary_name=spec.adversary_name,
        adversary_factory=spec.adversary_factory,
    )


def _point(
    spec: ScenarioSpec,
    algorithm: AgreementAlgorithm,
    messages: int,
    signatures: int,
    phases_used: int,
    agreement_ok: bool,
) -> SweepPoint:
    """Assemble the SweepPoint exactly as :func:`~repro.analysis.sweep.measure` would."""
    return SweepPoint(
        algorithm=algorithm.name,
        n=algorithm.n,
        t=algorithm.t,
        params=spec.params,
        adversary=spec.adversary_name,
        value=spec.value,
        messages=messages,
        signatures=signatures,
        phases_used=phases_used,
        phases_configured=algorithm.num_phases(),
        message_bound=algorithm.upper_bound_messages(),
        agreement_ok=agreement_ok,
    )


@dataclass(frozen=True, slots=True)
class BatchStripe:
    """One pool task: a slice of same-factory specs run as a single batch.

    With *shm_name* set, ``run()`` writes each spec's counters into the
    named shared-memory block at the spec's *slot* and returns only the
    batch stats; otherwise it returns the materialised points.
    """

    specs: tuple[ScenarioSpec, ...]
    slots: tuple[int, ...] | None = None
    shm_name: str | None = None
    strict: bool = False

    def run(self) -> tuple[list[SweepPoint] | None, dict[str, Any]]:
        algorithm = self.specs[0].factory()
        result = run_batch(
            algorithm,
            [_spec_case(spec) for spec in self.specs],
            strict=self.strict,
        )
        if self.shm_name is None:
            points = [
                _point(
                    spec,
                    algorithm,
                    outcome.messages_by_correct,
                    outcome.signatures_by_correct,
                    outcome.phases_used,
                    outcome.agreement_ok,
                )
                for spec, outcome in zip(self.specs, result.outcomes)
            ]
            return points, result.stats.to_json_dict()
        from multiprocessing import shared_memory

        assert self.slots is not None, "shared mode needs slot indices"
        block = shared_memory.SharedMemory(name=self.shm_name)
        try:
            for slot, outcome in zip(self.slots, result.outcomes):
                _SLOT.pack_into(
                    block.buf,
                    slot * _SLOT.size,
                    outcome.messages_by_correct,
                    outcome.signatures_by_correct,
                    outcome.phases_used,
                    1 if outcome.agreement_ok else 0,
                )
        finally:
            block.close()
        return None, result.stats.to_json_dict()


@dataclass(slots=True)
class BatchSweepResult:
    """The point stream plus the aggregated amortisation stats."""

    points: list[SweepPoint] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)


def _merge_stats(total: BatchStats, part: dict[str, Any]) -> None:
    for name in (
        "runs",
        "unique_runs",
        "replicated_runs",
        "kernel_runs",
        "scalar_runs",
        "digest_hits",
        "digest_misses",
    ):
        setattr(total, name, getattr(total, name) + int(part[name]))


def _group_key(spec: ScenarioSpec) -> Any:
    """Arena-sharing key: equal pickled factories share one batch."""
    try:
        return pickle.dumps(spec.factory)
    except Exception:
        return ("unpicklable", id(spec.factory))


def _stripes(indices: Sequence[int], workers: int) -> list[list[int]]:
    """Split one group's spec indices into at most *workers* stripes."""
    target = max(1, min(workers, ceil(len(indices) / MIN_STRIPE)))
    size = ceil(len(indices) / target)
    return [list(indices[i : i + size]) for i in range(0, len(indices), size)]


def batch_specs(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int | None = None,
    strict: bool = False,
    shared_results: bool = False,
    task_timeout: float | None = None,
    max_retries: int = 2,
) -> BatchSweepResult:
    """Execute *specs* through the batch engine, in spec order.

    Specs are grouped by factory (one arena per group), groups are split
    into worker stripes, and the stripes run on the self-healing pool.
    *strict* forwards to :func:`~repro.core.batch.run_batch` (every unique
    run re-checked against the scalar runner).  *shared_results* routes
    counters through a shared-memory block instead of pickled point lists
    — the parent rebuilds the points from the specs it already holds.
    Traced specs always take the scalar path so their JSONL trace files
    are produced exactly as the scalar sweep would.
    """
    specs = list(specs)
    workers = default_workers() if workers is None else max(1, workers)
    points: list[SweepPoint | None] = [None] * len(specs)
    stats = BatchStats()

    batched: list[int] = []
    for index, spec in enumerate(specs):
        if spec.trace_dir is None:
            batched.append(index)
        else:
            points[index] = spec.run()
            stats.runs += 1
            stats.unique_runs += 1
            stats.scalar_runs += 1

    groups: dict[Any, list[int]] = {}
    for index in batched:
        groups.setdefault(_group_key(specs[index]), []).append(index)
    stripe_indices: list[list[int]] = []
    for indices in groups.values():
        stripe_indices.extend(_stripes(indices, workers))

    slot_of = {index: slot for slot, index in enumerate(batched)}
    shm = None
    try:
        if shared_results and batched:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=_SLOT.size * len(batched)
            )
        stripes = [
            BatchStripe(
                specs=tuple(specs[index] for index in indices),
                slots=(
                    tuple(slot_of[index] for index in indices)
                    if shm is not None
                    else None
                ),
                shm_name=shm.name if shm is not None else None,
                strict=strict,
            )
            for indices in stripe_indices
        ]
        outputs = run_tasks(
            stripes,
            workers=workers,
            chunk_size=1,
            task_timeout=task_timeout,
            max_retries=max_retries,
        )
        for indices, (stripe_points, stripe_stats) in zip(
            stripe_indices, outputs
        ):
            _merge_stats(stats, stripe_stats)
            if stripe_points is not None:
                for index, point in zip(indices, stripe_points):
                    points[index] = point
        if shm is not None:
            arenas = {
                key: specs[indices[0]].factory()
                for key, indices in groups.items()
            }
            for index in batched:
                counters = _SLOT.unpack_from(
                    shm.buf, slot_of[index] * _SLOT.size
                )
                points[index] = _point(
                    specs[index],
                    arenas[_group_key(specs[index])],
                    counters[0],
                    counters[1],
                    counters[2],
                    bool(counters[3]),
                )
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()

    final = [point for point in points if point is not None]
    assert len(final) == len(specs), "every spec must produce a point"
    return BatchSweepResult(points=final, stats=stats)


def run_specs_batched(
    specs: Iterable[ScenarioSpec],
    *,
    workers: int | None = None,
    strict: bool = False,
    shared_results: bool = False,
    task_timeout: float | None = None,
    max_retries: int = 2,
) -> list[SweepPoint]:
    """:func:`batch_specs`, returning just the point stream (drop-in for
    :func:`~repro.analysis.parallel.run_specs`)."""
    return batch_specs(
        list(specs),
        workers=workers,
        strict=strict,
        shared_results=shared_results,
        task_timeout=task_timeout,
        max_retries=max_retries,
    ).points
