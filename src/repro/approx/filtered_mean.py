"""Filtered-mean ε-agreement (SNIPPETS AlgorithmTwo's update rule, typed).

Like :class:`~repro.approx.midpoint.MidpointApprox` but the update is the
*mean* of the trimmed multiset rather than its midpoint.  The mean of
``n − 2t`` survivors shifts by at most ``t/(n − 2t)`` of the correct
diameter when ``t`` entries are exchanged, giving the declared
``convergence_rate`` of ``t / (n - 2*t)`` — faster than ``1/2`` whenever
``n > 4t``, the regime where averaging beats the midpoint.

``t ≥ 1`` is required: at ``t = 0`` the expression degenerates to rate 0
(no adversary, one round of exchange already agrees exactly) and the
contraction-rate discipline — a rate strictly inside ``(0, 1)`` — has
nothing to say.
"""

from __future__ import annotations

from typing import ClassVar, Sequence

from repro.approx.base import ApproximateAgreement
from repro.core.errors import ConfigurationError
from repro.core.types import ProcessorId, TRANSMITTER

__all__ = ["FilteredMeanApprox"]


class FilteredMeanApprox(ApproximateAgreement):
    """Trim ``t`` per side, move to the mean of the survivors."""

    name: ClassVar[str] = "filtered-mean-approx"
    phase_bound: ClassVar[str] = "m"
    message_bound: ClassVar[str] = "m * n * (n - 1)"
    convergence_rate: ClassVar[str] = "t / (n - 2*t)"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        eps: float = 0.25,
        inputs: Sequence[float] | None = None,
        transmitter: ProcessorId = TRANSMITTER,
    ) -> None:
        if t < 1:
            raise ConfigurationError(
                "filtered-mean ε-agreement needs t >= 1 (its contraction "
                "rate t/(n-2t) degenerates at t=0)"
            )
        if n <= 3 * t:
            raise ConfigurationError(
                f"filtered-mean ε-agreement needs n > 3t; got n={n}, t={t}"
            )
        super().__init__(n, t, eps=eps, inputs=inputs, transmitter=transmitter)

    def update(self, values: Sequence[float]) -> float:
        survivors = self.trimmed(values)
        return sum(survivors) / len(survivors)
