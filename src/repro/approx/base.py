"""Abstract bases for the approximate / randomized workload family.

Two new problem statements join the exact-BA zoo:

* :class:`ApproximateAgreement` — every processor starts with a real
  value; correct processors must end within ``eps`` of each other
  (ε-agreement) and inside the range of correct inputs (ε-validity).
  The synchronous round structure follows Dolev-Lynch-Pinter-Stark-Weihl:
  each round, broadcast your value, collect the others', sort, trim the
  ``t`` lowest and ``t`` highest, and apply a concrete *update rule*.
  The per-round contraction of the correct-value diameter is declared as
  the ``convergence_rate`` class attribute (lint rule BA010) and the
  round count is *derived* from it: the smallest ``m`` with
  ``diameter · rate^m ≤ eps``, computed in exact rational arithmetic.
* :class:`RandomizedConsensus` — exact binary agreement with
  probabilistic termination.  Processors consult the run's seeded
  :class:`~repro.approx.coins.CoinSource`; the algorithm opts into the
  runner's variable-round mode, so ``num_phases()`` is a cap and the run
  stops once every correct processor reports
  :meth:`~repro.core.protocol.Processor.has_terminated`.

Both families are unauthenticated (no signatures) and take *per-processor*
inputs from the algorithm configuration: the runner's single transmitter
input edge is the exact-BA input model, so approx processors simply
ignore the phase-0 edge and read their initial value from
``algorithm.inputs``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, ClassVar, Iterable, Sequence

from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import AgreementAlgorithm, Processor
from repro.core.types import TRANSMITTER, ProcessorId, Value

from repro.approx.coins import CoinSource

__all__ = [
    "RoundValue",
    "ApproximateAgreement",
    "ApproxProcessor",
    "RandomizedConsensus",
]


@dataclass(frozen=True, slots=True)
class RoundValue:
    """One processor's value broadcast in one approximate-agreement round."""

    round_index: int
    value: float


class ApproximateAgreement(AgreementAlgorithm):
    """Base for synchronous ε-agreement algorithms (trim-and-update).

    Concrete subclasses declare a ``convergence_rate`` expression and
    implement :meth:`update` (the rule applied to the trimmed, sorted
    value multiset each round).  Everything else — the broadcast/collect
    round structure, junk filtering, the derived round count — is shared.
    """

    name: ClassVar[str] = "approx-abstract"
    authenticated: ClassVar[bool] = False
    #: Continuous inputs: any float is a legal value.
    value_domain: ClassVar[frozenset[Any] | None] = None
    phase_bound: ClassVar[str | None] = "derived"
    message_bound: ClassVar[str | None] = "derived"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        eps: float = 0.25,
        inputs: Sequence[float] | None = None,
        transmitter: ProcessorId = TRANSMITTER,
    ) -> None:
        super().__init__(n, t, transmitter=transmitter)
        if not eps > 0:
            raise ConfigurationError(f"eps must be positive, got {eps!r}")
        self.eps = float(eps)
        if inputs is None:
            # Defaults offset from 0 so that junk coerced to 0.0 (the
            # strawman's bug) falls visibly outside the correct range.
            inputs = tuple(10.0 + pid for pid in range(n))
        self.inputs = tuple(float(v) for v in inputs)
        if len(self.inputs) != n:
            raise ConfigurationError(
                f"{self.name} needs one input per processor: got "
                f"{len(self.inputs)} inputs for n={n}"
            )
        self.m = self._required_rounds()

    # ------------------------------------------------------ derived bounds

    def contraction_rate(self) -> Fraction:
        """The declared per-round contraction, evaluated exactly."""
        from repro.bounds.expressions import evaluate_rate

        rate = evaluate_rate(self.convergence_rate, self.bound_parameters())
        if rate is None:
            raise ConfigurationError(
                f"{type(self).__name__} declares no convergence_rate; "
                f"approximate-agreement algorithms must (lint rule BA010)"
            )
        return rate

    def _required_rounds(self) -> int:
        """Smallest ``m ≥ 1`` with ``diameter · rate^m ≤ eps`` (exact)."""
        diameter = Fraction(max(self.inputs)) - Fraction(min(self.inputs))
        eps = Fraction(self.eps)
        rate = self.contraction_rate()
        rounds = 1
        span = diameter * rate
        while span > eps:
            rounds += 1
            span *= rate
        return rounds

    def num_phases(self) -> int:
        """One phase per contraction round (the final absorb is on_final)."""
        return self.m

    def make_processor(self, pid: ProcessorId) -> Processor:
        return ApproxProcessor(self, pid)

    # ------------------------------------------------------- the update rule

    def trimmed(self, values: Sequence[float]) -> list[float]:
        """Sort and drop the ``t`` lowest and ``t`` highest values.

        At most ``t`` of the collected values are adversarial, so after
        trimming ``t`` per side every survivor lies within the range of
        correct values — the inductive step of ε-validity.
        """
        ordered = sorted(values)
        return ordered[self.t : len(ordered) - self.t]

    @abc.abstractmethod
    def update(self, values: Sequence[float]) -> float:
        """Map one round's collected value multiset to the next value.

        *values* is the full n-multiset (own value substituted for
        missing or malformed entries), unsorted; implementations
        typically start from :meth:`trimmed`.
        """

    def describe(self) -> dict[str, object]:
        row = super().describe()
        row["eps"] = self.eps
        row["convergence_rate"] = str(self.contraction_rate())
        return row


class ApproxProcessor(Processor):
    """The shared round engine: broadcast, collect, substitute, update.

    Round ``r`` is phase ``r``: at phase 1 each processor broadcasts its
    initial value; at phase ``r > 1`` it first absorbs the round-``r−1``
    values delivered from phase ``r−1`` (applying the algorithm's update
    rule) and then broadcasts the result tagged for round ``r``.  The
    final round's messages arrive in :meth:`on_final`, so ``m`` phases
    yield exactly ``m`` contractions.
    """

    def __init__(self, algorithm: ApproximateAgreement, pid: ProcessorId) -> None:
        self.algorithm = algorithm
        self.value = algorithm.inputs[pid]
        self.rounds_applied = 0

    def _collect(self, round_index: int, inbox: Sequence[Envelope]) -> list[float]:
        """The n-multiset for *round_index*: own value fills every gap.

        A sender that sent nothing, sent a payload that is not a
        :class:`RoundValue`, tagged the wrong round, or shipped a
        non-finite float is treated exactly like a silent one — its slot
        is substituted with the collector's own value, the standard
        defense that keeps the multiset at size ``n``.
        """
        received: dict[ProcessorId, float] = {}
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, RoundValue)
                and payload.round_index == round_index
                and isinstance(payload.value, float)
                and payload.value == payload.value  # rejects NaN
                and abs(payload.value) != float("inf")
                and 0 <= envelope.src < self.ctx.n
                and envelope.src != self.ctx.pid
            ):
                received.setdefault(envelope.src, payload.value)
        values = [self.value]
        for q in self.ctx.others():
            values.append(received.get(q, self.value))
        return values

    def _apply_round(self, round_index: int, inbox: Sequence[Envelope]) -> None:
        self.value = self.algorithm.update(self._collect(round_index, inbox))
        self.rounds_applied += 1

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase > 1:
            self._apply_round(phase - 1, inbox)
        payload = RoundValue(round_index=phase, value=self.value)
        return [(q, payload) for q in self.ctx.others()]

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._apply_round(self.algorithm.num_phases(), inbox)

    def decision(self) -> Value | None:
        return self.value


class RandomizedConsensus(AgreementAlgorithm):
    """Base for coin-flipping binary consensus (Ben-Or-style).

    Subclasses get per-processor binary inputs, a configured coin (bias
    and local/common scope), and the variable-round contract: the runner
    stops as soon as every correct processor has decided, with
    ``num_phases()`` as the cap.
    """

    name: ClassVar[str] = "randomized-abstract"
    authenticated: ClassVar[bool] = False
    value_domain: ClassVar[frozenset[Any] | None] = frozenset({0, 1})
    phase_bound: ClassVar[str | None] = "derived"
    message_bound: ClassVar[str | None] = "derived"
    variable_rounds: ClassVar[bool] = True
    uses_coins: ClassVar[bool] = True

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_rounds: int = 30,
        coin_bias: float = 0.5,
        coin_scope: str = "local",
        inputs: Sequence[int] | None = None,
        transmitter: ProcessorId = TRANSMITTER,
    ) -> None:
        super().__init__(n, t, transmitter=transmitter)
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be at least 1, got {max_rounds!r}"
            )
        # Stored as ``m`` so the declared phase/message bounds can close
        # over it through bound_parameters().
        self.m = int(max_rounds)
        if not 0.0 <= coin_bias <= 1.0:
            raise ConfigurationError(
                f"coin_bias must be in [0, 1], got {coin_bias!r}"
            )
        if coin_scope not in ("local", "common"):
            raise ConfigurationError(f"unknown coin scope {coin_scope!r}")
        self.coin_bias = float(coin_bias)
        self.coin_scope = coin_scope
        if inputs is None:
            # Alternating inputs by default: a mixed start exercises the
            # coin path instead of the deterministic unanimous fast path.
            inputs = tuple(pid % 2 for pid in range(n))
        self.inputs = tuple(int(v) for v in inputs)
        if len(self.inputs) != n or any(v not in (0, 1) for v in self.inputs):
            raise ConfigurationError(
                f"{self.name} needs one binary input per processor; got "
                f"{self.inputs!r} for n={n}"
            )

    @property
    def max_rounds(self) -> int:
        """The round cap (alias of the bound parameter ``m``)."""
        return self.m

    def make_coin_source(self, seed: int) -> CoinSource:
        """The coin stream a run of this configuration should use."""
        return CoinSource(seed, bias=self.coin_bias, scope=self.coin_scope)
