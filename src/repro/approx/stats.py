"""Dependency-free statistical verification for the randomized workloads.

Probabilistic claims ("Ben-Or's round count has a geometric tail set by
the coin bias", "the coin stream is uniform") cannot be checked on one
run; they are checked on *seeded ensembles*.  This module supplies the
machinery without scipy:

* :func:`ks_statistic` / :func:`ks_critical` — one-sample
  Kolmogorov-Smirnov against any CDF, with the asymptotic critical value
  ``c(α)/√n``;
* :func:`chi_square_pvalue` — Pearson χ² with the p-value computed from
  the regularized upper incomplete gamma function (Numerical-Recipes
  series + continued fraction over :func:`math.lgamma`);
* the Ben-Or round-count model: in a fault-free run with mixed inputs
  every correct processor sees the same report multiset, so a round of
  coin flips succeeds iff at least ``thr = ⌊(n+t)/2⌋ + 1`` of the ``n``
  flips agree — :func:`benor_success_probability` — and the number of
  coin rounds to success is geometric
  (:func:`coin_rounds_to_success` extracts it from a finished run);
* :func:`run_statistical_smoke` — the seeded <10s CI gate behind
  ``make approx-smoke``.

Everything is deterministic for a fixed seed: samples come from
:class:`~repro.approx.coins.CoinSource` streams, never from ``random``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.approx.benor import BenOr
from repro.approx.coins import CoinSource
from repro.core.runner import RunResult, run

__all__ = [
    "ks_statistic",
    "ks_critical",
    "chi_square_pvalue",
    "binomial_tail_ge",
    "benor_success_probability",
    "observed_rounds",
    "coin_rounds_to_success",
    "sample_benor_rounds",
    "geometric_bin_probabilities",
    "bin_round_counts",
    "run_statistical_smoke",
]

# ---------------------------------------------------------------- KS test

#: Asymptotic KS critical coefficients c(α): reject when the statistic
#: exceeds ``c(α)/√n``.
_KS_COEFFICIENTS = {0.10: 1.224, 0.05: 1.358, 0.01: 1.628}


def ks_statistic(samples: Sequence[float], cdf: Callable[[float], float]) -> float:
    """One-sample KS statistic ``sup |F_n(x) − F(x)|`` against *cdf*."""
    if not samples:
        raise ValueError("KS statistic needs at least one sample")
    ordered = sorted(samples)
    n = len(ordered)
    worst = 0.0
    for i, x in enumerate(ordered):
        theoretical = cdf(x)
        worst = max(
            worst,
            abs((i + 1) / n - theoretical),
            abs(theoretical - i / n),
        )
    return worst


def ks_critical(n: int, alpha: float = 0.01) -> float:
    """The asymptotic rejection threshold for a level-``alpha`` KS test."""
    try:
        coefficient = _KS_COEFFICIENTS[alpha]
    except KeyError:
        raise ValueError(
            f"alpha must be one of {sorted(_KS_COEFFICIENTS)}, got {alpha!r}"
        ) from None
    return coefficient / math.sqrt(n)


# ------------------------------------------------------------------ χ² test


def _gamma_q(s: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(s, x)`` (s > 0, x ≥ 0)."""
    if x < 0 or s <= 0:
        raise ValueError(f"gamma_q needs s > 0, x >= 0; got s={s}, x={x}")
    if x == 0.0:
        return 1.0
    if x < s + 1.0:
        # Series for P(s, x); Q = 1 − P.
        term = 1.0 / s
        total = term
        a = s
        for _ in range(500):
            a += 1.0
            term *= x / a
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, min(1.0, 1.0 - p))
    # Lentz continued fraction for Q(s, x).
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q = h * math.exp(-x + s * math.log(x) - math.lgamma(s))
    return max(0.0, min(1.0, q))


def chi_square_pvalue(
    observed: Sequence[float], expected: Sequence[float]
) -> float:
    """Pearson χ² goodness-of-fit p-value (no estimated parameters).

    Degrees of freedom are ``len(observed) − 1``; expected cells must be
    positive (merge sparse bins before calling).
    """
    if len(observed) != len(expected) or len(observed) < 2:
        raise ValueError("observed and expected need equal length >= 2")
    if any(e <= 0 for e in expected):
        raise ValueError("expected cell counts must be positive")
    statistic = sum((o - e) ** 2 / e for o, e in zip(observed, expected))
    df = len(observed) - 1
    return _gamma_q(df / 2.0, statistic / 2.0)


# --------------------------------------------------- the Ben-Or round model


def binomial_tail_ge(n: int, k: int, p: float) -> float:
    """``P[Bin(n, p) ≥ k]``, exactly (math.comb, no continuity tricks)."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    return sum(
        math.comb(n, i) * p**i * (1.0 - p) ** (n - i) for i in range(k, n + 1)
    )


def benor_success_probability(n: int, t: int, bias: float) -> float:
    """Per-coin-round success probability in a fault-free mixed run.

    All correct processors see the identical multiset of ``n`` coin
    flips; the round produces a decision iff one value reaches the
    report threshold ``thr = ⌊(n+t)/2⌋ + 1`` — that is, at least ``thr``
    ones or at least ``thr`` zeros among ``Bin(n, bias)``.
    """
    thr = (n + t) // 2 + 1
    ones = binomial_tail_ge(n, thr, bias)
    zeros = binomial_tail_ge(n, thr, 1.0 - bias)
    return ones + zeros


def observed_rounds(result: RunResult) -> int:
    """Logical Ben-Or rounds a run used (from its last active phase)."""
    return (result.metrics.last_active_phase + 1) // 2


def coin_rounds_to_success(result: RunResult) -> int | None:
    """Coin rounds a fault-free mixed-input Ben-Or run needed to decide.

    Round 1 is burned on the deterministic mixed-report stalemate, and
    the deciding round consumes one more; the count of *coin* rounds is
    therefore ``observed_rounds − 2``.  ``None`` when the run hit its
    cap undecided (censored sample — callers decide how to treat it).
    """
    if any(value is None for value in result.decisions.values()):
        return None
    return observed_rounds(result) - 2


def sample_benor_rounds(
    n: int,
    t: int,
    bias: float,
    count: int,
    *,
    seed: int = 0,
    max_rounds: int = 40,
) -> list[int | None]:
    """Coin-round counts from *count* seeded fault-free Ben-Or runs.

    Run ``i`` uses coin seed ``seed + i``; inputs alternate by pid, so
    every run starts from the mixed-report stalemate the geometric model
    assumes.  Entries are ``None`` for (rare) runs censored at the cap.
    """
    algorithm = BenOr(n, t, max_rounds=max_rounds, coin_bias=bias)
    samples: list[int | None] = []
    for i in range(count):
        result = run(
            algorithm,
            algorithm.inputs[algorithm.transmitter],
            coins=algorithm.make_coin_source(seed + i),
            record_history=False,
        )
        samples.append(coin_rounds_to_success(result))
    return samples


def geometric_bin_probabilities(p: float, bins: int) -> list[float]:
    """``P[K = 1], ..., P[K = bins − 1], P[K ≥ bins]`` for K ~ Geom(p)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"geometric parameter must be in (0, 1), got {p!r}")
    cells = [p * (1.0 - p) ** (k - 1) for k in range(1, bins)]
    cells.append((1.0 - p) ** (bins - 1))
    return cells


def bin_round_counts(samples: Sequence[int | None], bins: int) -> list[int]:
    """Histogram of coin-round counts into ``1..bins−1`` plus a tail bin.

    Censored samples (``None``) land in the tail bin — the run needed at
    least that many rounds.
    """
    cells = [0] * bins
    for value in samples:
        if value is None or value >= bins:
            cells[-1] += 1
        elif value >= 1:
            cells[value - 1] += 1
        else:
            raise ValueError(f"coin-round count must be >= 1, got {value!r}")
    return cells


# -------------------------------------------------------------- CI smoke


def run_statistical_smoke(seed: int = 0) -> dict[str, object]:
    """The seeded ``make approx-smoke`` gate: three cheap ensemble checks.

    1. **Coin uniformity** — 2000 draws from one
       :class:`~repro.approx.coins.CoinSource` stream pass a KS test
       against U(0, 1) at α = 0.01.
    2. **Ben-Or geometric tail** — 150 fault-free mixed-input runs at
       ``n=6, t=1`` with a fair coin; the coin-round histogram passes a
       χ² test against Geom(0.6875) at p > 10⁻³.
    3. **ε-convergence** — midpoint and filtered-mean runs at
       ``n=7, t=2`` land within their declared ``eps`` (deterministic).

    Deterministic for a fixed *seed*; raises ``AssertionError`` with the
    failing measurement on any miss, returns the measurements otherwise.
    """
    from repro.approx.filtered_mean import FilteredMeanApprox
    from repro.approx.midpoint import MidpointApprox
    from repro.approx.validation import check_epsilon_agreement

    report: dict[str, object] = {"seed": seed}

    coins = CoinSource(seed)
    draws = [coins.uniform(lane, r) for lane in range(20) for r in range(100)]
    ks = ks_statistic(draws, lambda x: min(1.0, max(0.0, x)))
    threshold = ks_critical(len(draws), alpha=0.01)
    report["coin_ks"] = ks
    report["coin_ks_critical"] = threshold
    assert ks < threshold, (
        f"coin stream failed KS uniformity: statistic {ks:.4f} >= "
        f"critical {threshold:.4f} (seed {seed})"
    )

    n, t, bias, count = 6, 1, 0.5, 150
    samples = sample_benor_rounds(n, t, bias, count, seed=seed)
    p = benor_success_probability(n, t, bias)
    bins = 3
    observed = bin_round_counts(samples, bins)
    expected = [count * cell for cell in geometric_bin_probabilities(p, bins)]
    pvalue = chi_square_pvalue(observed, expected)
    report["benor_success_probability"] = p
    report["benor_round_histogram"] = observed
    report["benor_chi2_pvalue"] = pvalue
    assert pvalue > 1e-3, (
        f"ben-or round counts diverge from Geom({p:.4f}): histogram "
        f"{observed}, chi^2 p-value {pvalue:.2e} (seed {seed})"
    )

    for algorithm in (MidpointApprox(7, 2, eps=0.25), FilteredMeanApprox(7, 2, eps=0.25)):
        result = run(
            algorithm,
            algorithm.inputs[algorithm.transmitter],
            record_history=False,
        )
        verdict = check_epsilon_agreement(result, algorithm)
        report[f"{algorithm.name}_rounds"] = algorithm.m
        assert verdict.ok, (
            f"{algorithm.name} failed fault-free eps-convergence: {verdict}"
        )

    return report
