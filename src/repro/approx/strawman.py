"""A deliberately broken ε-agreement variant for the fuzz oracle.

:class:`OvershootMidpoint` declares the same contraction rate as the
correct midpoint algorithm but skips the defenses that make the rate
true: it does **not** trim the ``t`` extremes, it coerces junk payloads
to ``0.0`` instead of substituting its own value, and it ignores round
tags.  A single garbled envelope therefore drags a receiver's value
toward 0 — outside the correct-input range ``[10, 10 + n − 1]`` — which
the ε-validity containment check flags as an ``eps_violation``.  The
shrinker reduces any such finding to one mutation, which is exactly what
the committed corpus entries pin.

Like the exact-BA strawmen, it exists so the oracle's new verdict class
has a guaranteed positive: a fuzzer that cannot find this bug is broken.
"""

from __future__ import annotations

from typing import ClassVar, Iterable, Sequence

from repro.approx.base import ApproximateAgreement, RoundValue
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Processor
from repro.core.types import ProcessorId, Value

__all__ = ["OvershootMidpoint"]


class OvershootMidpoint(ApproximateAgreement):
    """Midpoint update with no trimming and credulous junk handling."""

    name: ClassVar[str] = "strawman-overshoot"
    phase_bound: ClassVar[str] = "m"
    message_bound: ClassVar[str] = "m * n * (n - 1)"
    #: The claim is the honest midpoint's; the implementation breaks it.
    convergence_rate: ClassVar[str] = "1 / 2"

    def update(self, values: Sequence[float]) -> float:
        # Bug 1: no trimming — adversarial extremes survive.
        ordered = sorted(values)
        return (ordered[0] + ordered[-1]) / 2.0

    def make_processor(self, pid: ProcessorId) -> Processor:
        return _CredulousProcessor(self, pid)


class _CredulousProcessor(Processor):
    """Collects like :class:`~repro.approx.base.ApproxProcessor`, badly."""

    def __init__(self, algorithm: OvershootMidpoint, pid: ProcessorId) -> None:
        self.algorithm = algorithm
        self.value = algorithm.inputs[pid]

    def _coerce(self, payload: object) -> float:
        # Bug 2: junk becomes 0.0 instead of being treated as silence.
        # Bug 3: the round tag is never checked.
        if isinstance(payload, RoundValue) and isinstance(
            payload.value, (int, float)
        ):
            return float(payload.value)
        if isinstance(payload, (int, float)) and not isinstance(payload, bool):
            return float(payload)
        return 0.0

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase > 1:
            values = [self.value]
            values.extend(self._coerce(envelope.payload) for envelope in inbox)
            self.value = self.algorithm.update(values)
        payload = RoundValue(round_index=phase, value=self.value)
        return [(q, payload) for q in self.ctx.others()]

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        values = [self.value]
        values.extend(self._coerce(envelope.payload) for envelope in inbox)
        self.value = self.algorithm.update(values)

    def decision(self) -> Value | None:
        return self.value
