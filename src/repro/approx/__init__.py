"""Approximate and randomized consensus: the second workload family.

The paper's bounds are stated for *exact* single-shot Byzantine Agreement,
but their modern context is probabilistic: Civit-Gilbert-Guerraoui (arXiv
2311.08060) extend the quadratic message lower bound to randomized
protocols, and the subquadratic escape routes all pay with randomness.
This package opens that frontier as runnable workloads:

* **ε-agreement** (approximate consensus) — every correct processor ends
  within ``eps`` of every other, inside the range of correct inputs.
  :class:`~repro.approx.midpoint.MidpointApprox` (trim ``t`` per side,
  take the midpoint; contraction rate ``1/2``) and
  :class:`~repro.approx.filtered_mean.FilteredMeanApprox` (trimmed mean;
  rate ``t/(n - 2t)``) follow Dolev-Lynch-Pinter-Stark-Weihl's synchronous
  scheme.  Each declares its contraction rate as a ``convergence_rate``
  bound-language expression (lint rule BA010) next to the usual
  phase/message budgets.
* **randomized consensus** — :class:`~repro.approx.benor.BenOr`
  (``n > 5t``): exact agreement with probabilistic termination, driven by
  a seeded, replayable :class:`~repro.approx.coins.CoinSource` threaded
  through the runner.  Termination is a predicate, not a schedule: the
  algorithm opts into the runner's variable-round mode and the run stops
  as soon as every correct processor has decided.

Correctness is judged by :mod:`repro.approx.validation` (the fuzz
oracle's ``eps_violation`` verdict) and, for the probabilistic claims, by
the dependency-free statistical helpers in :mod:`repro.approx.stats`
(seeded KS / χ² assertions, geometric round-count tails).
"""

from repro.approx.base import ApproximateAgreement, RandomizedConsensus
from repro.approx.benor import BenOr
from repro.approx.coins import CoinSource
from repro.approx.filtered_mean import FilteredMeanApprox
from repro.approx.midpoint import MidpointApprox
from repro.approx.strawman import OvershootMidpoint
from repro.approx.validation import (
    check_epsilon_agreement,
    check_randomized_consensus,
    check_run_conditions,
)

__all__ = [
    "ApproximateAgreement",
    "RandomizedConsensus",
    "BenOr",
    "CoinSource",
    "FilteredMeanApprox",
    "MidpointApprox",
    "OvershootMidpoint",
    "check_epsilon_agreement",
    "check_randomized_consensus",
    "check_run_conditions",
]
