"""Midpoint ε-agreement (SNIPPETS AlgorithmOne's update rule, typed).

Each round every processor broadcasts its value, collects the full
n-multiset (substituting its own value for missing or junk entries),
sorts, discards the ``t`` lowest and ``t`` highest, and moves to the
*midpoint* of the survivors: ``(min + max) / 2``.

Contraction argument (n > 3t): after trimming, every correct processor's
surviving window is contained in the correct-value range, and any two
correct processors' windows overlap in at least ``n − 2t − t ≥ 1``
common entries of the sorted global multiset; taking midpoints of
overlapping windows halves the maximum distance between any two correct
values — the declared ``convergence_rate`` of ``1/2``.
"""

from __future__ import annotations

from typing import ClassVar, Sequence

from repro.approx.base import ApproximateAgreement
from repro.core.errors import ConfigurationError
from repro.core.types import ProcessorId, TRANSMITTER

__all__ = ["MidpointApprox"]


class MidpointApprox(ApproximateAgreement):
    """Trim ``t`` per side, move to the midpoint of the survivors."""

    name: ClassVar[str] = "midpoint-approx"
    phase_bound: ClassVar[str] = "m"
    message_bound: ClassVar[str] = "m * n * (n - 1)"
    convergence_rate: ClassVar[str] = "1 / 2"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        eps: float = 0.25,
        inputs: Sequence[float] | None = None,
        transmitter: ProcessorId = TRANSMITTER,
    ) -> None:
        if n <= 3 * t:
            raise ConfigurationError(
                f"midpoint ε-agreement needs n > 3t; got n={n}, t={t}"
            )
        super().__init__(n, t, eps=eps, inputs=inputs, transmitter=transmitter)

    def update(self, values: Sequence[float]) -> float:
        survivors = self.trimmed(values)
        return (survivors[0] + survivors[-1]) / 2.0
