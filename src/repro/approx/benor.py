"""Ben-Or's randomized binary consensus (1983), in the typed discipline.

Each logical *round* ``r`` is two lockstep phases:

* phase ``2r − 1`` (**report**): broadcast ``Report(r, value)``;
* phase ``2r`` (**proposal**): count the round-``r`` reports (own value
  included); if some value ``v`` has ``count · 2 > n + t``, broadcast
  ``Proposal(r, v)``, else ``Proposal(r, None)`` (the ⊥ proposal).

At the start of round ``r + 1`` (and in ``on_final`` for the last
round) each processor counts the round-``r`` proposals:

* ``count(v) > (n + t) / 2``  →  **decide** ``v``;
* ``count(v) ≥ t + 1``        →  adopt ``v`` for the next report;
* otherwise                   →  adopt a **coin flip**
  (``ctx.coins.flip(pid, r)`` — keyed randomness, replayable per seed).

With ``n > 5t`` at most one value can clear the proposal threshold per
round, which gives agreement; a decided processor keeps broadcasting its
value, so every correct processor adopts it and decides one round later
(the runner's variable-round mode then stops the run).  Unanimous
correct inputs decide deterministically in round 1; mixed inputs
terminate with probability 1, with a geometric round-count tail that the
statistical suite checks against the coin bias
(:mod:`repro.approx.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Sequence

from repro.approx.base import RandomizedConsensus
from repro.core.errors import ConfigurationError, ProtocolViolationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Processor
from repro.core.types import TRANSMITTER, ProcessorId, Value

__all__ = ["Report", "Proposal", "BenOr", "BenOrProcessor"]


@dataclass(frozen=True, slots=True)
class Report:
    """Round-``r`` first-stage broadcast of the sender's current value."""

    round_index: int
    value: int


@dataclass(frozen=True, slots=True)
class Proposal:
    """Round-``r`` second-stage broadcast; ``value=None`` is ⊥."""

    round_index: int
    value: int | None


class BenOr(RandomizedConsensus):
    """Ben-Or's protocol for ``n > 5t`` with a seeded, replayable coin."""

    name: ClassVar[str] = "ben-or"
    phase_bound: ClassVar[str] = "2 * m"
    message_bound: ClassVar[str] = "2 * m * n * (n - 1)"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_rounds: int = 30,
        coin_bias: float = 0.5,
        coin_scope: str = "local",
        inputs: Sequence[int] | None = None,
        transmitter: ProcessorId = TRANSMITTER,
    ) -> None:
        if n <= 5 * t:
            raise ConfigurationError(
                f"Ben-Or's thresholds need n > 5t; got n={n}, t={t}"
            )
        super().__init__(
            n,
            t,
            max_rounds=max_rounds,
            coin_bias=coin_bias,
            coin_scope=coin_scope,
            inputs=inputs,
            transmitter=transmitter,
        )

    def num_phases(self) -> int:
        """Two phases per round; a cap, not a schedule (variable rounds)."""
        return 2 * self.m

    def make_processor(self, pid: ProcessorId) -> Processor:
        return BenOrProcessor(self, pid)


class BenOrProcessor(Processor):
    """One Ben-Or participant; all randomness comes from ``ctx.coins``."""

    def __init__(self, algorithm: BenOr, pid: ProcessorId) -> None:
        self.algorithm = algorithm
        self.value = algorithm.inputs[pid]
        self.decided: int | None = None
        self._last_proposal: int | None = None

    def _count_reports(self, round_index: int, inbox: Sequence[Envelope]) -> dict[int, int]:
        """Distinct-sender counts of round-``r`` reports, own included."""
        seen: dict[ProcessorId, int] = {self.ctx.pid: self.value}
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, Report)
                and payload.round_index == round_index
                and payload.value in (0, 1)
                and 0 <= envelope.src < self.ctx.n
                and envelope.src != self.ctx.pid
            ):
                seen.setdefault(envelope.src, payload.value)
        counts = {0: 0, 1: 0}
        for value in sorted(seen.values()):
            counts[value] += 1
        return counts

    def _count_proposals(
        self, round_index: int, inbox: Sequence[Envelope], own: int | None
    ) -> dict[int, int]:
        """Distinct-sender counts of round-``r`` value proposals (⊥ ignored)."""
        seen: dict[ProcessorId, int | None] = {self.ctx.pid: own}
        for envelope in inbox:
            payload = envelope.payload
            if (
                isinstance(payload, Proposal)
                and payload.round_index == round_index
                and (payload.value is None or payload.value in (0, 1))
                and 0 <= envelope.src < self.ctx.n
                and envelope.src != self.ctx.pid
            ):
                seen.setdefault(envelope.src, payload.value)
        counts = {0: 0, 1: 0}
        for value in sorted(v for v in seen.values() if v is not None):
            counts[value] += 1
        return counts

    def _settle_round(self, round_index: int, inbox: Sequence[Envelope]) -> None:
        """Process round-``r`` proposals: decide, adopt, or flip the coin."""
        counts = self._count_proposals(round_index, inbox, self._last_proposal)
        n, t = self.ctx.n, self.ctx.t
        for v in (0, 1):
            if counts[v] * 2 > n + t:
                if self.decided is None:
                    self.decided = v
                self.value = v
                return
        for v in (0, 1):
            if counts[v] >= t + 1:
                self.value = v
                return
        if self.decided is not None:
            # A decided processor never re-randomizes: it keeps reporting
            # its decision so laggards adopt and decide next round.
            self.value = self.decided
            return
        if self.ctx.coins is None:
            raise ProtocolViolationError(
                "ben-or needs a CoinSource on its Context (run with coins=...)"
            )
        self.value = self.ctx.coins.flip(self.ctx.pid, round_index)

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase % 2 == 1:
            round_index = (phase + 1) // 2
            if round_index > 1:
                self._settle_round(round_index - 1, inbox)
            payload: object = Report(round_index=round_index, value=self.value)
        else:
            round_index = phase // 2
            counts = self._count_reports(round_index, inbox)
            proposal: int | None = None
            for v in (0, 1):
                if counts[v] * 2 > self.ctx.n + self.ctx.t:
                    proposal = v
            self._last_proposal = proposal
            payload = Proposal(round_index=round_index, value=proposal)
        return [(q, payload) for q in self.ctx.others()]

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        # The cap is even (2m): the last delivered messages are round-m
        # proposals, which still allow a final decide/adopt step.
        self._settle_round(self.algorithm.num_phases() // 2, inbox)

    def decision(self) -> Value | None:
        return self.decided

    def has_terminated(self) -> bool:
        return self.decided is not None
