"""Seeded, replayable randomness for randomized consensus.

Protocol code is banned from ``random``/``time``/friends (lint rule
BA001): every run must be a pure function of its inputs so that fuzz
counterexamples replay and traces stay byte-stable.  Randomized
algorithms still need coins, so this module derives them the same way
the fuzz campaign derives its seeds — by hashing a run-scoped integer
seed with ``hashlib.sha256`` — which keeps BA001 happy and makes
``repro run --algorithm ben-or --seed N`` deterministic per seed.

A :class:`CoinSource` is threaded through :class:`repro.core.protocol.Context`
by the runner and recorded on :class:`repro.core.runner.RunResult` as
``coin_seed`` so that replay layers (fuzz corpus, conformance) can
rebuild the identical coin stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["CoinSource"]

_DENOM = 1 << 53


def _digest_value(seed: int, lane: int, round_index: int) -> int:
    """Map ``(seed, lane, round)`` to a 53-bit integer via sha256."""
    material = f"{seed}:{lane}:{round_index}".encode("ascii")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> 11


@dataclass
class CoinSource:
    """Deterministic coin stream keyed by ``(seed, lane, round)``.

    ``scope`` selects the classic dichotomy of randomized BA:

    * ``"local"`` — each processor flips its own coin (Ben-Or's model):
      the lane is the caller's pid, so different processors see
      independent streams for the same round.
    * ``"common"`` — a shared coin (Rabin's model): the lane is pinned
      to 0 so every processor sees the same flip for a given round.

    ``bias`` is the probability of flipping 1.  Flips are counted (for
    reporting) but the *value* of a flip never depends on how many flips
    came before it — only on the key — so delivery order cannot perturb
    the stream.
    """

    seed: int
    bias: float = 0.5
    scope: str = "local"
    flips: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.scope not in ("local", "common"):
            raise ValueError(f"unknown coin scope: {self.scope!r}")
        if not 0.0 <= self.bias <= 1.0:
            raise ValueError(f"coin bias must be in [0, 1], got {self.bias!r}")

    def uniform(self, lane: int, round_index: int) -> float:
        """Return the deterministic uniform draw in ``[0, 1)`` for a key."""
        key_lane = 0 if self.scope == "common" else lane
        return _digest_value(self.seed, key_lane, round_index) / _DENOM

    def flip(self, lane: int, round_index: int) -> int:
        """Flip the coin for ``(lane, round)``: 1 with probability ``bias``."""
        self.flips += 1
        return 1 if self.uniform(lane, round_index) < self.bias else 0
