"""Correctness conditions for the approximate / randomized workloads.

Exact BA's conditions (agreement = equality, validity = the transmitter's
value) do not apply verbatim to the new family, so each workload gets its
own reading, reported through the same
:class:`~repro.core.validation.ValidationReport` shape the fuzz oracle
already consumes:

* **ε-agreement** (:func:`check_epsilon_agreement`) — every pair of
  unexcused correct decisions within ``algorithm.eps`` of each other
  (reported as ``agreement``), and every decision inside the closed range
  of *correct* inputs — ε-validity containment (reported as
  ``validity``).
* **randomized consensus** (:func:`check_randomized_consensus`) —
  decisions that exist must agree on one binary value (``agreement``)
  and, when the correct inputs are unanimous, equal that input
  (``validity``).  Termination is probabilistic, so undecided processors
  at the round cap are *not* a violation — liveness is judged
  statistically by :mod:`repro.approx.stats`, not per run.
"""

from __future__ import annotations

from repro.approx.base import ApproximateAgreement, RandomizedConsensus
from repro.core.runner import RunResult
from repro.core.validation import ValidationReport

__all__ = [
    "check_epsilon_agreement",
    "check_randomized_consensus",
    "check_run_conditions",
]


def check_epsilon_agreement(
    result: RunResult,
    algorithm: ApproximateAgreement,
    *,
    excused: frozenset[int] = frozenset(),
) -> ValidationReport:
    """ε-agreement + ε-validity containment on one finished run."""
    violations: list[str] = []
    decisions = {
        pid: value
        for pid, value in sorted(result.decisions.items())
        if pid not in excused
    }

    undecided = sorted(
        pid
        for pid, value in decisions.items()
        if not isinstance(value, float) or value != value
    )
    all_decided = not undecided
    if undecided:
        violations.append(
            f"correct processors {undecided} hold no finite value"
        )
    settled = {
        pid: value
        for pid, value in sorted(decisions.items())
        if pid not in undecided
    }

    agreement = True
    if settled:
        low_pid = min(settled, key=lambda pid: (settled[pid], pid))
        high_pid = max(settled, key=lambda pid: (settled[pid], pid))
        spread = settled[high_pid] - settled[low_pid]
        # A strict float comparison would flag rounding dust; one ulp of
        # slack keeps the check about the protocol, not the FPU.
        if spread > algorithm.eps * (1 + 1e-12):
            agreement = False
            violations.append(
                f"eps-agreement violated: |{settled[high_pid]!r} - "
                f"{settled[low_pid]!r}| = {spread!r} > eps={algorithm.eps!r} "
                f"(processors {high_pid} vs {low_pid})"
            )

    validity = True
    correct_inputs = [
        algorithm.inputs[pid] for pid in sorted(result.correct)
    ]
    if settled and correct_inputs:
        low, high = min(correct_inputs), max(correct_inputs)
        outside = sorted(
            pid
            for pid, value in settled.items()
            if not low - 1e-12 <= value <= high + 1e-12
        )
        if outside:
            validity = False
            violations.append(
                f"eps-validity violated: {outside} decided outside the "
                f"correct-input range [{low!r}, {high!r}]: "
                f"{[settled[pid] for pid in outside]!r}"
            )

    return ValidationReport(
        agreement=agreement,
        validity=validity,
        all_decided=all_decided,
        violations=violations,
        excused=frozenset(excused) & result.correct,
    )


def check_randomized_consensus(
    result: RunResult,
    algorithm: RandomizedConsensus,
    *,
    excused: frozenset[int] = frozenset(),
) -> ValidationReport:
    """Agreement + unanimity-validity; undecided-at-cap is not a failure."""
    violations: list[str] = []
    decisions = {
        pid: value
        for pid, value in sorted(result.decisions.items())
        if pid not in excused
    }
    decided = {
        pid: value
        for pid, value in sorted(decisions.items())
        if value is not None
    }

    values = set(decided.values())
    agreement = len(values) <= 1
    if not agreement:
        per_value = {
            repr(v): sorted(p for p, d in decided.items() if d == v)
            for v in sorted(values)
        }
        violations.append(f"agreement violated: {per_value}")

    validity = True
    correct_inputs = {
        algorithm.inputs[pid] for pid in sorted(result.correct)
    }
    if decided and len(correct_inputs) == 1:
        (unanimous,) = correct_inputs
        wrong = sorted(
            pid for pid, value in decided.items() if value != unanimous
        )
        if wrong:
            validity = False
            violations.append(
                f"validity violated: correct inputs are unanimously "
                f"{unanimous!r} but {wrong} decided otherwise"
            )

    # Probabilistic termination: a processor still undecided when the
    # round cap ran out is a statistics question, not a per-run bug.
    return ValidationReport(
        agreement=agreement,
        validity=validity,
        all_decided=True,
        violations=violations,
        excused=frozenset(excused) & result.correct,
    )


def check_run_conditions(
    result: RunResult,
    algorithm: object,
    *,
    excused: frozenset[int] = frozenset(),
) -> ValidationReport:
    """Dispatch to the right condition set for *algorithm*'s family."""
    from repro.core.validation import check_byzantine_agreement

    if isinstance(algorithm, ApproximateAgreement):
        return check_epsilon_agreement(result, algorithm, excused=excused)
    if isinstance(algorithm, RandomizedConsensus):
        return check_randomized_consensus(result, algorithm, excused=excused)
    return check_byzantine_agreement(result, excused=excused)
