"""The fuzzing oracle: classify one finished (or crashed) run.

Every generated script is judged against two independent contracts:

* the **Byzantine Agreement conditions** (Section 2) via
  :func:`~repro.core.validation.check_byzantine_agreement` — agreement,
  validity, and termination of the correct processors;
* the algorithm's **declared information-exchange budget** (the
  ``phase/message/signature_bound`` ClassVars introduced with the linter) —
  the paper's upper-bound theorems claim these hold for *every* t-faulty
  history, so a generated adversary pushing a correct-processor count above
  its declared bound is a finding even when agreement still holds.

The two failure modes are deliberately distinguished: ``safety`` means the
algorithm is wrong, ``bound`` means the declared budget (or the theorem it
cites) is wrong.  A run that raises is ``crash`` — either a robustness gap
in a protocol's input validation or a harness bug; both deserve a
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import RunResult, run
from repro.core.types import Value
from repro.core.validation import check_byzantine_agreement
from repro.fuzz.script import AdversaryScript

#: Verdict constants (plain strings: JSON-friendly, picklable).
OK = "ok"
SAFETY = "safety"
BOUND = "bound"
CRASH = "crash"


@dataclass(frozen=True)
class FuzzOutcome:
    """The oracle's verdict on one executed script."""

    verdict: str
    detail: str
    messages: int = 0
    signatures: int = 0
    phases_used: int = 0

    @property
    def failed(self) -> bool:
        return self.verdict != OK


def classify_run(algorithm: AgreementAlgorithm, result: RunResult) -> FuzzOutcome:
    """Judge a finished run: BA conditions first, then declared bounds."""
    metrics = result.metrics
    counts = dict(
        messages=metrics.messages_by_correct,
        signatures=metrics.signatures_by_correct,
        phases_used=metrics.last_active_phase,
    )
    report = check_byzantine_agreement(result)
    if not report.ok:
        return FuzzOutcome(verdict=SAFETY, detail=str(report), **counts)

    message_bound = algorithm.upper_bound_messages()
    if message_bound is not None and metrics.messages_by_correct > message_bound:
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"correct processors sent {metrics.messages_by_correct} "
                f"messages, declared bound {message_bound}"
            ),
            **counts,
        )
    signature_bound = algorithm.upper_bound_signatures()
    if (
        signature_bound is not None
        and metrics.signatures_by_correct > signature_bound
    ):
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"correct processors sent {metrics.signatures_by_correct} "
                f"signatures, declared bound {signature_bound}"
            ),
            **counts,
        )
    phase_bound = algorithm.upper_bound_phases()
    if phase_bound is not None and metrics.last_active_phase > phase_bound:
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"traffic in phase {metrics.last_active_phase}, declared "
                f"phase bound {phase_bound}"
            ),
            **counts,
        )
    return FuzzOutcome(verdict=OK, detail="", **counts)


def execute_script(
    algorithm: AgreementAlgorithm,
    value: Value,
    script: AdversaryScript,
    *,
    record_history: bool = False,
    sinks: tuple = (),
) -> FuzzOutcome:
    """Run *script* against *algorithm* and classify the outcome.

    Exceptions escaping the runner become a ``crash`` verdict rather than
    propagating: a fuzz campaign must survive its own findings.  *sinks*
    (``repro.obs`` event sinks) receive the run's trace stream; a crashed
    run leaves a truncated trace (no ``run_end``), which is itself useful
    evidence.
    """
    try:
        result = run(
            algorithm,
            value,
            script.build(),
            record_history=record_history,
            sinks=sinks,
        )
    except Exception as error:
        return FuzzOutcome(
            verdict=CRASH, detail=f"{type(error).__name__}: {error}"
        )
    return classify_run(algorithm, result)
