"""The fuzzing oracle: classify one finished (or crashed) run.

Every generated script is judged against two independent contracts:

* the **Byzantine Agreement conditions** (Section 2) via
  :func:`~repro.core.validation.check_byzantine_agreement` — agreement,
  validity, and termination of the correct processors;
* the algorithm's **declared information-exchange budget** (the
  ``phase/message/signature_bound`` ClassVars introduced with the linter) —
  the paper's upper-bound theorems claim these hold for *every* t-faulty
  history, so a generated adversary pushing a correct-processor count above
  its declared bound is a finding even when agreement still holds.

The two failure modes are deliberately distinguished: ``safety`` means the
algorithm is wrong, ``bound`` means the declared budget (or the theorem it
cites) is wrong.  A run that raises is ``crash`` — either a robustness gap
in a protocol's input validation or a harness bug; both deserve a
counterexample.

Runs executed under an injected :class:`~repro.transport.faults.FaultPlan`
get a third, *crash-tolerant* reading: a processor whose messages the
network dropped is excused (it is held to no stronger standard than a
Byzantine-corrupted one — the Byzantine-projection argument in
:mod:`repro.transport.faults`), and the BA conditions are demanded of the
rest.  Divergence confined to excused processors is ``benign``, not a
failure; divergence among the unexcused — while the faulty-plus-excused
budget stays within ``t`` — is a genuine ``safety`` finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.base import ApproximateAgreement
from repro.approx.validation import check_run_conditions
from repro.core.protocol import AgreementAlgorithm
from repro.core.runner import RunResult, run
from repro.core.types import Value
from repro.fuzz.script import AdversaryScript
from repro.transport.faults import FaultPlan, excused_processors
from repro.transport.faulty import FaultyTransport

#: Verdict constants (plain strings: JSON-friendly, picklable).
OK = "ok"
SAFETY = "safety"
BOUND = "bound"
CRASH = "crash"
#: Divergence fully attributable to injected benign delivery faults —
#: expected under crash/omission faults, not a finding.
BENIGN = "benign"
#: The ε-agreement conditions failed: correct processors ended more than
#: ``eps`` apart, or outside the correct-input range (ε-validity).  A
#: distinct verdict class so the shrinker preserves it and campaign
#: tables separate "approximately wrong" from exact-BA safety.
EPS_VIOLATION = "eps_violation"


@dataclass(frozen=True)
class FuzzOutcome:
    """The oracle's verdict on one executed script."""

    verdict: str
    detail: str
    messages: int = 0
    signatures: int = 0
    phases_used: int = 0

    @property
    def failed(self) -> bool:
        return self.verdict not in (OK, BENIGN)


def classify_run(algorithm: AgreementAlgorithm, result: RunResult) -> FuzzOutcome:
    """Judge a finished run: BA conditions first, then declared bounds.

    A run carrying :attr:`~repro.core.runner.RunResult.fault_events`
    (i.e. executed under a fault-injecting transport) is judged with the
    crash-tolerant expectations from the module docstring; a clean run
    gets the plain Byzantine reading.

    The conditions checked depend on the algorithm's family
    (:func:`~repro.approx.validation.check_run_conditions`): exact BA for
    the zoo, ε-agreement + ε-validity for approximate agreement (failure
    verdict ``eps_violation``), agreement + unanimity-validity for
    randomized consensus (still ``safety``; probabilistic termination is
    judged statistically, not per run).
    """
    fail_verdict = (
        EPS_VIOLATION if isinstance(algorithm, ApproximateAgreement) else SAFETY
    )
    metrics = result.metrics
    counts = dict(
        messages=metrics.messages_by_correct,
        signatures=metrics.signatures_by_correct,
        phases_used=metrics.last_active_phase,
    )
    if result.fault_events:
        excused = excused_processors(result.fault_events) & result.correct
        survivors_report = check_run_conditions(result, algorithm, excused=excused)
        if not survivors_report.ok:
            # Guarantees only bind while faulty ∪ excused fits the
            # tolerance t; past the budget any divergence is benign.
            if len(result.faulty | excused) > result.t or not (
                result.correct - excused
            ):
                return FuzzOutcome(
                    verdict=BENIGN,
                    detail=f"fault budget exceeded: {survivors_report}",
                    **counts,
                )
            return FuzzOutcome(
                verdict=fail_verdict, detail=str(survivors_report), **counts
            )
        full_report = check_run_conditions(result, algorithm)
        if not full_report.ok:
            return FuzzOutcome(
                verdict=BENIGN,
                detail=f"divergence confined to excused {sorted(excused)}: "
                f"{full_report}",
                **counts,
            )
        # Survivors and excused all agree: fall through to the declared
        # bounds (faults never add sends, but the budgets must still hold).
    else:
        report = check_run_conditions(result, algorithm)
        if not report.ok:
            return FuzzOutcome(verdict=fail_verdict, detail=str(report), **counts)

    message_bound = algorithm.upper_bound_messages()
    if message_bound is not None and metrics.messages_by_correct > message_bound:
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"correct processors sent {metrics.messages_by_correct} "
                f"messages, declared bound {message_bound}"
            ),
            **counts,
        )
    signature_bound = algorithm.upper_bound_signatures()
    if (
        signature_bound is not None
        and metrics.signatures_by_correct > signature_bound
    ):
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"correct processors sent {metrics.signatures_by_correct} "
                f"signatures, declared bound {signature_bound}"
            ),
            **counts,
        )
    phase_bound = algorithm.upper_bound_phases()
    if phase_bound is not None and metrics.last_active_phase > phase_bound:
        return FuzzOutcome(
            verdict=BOUND,
            detail=(
                f"traffic in phase {metrics.last_active_phase}, declared "
                f"phase bound {phase_bound}"
            ),
            **counts,
        )
    return FuzzOutcome(verdict=OK, detail="", **counts)


def execute_script(
    algorithm: AgreementAlgorithm,
    value: Value,
    script: AdversaryScript,
    *,
    record_history: bool = False,
    sinks: tuple = (),
    fault_plan: FaultPlan | None = None,
    coin_seed: int | None = None,
) -> FuzzOutcome:
    """Run *script* against *algorithm* and classify the outcome.

    Exceptions escaping the runner become a ``crash`` verdict rather than
    propagating: a fuzz campaign must survive its own findings.  *sinks*
    (``repro.obs`` event sinks) receive the run's trace stream; a crashed
    run leaves a truncated trace (no ``run_end``), which is itself useful
    evidence.  A non-empty *fault_plan* routes delivery through a
    :class:`~repro.transport.faulty.FaultyTransport`, switching
    :func:`classify_run` into its crash-tolerant reading.

    *coin_seed* feeds coin-flipping algorithms (``uses_coins``): the run
    gets ``algorithm.make_coin_source(coin_seed)``, so a persisted case
    replays the exact coin stream that produced its verdict.  Ignored —
    and irrelevant — for deterministic algorithms.
    """
    transport = (
        FaultyTransport(fault_plan)
        if fault_plan is not None and not fault_plan.is_empty
        else None
    )
    coins = None
    if algorithm.uses_coins:
        make_coins = getattr(algorithm, "make_coin_source", None)
        if make_coins is not None:
            coins = make_coins(0 if coin_seed is None else coin_seed)
    try:
        result = run(
            algorithm,
            value,
            script.build(),
            record_history=record_history,
            sinks=sinks,
            transport=transport,
            coins=coins,
        )
    except Exception as error:
        return FuzzOutcome(
            verdict=CRASH, detail=f"{type(error).__name__}: {error}"
        )
    return classify_run(algorithm, result)
