"""Counterexample shrinking: minimise a failing script, keep it failing.

Greedy delta-debugging over the script structure, smallest-first in the
order that matters for a human reading the counterexample:

1. drop whole mutations (fewest deviations to explain);
2. drop faulty processors that no remaining mutation drives (smallest
   coalition);
3. stop the coalition as early as possible (shortest attack prefix);
4. narrow each surviving mutation's phase window to a single phase.

Every candidate is re-executed through the caller-supplied ``reproduce``
predicate — typically "same verdict class as the original failure" — so a
shrink can never trade one bug for a different one.  The loop runs to a
fixed point with a hard attempt budget; scripts are tiny, so the budget is
generous in practice.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.fuzz.script import AdversaryScript

#: Predicate: does this candidate script still reproduce the failure?
Reproducer = Callable[[AdversaryScript], bool]


def _without_mutation(script: AdversaryScript, index: int) -> AdversaryScript:
    mutations = script.mutations[:index] + script.mutations[index + 1 :]
    return AdversaryScript(
        faulty=script.faulty, mutations=mutations, stop_phase=script.stop_phase
    )


def _without_idle_faulty(script: AdversaryScript) -> AdversaryScript:
    driven = {m.pid for m in script.mutations}
    kept = tuple(pid for pid in script.faulty if pid in driven)
    if not kept or kept == script.faulty:
        return script
    return AdversaryScript(
        faulty=kept, mutations=script.mutations, stop_phase=script.stop_phase
    )


def _drop_mutations_pass(
    script: AdversaryScript, reproduce: Reproducer, attempts: list[int]
) -> AdversaryScript:
    index = len(script.mutations) - 1
    while index >= 0 and attempts[0] > 0:
        candidate = _without_mutation(script, index)
        attempts[0] -= 1
        if reproduce(candidate):
            script = candidate
        index -= 1
    return script


def _drop_faulty_pass(
    script: AdversaryScript, reproduce: Reproducer, attempts: list[int]
) -> AdversaryScript:
    candidate = _without_idle_faulty(script)
    if candidate is not script and attempts[0] > 0:
        attempts[0] -= 1
        if reproduce(candidate):
            script = candidate
    # also try evicting each remaining processor with its mutations
    for pid in list(script.faulty):
        if len(script.faulty) <= 1 or attempts[0] <= 0:
            break
        candidate = AdversaryScript(
            faulty=tuple(p for p in script.faulty if p != pid),
            mutations=tuple(m for m in script.mutations if m.pid != pid),
            stop_phase=script.stop_phase,
        )
        attempts[0] -= 1
        if reproduce(candidate):
            script = candidate
    return script


def _stop_early_pass(
    script: AdversaryScript, reproduce: Reproducer, attempts: list[int], num_phases: int
) -> AdversaryScript:
    ceiling = script.stop_phase if script.stop_phase is not None else num_phases + 1
    for stop in range(1, ceiling):
        if attempts[0] <= 0:
            break
        candidate = AdversaryScript(
            faulty=script.faulty, mutations=script.mutations, stop_phase=stop
        )
        attempts[0] -= 1
        if reproduce(candidate):
            return candidate
    return script


def _narrow_windows_pass(
    script: AdversaryScript, reproduce: Reproducer, attempts: list[int]
) -> AdversaryScript:
    for index, mutation in enumerate(script.mutations):
        if attempts[0] <= 0:
            break
        if mutation.phase_to == mutation.phase_from:
            continue
        narrowed = dataclasses.replace(mutation, phase_to=mutation.phase_from)
        candidate = AdversaryScript(
            faulty=script.faulty,
            mutations=script.mutations[:index]
            + (narrowed,)
            + script.mutations[index + 1 :],
            stop_phase=script.stop_phase,
        )
        attempts[0] -= 1
        if reproduce(candidate):
            script = candidate
    return script


def shrink_script(
    script: AdversaryScript,
    reproduce: Reproducer,
    *,
    num_phases: int,
    max_attempts: int = 200,
) -> AdversaryScript:
    """Minimise *script* while ``reproduce(candidate)`` stays true.

    The input script itself is assumed to reproduce (callers check before
    shrinking).  Returns the smallest script found — possibly the input.
    """
    attempts = [max_attempts]
    while attempts[0] > 0:
        before = script.size
        script = _drop_mutations_pass(script, reproduce, attempts)
        script = _drop_faulty_pass(script, reproduce, attempts)
        script = _stop_early_pass(script, reproduce, attempts, num_phases)
        script = _narrow_windows_pass(script, reproduce, attempts)
        if script.size >= before:
            break
    return script
