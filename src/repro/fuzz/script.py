"""AdversaryScript: a fully-determined, replayable faulty-coalition plan.

A script is plain data — the faulty set, an ordered tuple of
:mod:`~repro.fuzz.mutations` primitives and an optional ``stop_phase``
(after which the coalition goes silent, the shrinker's favourite lever).
:class:`ScriptAdversary` executes it on top of the standard
:class:`~repro.adversary.standard.SimulatingAdversary` machinery, so a
script with no mutations is behaviourally fault-free, and every deviation
is attributable to a named primitive.

Scripts pickle (for the sweep worker pool) and round-trip through JSON
(for the persisted counterexample corpus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.adversary.base import FaultySend, PhaseView
from repro.adversary.standard import SimulatingAdversary
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Processor
from repro.core.types import ProcessorId
from repro.crypto.chains import SignatureChain, chain_body
from repro.fuzz.mutations import (
    DropInbound,
    DropOutbound,
    Equivocate,
    ForgeAttempt,
    GarbleOutbound,
    Mutation,
    ReplayStale,
    SelectiveSilence,
    mutation_from_json,
)

SCRIPT_SCHEMA = "repro-fuzz-script/1"


@dataclass(frozen=True)
class AdversaryScript:
    """Everything a generated adversary will do, as picklable data."""

    faulty: tuple[ProcessorId, ...]
    mutations: tuple[Mutation, ...] = ()
    #: first phase in which the whole coalition stays silent (``None`` =
    #: never stops).  Mirrors :class:`~repro.adversary.standard.CrashAdversary`.
    stop_phase: int | None = None

    def build(self) -> "ScriptAdversary":
        """The executable adversary for this script."""
        return ScriptAdversary(self)

    def mutations_for(self, pid: ProcessorId) -> tuple[Mutation, ...]:
        return tuple(m for m in self.mutations if m.pid == pid)

    @property
    def size(self) -> tuple[int, int, int]:
        """Shrink-ordering key: (faulty count, mutation count, stop phase)."""
        stop = self.stop_phase if self.stop_phase is not None else 1 << 20
        return (len(self.faulty), len(self.mutations), stop)

    def describe(self) -> str:
        parts = [m.describe() for m in self.mutations]
        stop = f" stop@{self.stop_phase}" if self.stop_phase is not None else ""
        return f"faulty={list(self.faulty)}{stop} [{', '.join(parts) or 'no mutations'}]"

    # ------------------------------------------------------------------ JSON

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": SCRIPT_SCHEMA,
            "faulty": list(self.faulty),
            "stop_phase": self.stop_phase,
            "mutations": [m.to_json_dict() for m in self.mutations],
        }

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "AdversaryScript":
        schema = data.get("schema", SCRIPT_SCHEMA)
        if schema != SCRIPT_SCHEMA:
            raise ValueError(f"unsupported script schema {schema!r}")
        return cls(
            faulty=tuple(data["faulty"]),
            mutations=tuple(mutation_from_json(m) for m in data["mutations"]),
            stop_phase=data.get("stop_phase"),
        )


class ScriptAdversary(SimulatingAdversary):
    """Executes an :class:`AdversaryScript`.

    Each faulty processor is driven by a real simulated protocol instance;
    the script's primitives deviate around it.  A simulated instance that
    raises on its (mutated) view is retired — from then on that processor
    sends nothing through its protocol, exactly what a wedged faulty node
    looks like from outside; injection primitives keep applying.
    """

    def __init__(self, script: AdversaryScript) -> None:
        super().__init__(script.faulty)
        self.script = script
        #: pid -> phase -> payloads delivered to it (for ReplayStale).
        self._heard: dict[ProcessorId, dict[int, tuple[Any, ...]]] = {}
        #: simulated instances that raised; they stay silent afterwards.
        self._wedged: set[ProcessorId] = set()
        self._alt: dict[ProcessorId, Processor] = {}
        self._alt_wedged: set[ProcessorId] = set()

    # ---------------------------------------------------------------- set-up

    def on_bind(self) -> None:
        super().on_bind()
        env = self.env
        assert env is not None
        for mutation in self.script.mutations:
            if (
                isinstance(mutation, Equivocate)
                and mutation.pid == env.transmitter
                and mutation.pid in self.faulty
                and mutation.pid not in self._alt
            ):
                from repro.core.protocol import Context

                processor = env.algorithm.make_processor(mutation.pid)
                processor.bind(
                    Context(
                        pid=mutation.pid,
                        n=env.n,
                        t=env.t,
                        transmitter=env.transmitter,
                        key=env.keys[mutation.pid],
                        service=env.service,
                    )
                )
                self._alt[mutation.pid] = processor

    # ------------------------------------------------------------- execution

    def _step(self, processor: Processor, phase: int, inbox: Sequence[Envelope]) -> list[Outgoing]:
        return list(processor.on_phase(phase, tuple(inbox)))

    def on_phase(self, view: PhaseView) -> list[FaultySend]:
        script = self.script
        if script.stop_phase is not None and view.phase >= script.stop_phase:
            # Still record what we hear (a crashed node's mailbox fills up)
            # so ReplayStale windows before the stop stay meaningful.
            for pid in sorted(self.faulty):
                self._record_heard(pid, view.phase, view.inbox(pid))
            return []
        sends: list[FaultySend] = []
        for pid in sorted(self.faulty):
            raw = list(view.inbox(pid))
            self._record_heard(pid, view.phase, raw)
            mutations = script.mutations_for(pid)
            inbox = self._mutate_inbox(pid, view.phase, raw, mutations)
            outgoing = self._protocol_sends(pid, view.phase, inbox, mutations)
            outgoing = self._mutate_outbox(pid, view.phase, outgoing, mutations)
            outgoing.extend(self._injections(pid, view.phase, mutations))
            for dst, payload in outgoing:
                if dst != pid and 0 <= dst < self.env.n:  # type: ignore[union-attr]
                    sends.append((pid, dst, payload))
        return sends

    # ------------------------------------------------------------ sub-steps

    def _record_heard(
        self, pid: ProcessorId, phase: int, inbox: Sequence[Envelope]
    ) -> None:
        self._heard.setdefault(pid, {})[phase] = tuple(
            e.payload for e in inbox if not e.is_input_edge()
        )

    def _mutate_inbox(
        self,
        pid: ProcessorId,
        phase: int,
        inbox: list[Envelope],
        mutations: Sequence[Mutation],
    ) -> list[Envelope]:
        for mutation in mutations:
            if isinstance(mutation, DropInbound) and mutation.active(phase):
                # The input edge is exempt: a "correct except ..." processor
                # always knows its own private input.  Without this a deaf
                # transmitter simulation would run input-less and sign a
                # None-valued chain — a payload no real adversary strategy
                # in the paper produces.  Withholding or altering the input
                # is expressed by ``stop_phase`` / :class:`Equivocate`.
                inbox = [
                    e
                    for i, e in enumerate(inbox)
                    if e.is_input_edge() or mutation.keeps(i)
                ]
        return inbox

    def _protocol_sends(
        self,
        pid: ProcessorId,
        phase: int,
        inbox: list[Envelope],
        mutations: Sequence[Mutation],
    ) -> list[Outgoing]:
        outgoing: list[Outgoing] = []
        if pid not in self._wedged:
            try:
                outgoing = self._step(self.simulated(pid), phase, inbox)
            except Exception:
                self._wedged.add(pid)
                outgoing = []
        alt = self._alt.get(pid)
        if alt is None:
            return outgoing
        # The equivocating twin runs every phase (its state must advance)
        # on the doctored input edge.
        alt_out: list[Outgoing] = []
        if pid not in self._alt_wedged:
            equivocate = next(m for m in mutations if isinstance(m, Equivocate))
            doctored = [
                Envelope(src=e.src, dst=e.dst, phase=e.phase, payload=equivocate.alt_value)
                if e.is_input_edge()
                else e
                for e in inbox
            ]
            try:
                alt_out = self._step(alt, phase, doctored)
            except Exception:
                self._alt_wedged.add(pid)
                alt_out = []
            if equivocate.active(phase):
                outgoing = self._merge_equivocation(outgoing, alt_out, equivocate)
        return outgoing

    @staticmethod
    def _merge_equivocation(
        main: list[Outgoing], alt: list[Outgoing], mutation: Equivocate
    ) -> list[Outgoing]:
        merged = [(dst, p) for dst, p in main if not mutation.takes_alt(dst)]
        merged.extend((dst, p) for dst, p in alt if mutation.takes_alt(dst))
        merged.sort(key=lambda item: item[0])
        return merged

    def _mutate_outbox(
        self,
        pid: ProcessorId,
        phase: int,
        outgoing: list[Outgoing],
        mutations: Sequence[Mutation],
    ) -> list[Outgoing]:
        for mutation in mutations:
            if not mutation.active(phase):
                continue
            if isinstance(mutation, SelectiveSilence):
                outgoing = [
                    (dst, p) for dst, p in outgoing if dst not in mutation.targets
                ]
            elif isinstance(mutation, DropOutbound):
                outgoing = [
                    (dst, p)
                    for i, (dst, p) in enumerate(outgoing)
                    if mutation.keeps(i)
                ]
            elif isinstance(mutation, GarbleOutbound):
                outgoing = [
                    (dst, mutation.junk(phase)) if mutation.garbles(i) else (dst, p)
                    for i, (dst, p) in enumerate(outgoing)
                ]
        return outgoing

    def _injections(
        self, pid: ProcessorId, phase: int, mutations: Sequence[Mutation]
    ) -> Iterator[Outgoing]:
        env = self.env
        assert env is not None
        for mutation in mutations:
            if not mutation.active(phase):
                continue
            if isinstance(mutation, ForgeAttempt):
                fake = env.service.forge(
                    mutation.victim, chain_body(mutation.value, ())
                )
                yield (
                    mutation.dst,
                    SignatureChain(value=mutation.value, signatures=(fake,)),
                )
            elif isinstance(mutation, ReplayStale):
                stale = self._heard.get(pid, {}).get(phase - mutation.lag, ())
                for payload in stale[: mutation.limit]:
                    yield (mutation.dst, payload)
