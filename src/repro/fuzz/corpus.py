"""The failing-seed corpus: shrunk counterexamples as JSON files.

Every failure a campaign finds is persisted as one self-contained JSON
document (schema ``repro-fuzz/1``): the algorithm configuration, the input
value, the generating seed, the oracle's verdict, and the (shrunk)
:class:`~repro.fuzz.script.AdversaryScript`.  The committed corpus lives
under ``tests/fuzz_corpus/`` and the tier-1 suite replays every entry,
asserting the recorded verdict still reproduces — counterexamples are
regression tests, found once and kept forever.

Reproduce one by hand with::

    python -m repro fuzz --replay tests/fuzz_corpus/<file>.json
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fuzz.script import AdversaryScript
from repro.transport.faults import FaultPlan

CORPUS_SCHEMA = "repro-fuzz/1"


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted counterexample."""

    algorithm: str
    n: int
    t: int
    value: Any
    seed: int
    verdict: str
    detail: str
    script: AdversaryScript
    #: Tuning parameters; ints (``s``, ``max_rounds``) stay ints and
    #: floats (``eps``, ``coin_bias``) stay floats across the JSON
    #: round-trip — both re-feed the algorithm constructor verbatim.
    params: dict[str, int | float] = field(default_factory=dict)
    #: Injected delivery faults the counterexample needs (chaos campaigns);
    #: ``None`` for classic Byzantine-script findings, and omitted from the
    #: JSON so pre-fault corpus files round-trip unchanged.
    fault_plan: FaultPlan | None = None
    #: Coin-stream seed for ``uses_coins`` algorithms; ``None`` for the
    #: deterministic zoo, and omitted from the JSON in that case so
    #: pre-coin corpus files round-trip unchanged.
    coin_seed: int | None = None

    # ------------------------------------------------------------------ JSON

    def to_json_dict(self) -> dict[str, Any]:
        data = {
            "schema": CORPUS_SCHEMA,
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "params": dict(self.params),
            "value": self.value,
            "seed": self.seed,
            "verdict": self.verdict,
            "detail": self.detail,
            "script": self.script.to_json_dict(),
        }
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            data["fault_plan"] = self.fault_plan.to_json_dict()
        if self.coin_seed is not None:
            data["coin_seed"] = self.coin_seed
        return data

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "CorpusEntry":
        schema = data.get("schema")
        if schema != CORPUS_SCHEMA:
            raise ValueError(f"unsupported corpus schema {schema!r}")
        plan_data = data.get("fault_plan")
        coin_seed = data.get("coin_seed")
        return cls(
            algorithm=data["algorithm"],
            n=int(data["n"]),
            t=int(data["t"]),
            # int-vs-float distinguishes e.g. s=2 from eps=0.25; bools are
            # excluded because bool is an int subclass json never emits
            # for these keys anyway.
            params={
                k: (float(v) if isinstance(v, float) else int(v))
                for k, v in data.get("params", {}).items()
            },
            value=data["value"],
            seed=int(data["seed"]),
            verdict=data["verdict"],
            detail=data.get("detail", ""),
            script=AdversaryScript.from_json_dict(data["script"]),
            fault_plan=(
                FaultPlan.from_json_dict(plan_data)
                if plan_data is not None
                else None
            ),
            coin_seed=None if coin_seed is None else int(coin_seed),
        )

    def file_name(self) -> str:
        digest = hashlib.sha256(
            json.dumps(self.to_json_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()[:10]
        return f"{self.algorithm}-seed{self.seed}-{digest}.json"


def save_entry(directory: Path | str, entry: CorpusEntry) -> Path:
    """Write *entry* under *directory* (created if missing); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry.file_name()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    """Read one corpus file."""
    with open(path, encoding="utf-8") as handle:
        return CorpusEntry.from_json_dict(json.load(handle))


def load_entries(directory: Path | str) -> list[tuple[Path, CorpusEntry]]:
    """Every ``*.json`` under *directory*, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_entry(path)) for path in sorted(directory.glob("*.json"))
    ]


def replay_entry(entry: CorpusEntry, *, sinks: tuple = ()):
    """Re-execute a corpus entry; returns the fresh
    :class:`~repro.fuzz.oracle.FuzzOutcome`.

    Imported lazily to keep corpus I/O free of the runner dependency chain
    (useful for tooling that only inspects files).  *sinks* receive the
    replay's ``repro-trace/1`` event stream.
    """
    from repro.algorithms.registry import get
    from repro.fuzz.oracle import execute_script

    algorithm = get(entry.algorithm)(entry.n, entry.t, **entry.params)
    return execute_script(
        algorithm,
        entry.value,
        entry.script,
        sinks=sinks,
        fault_plan=entry.fault_plan,
        coin_seed=entry.coin_seed,
    )


def save_trace(entry_path: Path | str, entry: CorpusEntry) -> Path:
    """Replay *entry* with a trace sink; write the trace next to its JSON.

    The trace lands at ``<entry>.trace.jsonl`` beside the corpus file, so
    a shrunk counterexample ships with the full event history of the run
    that exhibits it — ``repro inspect`` shows phase-by-phase where the
    minimal adversary spends its messages.
    """
    from repro.obs import JsonlTraceSink

    entry_path = Path(entry_path)
    trace_path = entry_path.with_suffix(".trace.jsonl")
    with JsonlTraceSink(trace_path) as sink:
        replay_entry(entry, sinks=(sink,))
    return trace_path
