"""Fuzz campaigns: per-algorithm budgets, parallel execution, shrinking.

A campaign is a deterministic function of ``(algorithms, budget, seed)``:
per-case seeds are derived by hashing, scripts are generated up front, and
the cases fan out over the same process pool the parameter sweeps use
(:func:`repro.analysis.parallel.run_tasks`), which preserves submission
order — so the summary is identical for any worker count, and running the
same campaign twice produces the same bytes.

Shrinking happens after the parallel stage, in-process: failures are rare
and each shrink needs a tight re-execute loop that would waste pool
round-trips.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.algorithms.registry import ALGORITHMS, STRAWMEN, WORKLOADS, get
from repro.core.protocol import AgreementAlgorithm
from repro.core.types import Value
from repro.fuzz.generator import generate_script
from repro.fuzz.oracle import BENIGN, EPS_VIOLATION, OK, FuzzOutcome, execute_script
from repro.fuzz.script import AdversaryScript
from repro.fuzz.shrinker import shrink_script
from repro.transport.faults import FaultPlan, random_plan

#: Small-but-faulty configurations per registered algorithm: big enough for
#: t >= 2 coalitions where the size constraints allow it, small enough that
#: a 200-case budget per algorithm stays interactive.  Algorithms 1/2 need
#: n = 2t + 1; Algorithm 5 needs n >= the smallest square above 6t, so it
#: fuzzes at t = 1.
FUZZ_CONFIGS: dict[str, tuple[int, int, dict[str, object]]] = {
    "dolev-strong": (6, 2, {}),
    "active-set": (8, 2, {}),
    "oral-messages": (7, 2, {}),
    "algorithm-1": (7, 3, {}),
    "algorithm-2": (5, 2, {}),
    "algorithm-3": (7, 2, {"s": 2}),
    "algorithm-5": (10, 1, {}),
    "informed-algorithm-2": (7, 2, {}),
    "phase-king": (9, 2, {}),
    # the approximate / randomized workload family (float-valued params;
    # ben-or's round cap keeps worst-case scripts bounded).
    "midpoint-approx": (7, 2, {"eps": 0.25}),
    "filtered-mean-approx": (7, 2, {"eps": 0.5}),
    "ben-or": (6, 1, {"max_rounds": 8}),
    # strawmen: deliberately broken counterexample algorithms — fuzzable on
    # demand (and the seed corpus is built from them), excluded from "all".
    "strawman-undersigning": (6, 2, {}),
    "strawman-echo": (6, 2, {}),
    "strawman-overshoot": (7, 2, {"eps": 0.25}),
}

#: The values every campaign tries (the paper's algorithms are binary).
CAMPAIGN_VALUES: tuple[Value, ...] = (0, 1)


def derive_seed(master: int, algorithm: str, index: int) -> int:
    """Stable per-case seed: a hash, not Python's salted ``hash()``."""
    text = f"{master}:{algorithm}:{index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(text).digest()[:6], "big")


@dataclass(frozen=True)
class FuzzCase:
    """One picklable scenario: algorithm configuration + script + value."""

    algorithm: str
    n: int
    t: int
    value: Value
    seed: int
    script: AdversaryScript
    #: Algorithm tuning parameters; values may be ints (``s``, round caps)
    #: or floats (``eps``, ``coin_bias``).
    params: tuple[tuple[str, object], ...] = ()
    #: Delivery faults injected under the Byzantine script (chaos mode);
    #: ``None`` keeps the perfect lock-step network.
    fault_plan: FaultPlan | None = None
    #: Coin-stream seed for ``uses_coins`` algorithms (derived per case,
    #: like the script seed); ``None`` for the deterministic zoo.
    coin_seed: int | None = None

    def build_algorithm(self) -> AgreementAlgorithm:
        return get(self.algorithm)(self.n, self.t, **dict(self.params))

    def run(self) -> "FuzzResult":
        """Execute the case (worker-pool entry point)."""
        outcome = execute_script(
            self.build_algorithm(),
            self.value,
            self.script,
            fault_plan=self.fault_plan,
            coin_seed=self.coin_seed,
        )
        return FuzzResult(case=self, outcome=outcome)


@dataclass(frozen=True)
class FuzzResult:
    """A case plus its oracle verdict (and, later, its shrunk script)."""

    case: FuzzCase
    outcome: FuzzOutcome
    shrunk: AdversaryScript | None = None

    @property
    def failed(self) -> bool:
        return self.outcome.failed

    @property
    def minimal_script(self) -> AdversaryScript:
        return self.shrunk if self.shrunk is not None else self.case.script


def plan_cases(
    algorithms: Iterable[str],
    *,
    budget: int,
    seed: int,
    values: Sequence[Value] = CAMPAIGN_VALUES,
    configs: Mapping[str, tuple[int, int, dict[str, object]]] | None = None,
) -> list[FuzzCase]:
    """Generate the full deterministic case list for a campaign.

    *budget* is per algorithm; case ``i`` fuzzes value ``values[i % len]``
    under the script of :func:`derive_seed`'s per-case seed, so the list is
    a pure function of the arguments.  Coin-flipping algorithms get a
    second derived seed (lane ``"<name>/coin"``) for their coin stream.
    """
    configs = dict(configs) if configs is not None else FUZZ_CONFIGS
    cases: list[FuzzCase] = []
    for name in algorithms:
        if name not in configs:
            raise KeyError(
                f"no fuzz configuration for algorithm {name!r}; "
                f"known: {sorted(configs)}"
            )
        n, t, params = configs[name]
        algorithm = get(name)(n, t, **params)
        num_phases = algorithm.num_phases()
        domain = sorted(algorithm.value_domain or {0, 1}, key=repr)
        for index in range(budget):
            case_seed = derive_seed(seed, name, index)
            script = generate_script(
                case_seed,
                n=n,
                t=t,
                num_phases=num_phases,
                transmitter=algorithm.transmitter,
                value_domain=domain,
            )
            cases.append(
                FuzzCase(
                    algorithm=name,
                    n=n,
                    t=t,
                    value=values[index % len(values)],
                    seed=case_seed,
                    script=script,
                    params=tuple(sorted(params.items())),
                    coin_seed=(
                        derive_seed(seed, name + "/coin", index)
                        if algorithm.uses_coins
                        else None
                    ),
                )
            )
    return cases


def plan_chaos_cases(
    algorithms: Iterable[str],
    *,
    budget: int,
    seed: int,
    fault_rate: float,
    values: Sequence[Value] = CAMPAIGN_VALUES,
    configs: Mapping[str, tuple[int, int, dict[str, object]]] | None = None,
) -> list[FuzzCase]:
    """Chaos campaign: benign delivery faults instead of Byzantine scripts.

    Each case runs the algorithm with an *empty* adversary script (no
    Byzantine coalition) under a seeded
    :func:`~repro.transport.faults.random_plan` of crash/omission faults
    whose fault-carrying processors stay within the tolerance ``t`` — so
    the crash-tolerant oracle reading applies and any ``safety`` verdict
    is a genuine finding, not fault-budget noise.  Deterministic in
    ``(algorithms, budget, seed, fault_rate)`` exactly like
    :func:`plan_cases`.
    """
    configs = dict(configs) if configs is not None else FUZZ_CONFIGS
    cases: list[FuzzCase] = []
    for name in algorithms:
        if name not in configs:
            raise KeyError(
                f"no fuzz configuration for algorithm {name!r}; "
                f"known: {sorted(configs)}"
            )
        n, t, params = configs[name]
        algorithm = get(name)(n, t, **params)
        num_phases = algorithm.num_phases()
        for index in range(budget):
            case_seed = derive_seed(seed, name, index)
            plan = random_plan(
                case_seed,
                n=n,
                t=t,
                num_phases=num_phases,
                rate=fault_rate,
            )
            cases.append(
                FuzzCase(
                    algorithm=name,
                    n=n,
                    t=t,
                    value=values[index % len(values)],
                    seed=case_seed,
                    script=AdversaryScript(faulty=()),
                    params=tuple(sorted(params.items())),
                    fault_plan=plan,
                    coin_seed=(
                        derive_seed(seed, name + "/coin", index)
                        if algorithm.uses_coins
                        else None
                    ),
                )
            )
    return cases


def run_campaign(
    cases: Sequence[FuzzCase],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    checkpoint: str | None = None,
) -> list[FuzzResult]:
    """Execute *cases* in order across the sweep worker pool.

    *task_timeout*, *max_retries* and *checkpoint* are the self-healing
    knobs of :func:`repro.analysis.parallel.run_tasks` — an interrupted
    campaign with a checkpoint file resumes instead of re-fuzzing.
    """
    from repro.analysis.parallel import run_tasks

    return run_tasks(
        cases,
        workers=workers,
        chunk_size=chunk_size,
        task_timeout=task_timeout,
        max_retries=max_retries,
        checkpoint=checkpoint,
    )


def shrink_result(result: FuzzResult, *, max_attempts: int = 200) -> FuzzResult:
    """Minimise a failing result's script (no-op for passing results).

    A candidate reproduces when it yields the *same verdict class* as the
    original failure — shrinking never trades a safety violation for a
    mere bound excess.
    """
    if not result.failed:
        return result
    algorithm = result.case.build_algorithm()
    target = result.outcome.verdict
    value = result.case.value

    def reproduce(candidate: AdversaryScript) -> bool:
        """Re-run one failure and check the verdict reproduces.

        The case's fault plan and coin seed (if any) are held fixed:
        shrinking minimises the Byzantine script *under the same injected
        network faults and the same coin stream*.
        """
        probe = execute_script(
            result.case.build_algorithm(),
            value,
            candidate,
            fault_plan=result.case.fault_plan,
            coin_seed=result.case.coin_seed,
        )
        return probe.verdict == target

    shrunk = shrink_script(
        result.case.script,
        reproduce,
        num_phases=algorithm.num_phases(),
        max_attempts=max_attempts,
    )
    return replace(result, shrunk=shrunk)


@dataclass
class AlgorithmSummary:
    """Aggregated campaign verdicts for one algorithm."""

    algorithm: str
    cases: int = 0
    ok: int = 0
    #: Divergence fully attributable to injected benign faults (chaos
    #: campaigns only; not a failure).
    benign: int = 0
    safety: int = 0
    #: ε-agreement / ε-validity failures (approximate workloads only).
    eps: int = 0
    bound: int = 0
    crash: int = 0
    worst_messages: int = 0
    first_failing_seed: int | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "cases": self.cases,
            "ok": self.ok,
            "benign": self.benign,
            "safety": self.safety,
            "eps": self.eps,
            "bound": self.bound,
            "crash": self.crash,
            "worst msgs": self.worst_messages,
            "first failing seed": (
                self.first_failing_seed
                if self.first_failing_seed is not None
                else "-"
            ),
        }


def summarize(results: Sequence[FuzzResult]) -> list[AlgorithmSummary]:
    """Per-algorithm verdict counts, in first-seen algorithm order."""
    summaries: dict[str, AlgorithmSummary] = {}
    for result in results:
        name = result.case.algorithm
        summary = summaries.setdefault(name, AlgorithmSummary(algorithm=name))
        summary.cases += 1
        verdict = result.outcome.verdict
        if verdict == OK:
            summary.ok += 1
        elif verdict == BENIGN:
            summary.benign += 1
        elif verdict == "safety":
            summary.safety += 1
        elif verdict == EPS_VIOLATION:
            summary.eps += 1
        elif verdict == "bound":
            summary.bound += 1
        else:
            summary.crash += 1
        summary.worst_messages = max(
            summary.worst_messages, result.outcome.messages
        )
        if result.failed and summary.first_failing_seed is None:
            summary.first_failing_seed = result.case.seed
    return list(summaries.values())


def default_algorithm_names() -> list[str]:
    """The ``--algorithm all`` set: every real registered algorithm and
    workload that has a fuzz configuration (strawmen excluded — they are
    *supposed* to fail; fuzz them by name)."""
    return [
        name
        for name in list(ALGORITHMS) + list(WORKLOADS)
        if name in FUZZ_CONFIGS
    ]


def known_algorithm_names() -> list[str]:
    """Everything ``repro fuzz --algorithm`` accepts by name."""
    return [
        name
        for name in list(ALGORITHMS) + list(WORKLOADS) + list(STRAWMEN)
        if name in FUZZ_CONFIGS
    ]
