"""Seeded script generation: sampling the adversary space.

One function, :func:`generate_script`, maps ``(seed, n, t, num_phases)``
to an :class:`~repro.fuzz.script.AdversaryScript`.  All randomness comes
from a :class:`random.Random` seeded by the caller, so the same seed
always produces the same script — campaigns are reproducible and a failing
seed alone is enough to rebuild its counterexample.

The sampler is deliberately biased toward the shapes the paper's proofs
use: the transmitter is corrupted more often than a uniform pick would
(equivocation needs it), and selective silence / inbound deafness — the
primitives of Theorems 1 and 2 — are the most likely draws.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.types import ProcessorId
from repro.fuzz.mutations import (
    DropInbound,
    DropOutbound,
    Equivocate,
    ForgeAttempt,
    GarbleOutbound,
    Mutation,
    ReplayStale,
    SelectiveSilence,
)
from repro.fuzz.script import AdversaryScript

#: Relative draw weights per primitive kind (transmitter-only kinds are
#: filtered out when the transmitter is correct).
_WEIGHTED_KINDS: tuple[tuple[str, int], ...] = (
    ("selective-silence", 3),
    ("drop-inbound", 3),
    ("drop-outbound", 2),
    ("garble-outbound", 2),
    ("replay-stale", 2),
    ("forge-attempt", 2),
    ("equivocate", 3),
)


def _phase_window(rng: random.Random, num_phases: int) -> tuple[int, int | None]:
    start = rng.randint(1, max(1, num_phases))
    if rng.random() < 0.4:
        return start, None
    return start, rng.randint(start, max(start, num_phases))


def _other(rng: random.Random, n: int, pid: ProcessorId) -> ProcessorId:
    dst = rng.randrange(n - 1)
    return dst if dst < pid else dst + 1


def _sample_mutation(
    rng: random.Random,
    kind: str,
    pid: ProcessorId,
    n: int,
    num_phases: int,
    value_domain: Sequence[object],
) -> Mutation:
    phase_from, phase_to = _phase_window(rng, num_phases)
    if kind == "selective-silence":
        count = rng.randint(1, max(1, min(3, n - 1)))
        targets = tuple(
            sorted(rng.sample([q for q in range(n) if q != pid], count))
        )
        return SelectiveSilence(
            pid=pid, phase_from=phase_from, phase_to=phase_to, targets=targets
        )
    if kind == "drop-inbound":
        return DropInbound(
            pid=pid,
            phase_from=phase_from,
            phase_to=phase_to,
            modulus=rng.randint(1, 3),
            residue=rng.randint(0, 2),
        )
    if kind == "drop-outbound":
        return DropOutbound(
            pid=pid,
            phase_from=phase_from,
            phase_to=phase_to,
            modulus=rng.randint(1, 3),
            residue=rng.randint(0, 2),
        )
    if kind == "garble-outbound":
        return GarbleOutbound(
            pid=pid,
            phase_from=phase_from,
            phase_to=phase_to,
            modulus=rng.randint(1, 2),
            residue=rng.randint(0, 1),
            salt=rng.randint(0, 1 << 16),
        )
    if kind == "replay-stale":
        # replay needs a phase to look back from, so the window starts at 2
        start = max(2, phase_from)
        return ReplayStale(
            pid=pid,
            phase_from=start,
            phase_to=phase_to if phase_to is None else max(start, phase_to),
            dst=_other(rng, n, pid),
            lag=rng.randint(1, 2),
            limit=rng.randint(1, 3),
        )
    if kind == "forge-attempt":
        return ForgeAttempt(
            pid=pid,
            phase_from=phase_from,
            phase_to=phase_to,
            victim=rng.randrange(n),
            dst=_other(rng, n, pid),
            value=rng.choice(list(value_domain)),
        )
    if kind == "equivocate":
        return Equivocate(
            pid=pid,
            phase_from=1,  # equivocation starts at the input edge
            phase_to=None,
            alt_value=rng.choice(list(value_domain)),
            parity=rng.randint(0, 1),
        )
    raise ValueError(f"unknown mutation kind {kind!r}")


def generate_script(
    seed: int,
    *,
    n: int,
    t: int,
    num_phases: int,
    transmitter: ProcessorId = 0,
    value_domain: Sequence[object] = (0, 1),
    max_mutations: int = 4,
) -> AdversaryScript:
    """Sample one adversary script; deterministic in *seed*."""
    rng = random.Random(seed)
    fault_budget = rng.randint(1, max(1, t))
    pool = list(range(n))
    faulty: list[ProcessorId] = []
    # Bias: corrupt the transmitter ~40% of the time — the interesting
    # faults (equivocation, withheld input) need it.
    if rng.random() < 0.4:
        faulty.append(transmitter)
        pool.remove(transmitter)
    while len(faulty) < fault_budget:
        pick = rng.choice(pool)
        pool.remove(pick)
        if pick not in faulty:
            faulty.append(pick)
    faulty = sorted(faulty[:fault_budget]) or [rng.randrange(n)]

    kinds = [
        (kind, weight)
        for kind, weight in _WEIGHTED_KINDS
        if kind != "equivocate" or transmitter in faulty
    ]
    names = [k for k, _ in kinds]
    weights = [w for _, w in kinds]

    mutations: list[Mutation] = []
    seen_equivocate = False
    for _ in range(rng.randint(1, max_mutations)):
        kind = rng.choices(names, weights=weights, k=1)[0]
        pid = transmitter if kind == "equivocate" else rng.choice(faulty)
        if kind == "equivocate":
            if seen_equivocate:
                continue
            seen_equivocate = True
        mutations.append(
            _sample_mutation(rng, kind, pid, n, num_phases, value_domain)
        )

    stop_phase = rng.randint(1, num_phases) if rng.random() < 0.15 else None
    return AdversaryScript(
        faulty=tuple(faulty),
        mutations=tuple(mutations),
        stop_phase=stop_phase,
    )
