"""Mutation primitives: the composable pieces of a generated adversary.

Each primitive is a small frozen dataclass whose fields fully determine its
behaviour — no runtime randomness, so a script replays bit-identically and
pickles cleanly into worker processes.  A primitive names the faulty
processor it drives (``pid``) and the phase window it is active in
(``phase_from .. phase_to`` inclusive; ``phase_to=None`` means "until the
end").  The executor (:class:`~repro.fuzz.script.ScriptAdversary`) hosts a
correctly-behaving simulated protocol instance per faulty processor and
applies the primitives as deviations around it, the same
"correct except ..." shape the paper's proof adversaries use.

The vocabulary mirrors the faults the paper's model admits:

* :class:`DropInbound` / :class:`DropOutbound` — lossy behaviour;
* :class:`SelectiveSilence` — Theorem 2's primitive ("send to some and not
  to others");
* :class:`Equivocate` — a two-faced transmitter (Theorem 1's split);
* :class:`ReplayStale` — re-sending previously received traffic with its
  original (still valid) signatures;
* :class:`ForgeAttempt` — emitting a signature chain that names a victim
  without holding its key, which verification must reject;
* :class:`GarbleOutbound` — structurally well-formed junk payloads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.types import ProcessorId


@dataclass(frozen=True)
class Mutation:
    """Base class: one deviation applied to one faulty processor."""

    #: short stable identifier used by the JSON serialisation.
    kind: ClassVar[str] = "abstract"

    pid: ProcessorId
    phase_from: int = 1
    phase_to: int | None = None

    def active(self, phase: int) -> bool:
        """True when this primitive applies in *phase*."""
        if phase < self.phase_from:
            return False
        return self.phase_to is None or phase <= self.phase_to

    # ------------------------------------------------------------- serialise

    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-native dict, round-tripped by :func:`mutation_from_json`."""
        data: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            data[field.name] = getattr(self, field.name)
        return data

    def describe(self) -> str:
        window = (
            f"@{self.phase_from}" if self.phase_to == self.phase_from
            else f"@{self.phase_from}..{self.phase_to if self.phase_to is not None else 'end'}"
        )
        return f"{self.kind}(p{self.pid}){window}"


@dataclass(frozen=True)
class DropInbound(Mutation):
    """Discard every ``modulus``-th delivered message (offset ``residue``)
    before the simulated protocol sees it — a deaf patch, the generated
    analogue of Theorem 2's ignore-first-``⌈t/2⌉`` behaviour."""

    kind: ClassVar[str] = "drop-inbound"

    modulus: int = 2
    residue: int = 0

    def keeps(self, index: int) -> bool:
        return index % self.modulus != self.residue


@dataclass(frozen=True)
class DropOutbound(Mutation):
    """Discard every ``modulus``-th message the simulated protocol wants to
    send (offset ``residue``) — lossy, order-dependent message loss."""

    kind: ClassVar[str] = "drop-outbound"

    modulus: int = 2
    residue: int = 0

    def keeps(self, index: int) -> bool:
        return index % self.modulus != self.residue


@dataclass(frozen=True)
class SelectiveSilence(Mutation):
    """Never send to the processors in *targets* — the exact primitive the
    Theorem 2 proof isolates."""

    kind: ClassVar[str] = "selective-silence"

    targets: tuple[ProcessorId, ...] = ()


@dataclass(frozen=True)
class GarbleOutbound(Mutation):
    """Replace the payload of every ``modulus``-th outgoing message with a
    canonicalisable junk tuple.  Receivers must treat it like any other
    unparseable message; *salt* varies the junk across mutations."""

    kind: ClassVar[str] = "garble-outbound"

    modulus: int = 2
    residue: int = 0
    salt: int = 0

    def garbles(self, index: int) -> bool:
        return index % self.modulus == self.residue

    def junk(self, phase: int) -> tuple[Any, ...]:
        return ("garbled", int(self.pid), int(phase), int(self.salt))


@dataclass(frozen=True)
class Equivocate(Mutation):
    """A two-faced transmitter: a second simulated instance runs on the
    doctored input *alt_value*, and destinations whose id has parity
    *parity* receive that instance's sends instead of the real one's.

    Only meaningful when ``pid`` is the transmitter (the executor ignores
    it otherwise) — equivocation about the input is a transmitter fault.
    """

    kind: ClassVar[str] = "equivocate"

    alt_value: Any = 0
    parity: int = 0

    def takes_alt(self, dst: ProcessorId) -> bool:
        return dst % 2 == self.parity


@dataclass(frozen=True)
class ReplayStale(Mutation):
    """Re-send to *dst* payloads this processor received *lag* phases ago
    (at most *limit* per phase).  Replayed payloads carry their original
    signatures, which remain genuine — the scheme binds signers to
    contents, not to the phase that produced them."""

    kind: ClassVar[str] = "replay-stale"

    dst: ProcessorId = 0
    lag: int = 1
    limit: int = 2


@dataclass(frozen=True)
class ForgeAttempt(Mutation):
    """Send *dst* a one-link signature chain naming *victim* as signer,
    built without the victim's key.  The registry never issued that
    signature, so any verifying receiver must discard the message; an
    algorithm that skips verification is what this primitive catches."""

    kind: ClassVar[str] = "forge-attempt"

    victim: ProcessorId = 0
    dst: ProcessorId = 0
    value: Any = 1


#: kind string -> dataclass, for JSON round-tripping.
MUTATION_KINDS: dict[str, type[Mutation]] = {
    cls.kind: cls
    for cls in (
        DropInbound,
        DropOutbound,
        SelectiveSilence,
        GarbleOutbound,
        Equivocate,
        ForgeAttempt,
        ReplayStale,
    )
}


def mutation_from_json(data: dict[str, Any]) -> Mutation:
    """Rebuild a mutation from :meth:`Mutation.to_json_dict` output."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = MUTATION_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown mutation kind {kind!r}")
    for name, value in payload.items():
        if isinstance(value, list):  # JSON has no tuples
            payload[name] = tuple(value)
    return cls(**payload)
