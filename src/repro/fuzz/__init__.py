"""Seeded Byzantine fuzzing: generated adversaries, oracle, shrinker, corpus.

The paper's lower-bound proofs are adversarial searches over protocol
histories — Theorem 1's splitting adversary ``A(p)`` replays recorded
traffic, Theorem 2's ``B`` set plays deaf.  This package mechanises that
search: a seeded generator composes small *mutation primitives* (drop,
equivocate, garble, replay, forge-attempt, selective silence) into
picklable :class:`~repro.fuzz.script.AdversaryScript` values, an oracle
classifies each finished run (safety violated / declared bound exceeded /
crash), and a shrinker minimises failing scripts into replayable JSON
counterexamples persisted under ``tests/fuzz_corpus/``.

Entry points: the ``repro fuzz`` CLI subcommand and
:func:`~repro.fuzz.campaign.run_campaign`.
"""

from repro.fuzz.campaign import (
    FUZZ_CONFIGS,
    FuzzCase,
    FuzzResult,
    plan_cases,
    run_campaign,
    shrink_result,
    summarize,
)
from repro.fuzz.corpus import (
    CorpusEntry,
    load_entries,
    load_entry,
    replay_entry,
    save_entry,
    save_trace,
)
from repro.fuzz.generator import generate_script
from repro.fuzz.mutations import (
    MUTATION_KINDS,
    DropInbound,
    DropOutbound,
    Equivocate,
    ForgeAttempt,
    GarbleOutbound,
    Mutation,
    ReplayStale,
    SelectiveSilence,
)
from repro.fuzz.oracle import (
    BOUND,
    CRASH,
    OK,
    SAFETY,
    FuzzOutcome,
    classify_run,
    execute_script,
)
from repro.fuzz.script import AdversaryScript, ScriptAdversary
from repro.fuzz.shrinker import shrink_script

__all__ = [
    "AdversaryScript",
    "ScriptAdversary",
    "Mutation",
    "MUTATION_KINDS",
    "DropInbound",
    "DropOutbound",
    "SelectiveSilence",
    "Equivocate",
    "ForgeAttempt",
    "GarbleOutbound",
    "ReplayStale",
    "generate_script",
    "FuzzOutcome",
    "classify_run",
    "execute_script",
    "OK",
    "SAFETY",
    "BOUND",
    "CRASH",
    "shrink_script",
    "CorpusEntry",
    "save_entry",
    "save_trace",
    "load_entry",
    "load_entries",
    "replay_entry",
    "FuzzCase",
    "FuzzResult",
    "FUZZ_CONFIGS",
    "plan_cases",
    "run_campaign",
    "shrink_result",
    "summarize",
]
