"""The paper's algorithms plus the published baselines.

Correct algorithms: Dolev–Strong (classic and active-set forms), oral
messages OM(t), and the paper's Algorithms 1–5.  The strawmen exist only
to be broken by the executable lower-bound proofs.
"""

from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm4 import Algorithm4, GridExchange, check_lemma2
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.cheap_strawman import EchoBroadcast, UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.hub_exchange import HubExchange, check_full_exchange
from repro.algorithms.informed import InformedAlgorithm2
from repro.algorithms.interactive import (
    InteractiveConsistency,
    check_interactive_consistency,
)
from repro.algorithms.multivalued import MultivaluedAgreement
from repro.algorithms.oral_messages import OralMessages
from repro.algorithms.phase_king import PhaseKing
from repro.algorithms.registry import ALGORITHMS, STRAWMEN, AlgorithmInfo, get

__all__ = [
    "ALGORITHMS",
    "STRAWMEN",
    "ActiveSetBroadcast",
    "Algorithm1",
    "Algorithm2",
    "Algorithm3",
    "Algorithm4",
    "Algorithm5",
    "AlgorithmInfo",
    "DolevStrong",
    "EchoBroadcast",
    "GridExchange",
    "HubExchange",
    "InformedAlgorithm2",
    "InteractiveConsistency",
    "MultivaluedAgreement",
    "OralMessages",
    "PhaseKing",
    "UnderSigningBroadcast",
    "check_full_exchange",
    "check_interactive_consistency",
    "check_lemma2",
    "get",
]
